//! # dssddi
//!
//! A from-scratch Rust reproduction of **"Decision Support System for
//! Chronic Diseases Based on Drug-Drug Interactions"** (Bian et al.,
//! ICDE 2023).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — dense matrices, sparse products and reverse-mode autodiff,
//! * [`graph`] — signed/bipartite graphs, truss decomposition, Steiner trees
//!   and closest-truss-community search,
//! * [`data`] — synthetic chronic cohort, DrugCombDB-like DDI, MIMIC-like
//!   EHR, DRKG/TransE substrates,
//! * [`ml`] — k-means, logistic regression, SVMs, classifier chains and
//!   ranking metrics,
//! * [`gnn`] — GIN / SGCN / SiGAT / SNEA / LightGCN building blocks,
//! * [`core`] — the DSSDDI system itself (DDI, Medical Decision and Medical
//!   Support modules),
//! * [`baselines`] — the comparison methods of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dssddi::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let registry = DrugRegistry::standard();
//! let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
//! let cohort = generate_chronic_cohort(
//!     &registry,
//!     &ddi,
//!     &ChronicConfig { n_patients: 400, ..Default::default() },
//!     &mut rng,
//! )
//! .unwrap();
//! let drug_features =
//!     pretrained_drug_embeddings(&registry, &DrkgConfig::default(), &mut rng).unwrap();
//! let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).unwrap();
//!
//! let system = Dssddi::fit_chronic(
//!     &cohort,
//!     &split.train,
//!     &drug_features,
//!     &ddi,
//!     &DssddiConfig::fast(),
//!     &mut rng,
//! )
//! .unwrap();
//! let new_patient = cohort.features().select_rows(&split.test[..1]);
//! for suggestion in system.suggest(&new_patient, 3).unwrap() {
//!     println!("suggested drugs: {:?}", suggestion.drugs);
//!     println!("suggestion satisfaction: {:.3}", suggestion.explanation.suggestion_satisfaction);
//! }
//! ```

#![warn(missing_docs)]

pub use dssddi_baselines as baselines;
pub use dssddi_core as core;
pub use dssddi_data as data;
pub use dssddi_gnn as gnn;
pub use dssddi_graph as graph;
pub use dssddi_ml as ml;
pub use dssddi_tensor as tensor;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dssddi_baselines::{
        BiparGcnRecommender, CauseRecRecommender, EccRecommender, GcmcRecommender,
        LightGcnRecommender, Recommender, SafeDrugRecommender, SvmRecommender, UserSim,
    };
    pub use dssddi_core::{
        Backbone, Dssddi, DssddiConfig, Explanation, MdModuleConfig, MsModuleConfig, Suggestion,
    };
    pub use dssddi_data::{
        generate_chronic_cohort, generate_ddi_graph, generate_mimic_dataset,
        pretrained_drug_embeddings, split_patients, ChronicCohort, ChronicConfig, DdiConfig,
        Disease, DrkgConfig, DrugRegistry, MimicConfig, Split,
    };
    pub use dssddi_graph::{BipartiteGraph, Interaction, SignedGraph};
    pub use dssddi_ml::{ndcg_at_k, precision_at_k, ranking_metrics, recall_at_k, top_k_indices};
    pub use dssddi_tensor::Matrix;
}
