//! # dssddi
//!
//! A from-scratch Rust reproduction of **"Decision Support System for
//! Chronic Diseases Based on Drug-Drug Interactions"** (Bian et al.,
//! ICDE 2023).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — dense matrices, sparse products and reverse-mode autodiff,
//! * [`graph`] — signed/bipartite graphs, truss decomposition, Steiner trees
//!   and closest-truss-community search,
//! * [`data`] — synthetic chronic cohort, DrugCombDB-like DDI, MIMIC-like
//!   EHR, DRKG/TransE substrates,
//! * [`ml`] — k-means, logistic regression, SVMs, classifier chains and
//!   ranking metrics,
//! * [`gnn`] — GIN / SGCN / SiGAT / SNEA / LightGCN building blocks,
//! * [`kb`] — the clinical knowledge base: severity-graded DDI facts
//!   (`Minor`..`Contraindicated`), evidence levels, alert policies, TSV
//!   ingestion, the versioned `DSKB` container and typed KB diffs,
//! * [`core`] — the DSSDDI system itself (DDI, Medical Decision and Medical
//!   Support modules) and the clinical [`DecisionService`](core::DecisionService) API,
//! * [`serving`] — the multi-tenant network gateway: a
//!   [`ModelCatalog`](serving::ModelCatalog)/[`Router`](serving::Router) over
//!   several fitted services, a versioned binary wire protocol, the
//!   `dssddi-serve` server binary and a blocking [`Client`](serving::Client),
//! * [`replica`] — replica groups and catalog replication: a seeded
//!   anti-entropy agent ([`ReplicaAgent`](replica::ReplicaAgent)) keeps N
//!   gateway processes converged per shard via version vectors, and
//!   [`ReplicaClient`](replica::ReplicaClient) gives callers read fan-out
//!   with fail-over plus write forwarding,
//! * [`loadgen`] — the open-loop traffic generator (`dssddi-loadgen`
//!   binary): Poisson arrivals of mixed clinical traffic with Zipf
//!   hot-shard skew, replayed against a live gateway with an
//!   achieved-throughput-vs-SLO report,
//! * [`obs`] — the unified observability layer: a process-wide metrics
//!   registry rendered as Prometheus text over `GET /metrics`, the shared
//!   log-bucketed latency histogram, and per-request tracing
//!   ([`SpanRecorder`](obs::SpanRecorder)/[`TraceRing`](obs::TraceRing))
//!   whose IDs ride the wire protocol's version-2 frame extension,
//! * [`baselines`] — the comparison methods of the paper's evaluation.
//!
//! ## Quickstart
//!
//! The public API is the service layer: build a
//! [`DecisionService`](core::DecisionService) with
//! [`ServiceBuilder`](core::ServiceBuilder), then exchange typed requests and responses —
//! suggestions come back as named, scored drugs with a DDI explanation, and
//! existing prescriptions can be critiqued against the signed DDI graph.
//!
//! ```no_run
//! use dssddi::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let registry = DrugRegistry::standard();
//! let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
//! let cohort = generate_chronic_cohort(
//!     &registry,
//!     &ddi,
//!     &ChronicConfig { n_patients: 400, ..Default::default() },
//!     &mut rng,
//! )
//! .unwrap();
//! let drug_features =
//!     pretrained_drug_embeddings(&registry, &DrkgConfig::default(), &mut rng).unwrap();
//! let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).unwrap();
//!
//! // Validate the configuration and train the service.
//! let service = ServiceBuilder::fast()
//!     .hidden_dim(32)
//!     .fit_chronic(&cohort, &split.train, &drug_features, &ddi, &mut rng)
//!     .unwrap();
//!
//! // Suggest three drugs for a new patient; one prediction pass serves the
//! // whole batch and repeated explanations are memoized.
//! let requests: Vec<SuggestRequest> = split.test[..3]
//!     .iter()
//!     .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
//!     .collect();
//! for response in service.suggest_batch(&requests).unwrap() {
//!     for drug in &response.drugs {
//!         println!("{}: {} ({}) score {:.3}", response.patient, drug.name, drug.id, drug.score);
//!     }
//!     println!("suggestion satisfaction: {:.3}", response.suggestion_satisfaction);
//! }
//!
//! // Critique an existing prescription against the DDI graph.
//! let check = CheckPrescriptionRequest::new(vec![
//!     service.resolve_drug("Gabapentin").unwrap(),
//!     service.resolve_drug("Isosorbide Mononitrate").unwrap(),
//! ]);
//! let report = service.check_prescription(&check).unwrap();
//! if !report.is_safe() {
//!     for pair in &report.antagonistic {
//!         println!("warning: {} is antagonistic with {}", pair.a_name, pair.b_name);
//!     }
//! }
//!
//! // Persist the fitted service and reload it on a serving host. The
//! // reloaded service produces byte-identical suggestions; damaged files
//! // are rejected with typed errors.
//! service.save("dssddi.dssd").unwrap();
//! let reloaded = DecisionService::load("dssddi.dssd", DrugRegistry::standard()).unwrap();
//! assert_eq!(
//!     reloaded.suggest_batch(&requests).unwrap().len(),
//!     requests.len(),
//! );
//!
//! // Serve the saved model over the network: load it into a catalog under
//! // a routing key, bind the gateway, and query it with the blocking
//! // client. Remote responses are byte-identical to in-process calls.
//! let mut catalog = ModelCatalog::new();
//! catalog.load_file(ModelKey::new("chronic").unwrap(), "dssddi.dssd").unwrap();
//! let server = Server::bind("127.0.0.1:0", Router::new(catalog)).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run());
//! let mut client = Client::connect(addr).unwrap();
//! let remote = client
//!     .suggest_batch(&ModelKey::new("chronic").unwrap(), &requests)
//!     .unwrap();
//! assert_eq!(remote.len(), requests.len());
//! client.shutdown().unwrap();
//! ```
//!
//! The same gateway runs stand-alone as the `dssddi-serve` binary
//! (`cargo run --release -p dssddi-replica --bin dssddi-serve -- --demo`);
//! see the [`serving`] crate docs for the wire protocol's frame layout
//! (magic `DSWR`, version, payload length, CRC-32) and the
//! `serve_client` example for the full network round trip.
//!
//! ## Replication and deployment
//!
//! One gateway process is a single point of failure; the [`replica`] crate
//! turns N of them into one logical deployment. Each replica lists every
//! *other* replica as a peer, and a seeded anti-entropy agent converges
//! the group — a three-replica demo deployment is three processes:
//!
//! ```text
//! dssddi-serve --listen 127.0.0.1:4641 --demo \
//!     --peer 127.0.0.1:4642 --peer 127.0.0.1:4643 &
//! dssddi-serve --listen 127.0.0.1:4642 --demo \
//!     --peer 127.0.0.1:4641 --peer 127.0.0.1:4643 &
//! dssddi-serve --listen 127.0.0.1:4643 --demo \
//!     --peer 127.0.0.1:4641 --peer 127.0.0.1:4642 &
//! ```
//!
//! **Version semantics.** Every shard carries a monotone
//! `(model_version, kb_version)` pair: the model version is assigned by
//! the gateway (1 at load, bumped on every hot-swap), while the KB version
//! travels inside the `DSKB` container itself. Each agent round exchanges
//! these vectors with every peer (`PeerStatus`), pulls whole `DSSD`/`DSKB`
//! containers wherever a peer is ahead (`PeerSync`), and applies them
//! through the same hot-reload machinery a direct
//! [`Client::reload_model`](serving::Client)/`reload_kb` uses — so a
//! synced replica serves **byte-identical** responses to the reloaded one,
//! and sync is monotone: a shard never moves backwards, making rounds
//! idempotent and concurrent reloads benign. Per-replica progress (peers,
//! syncs, bytes shipped, per-key versions, lag) is reported in
//! [`ReplicaStats`](serving::ReplicaStats) on the `Stats` response.
//!
//! Reload any one replica — for example the first — and within a few sync
//! intervals (default 500 ms, jittered) all three report the same
//! `kb_version` via `Stats` and critique identically.
//!
//! **Failure modes.** An unreachable peer costs the agent one bounded
//! timeout per round and is retried next round; it cannot stall serving.
//! A replica killed mid-traffic is routed around by
//! [`ReplicaClient`](replica::ReplicaClient) (reads retry over the
//! healthiest endpoint; the chaos drill asserts ≥99% client success with
//! one of three replicas down), and on restart it pulls every artifact it
//! missed on its first sync round — convergence is eventual, bounded by
//! the sync interval, and never requires operator action. Reloads forward
//! to *one* replica and are never retried on transport faults; if the
//! forwarding connection dies mid-reload, check `Stats` versions before
//! resending.
//!
//! ## Admission control and traffic simulation
//!
//! A gateway facing open-loop traffic (arrivals that do not slow down
//! when the server does) must shed load *before* its queues collapse.
//! `dssddi-serve` arms admission control with
//! [`AdmissionConfig`](serving::AdmissionConfig)-backed flags — per-model
//! token-bucket rate limits (`--rate-default RPS[:BURST]`,
//! `--rate KEY=RPS[:BURST]`), per-model in-flight quotas
//! (`--quota KEY=N`) and a bounded gateway-wide execution queue
//! (`--max-in-flight N`, `--queue-depth N`, `--queue-wait-ms MS`).
//! Rejected requests fail fast with the typed
//! [`ErrorCode::Overloaded`](serving::ErrorCode) wire error — the
//! connection survives, admitted traffic keeps its latency, and every
//! shed is counted in [`ModelStats`](serving::ModelStats)
//! (`shed_requests`, alongside the `in_flight` gauge and
//! `queue_depth_hwm` high-water mark). Clients opt into bounded,
//! jitter-backed retries with
//! [`Client::set_retry_policy`](serving::Client::set_retry_policy)
//! ([`RetryPolicy`](serving::RetryPolicy)); only `Overloaded` rejections
//! are retried — the request never executed, so a retry is safe.
//!
//! The other half is measurement: `dssddi-loadgen` (the [`loadgen`]
//! crate) drives a live gateway with an open-loop Poisson schedule —
//! latency measured from each request's *scheduled* start so
//! coordinated omission cannot hide queueing — over a mixed workload
//! (suggestions, batches, critiques, rare KB reloads) with Zipf
//! hot-shard skew across the catalog:
//!
//! ```text
//! dssddi-serve --listen 127.0.0.1:4547 --demo --rate-default 400:100 &
//! dssddi-loadgen --addr 127.0.0.1:4547 --connections 1,64,256 \
//!     --rate 800 --duration-s 5 --slo-p99-ms 50 --append BENCH_serving.json
//! ```
//!
//! Each run prints the shed/ok accounting per operation kind
//! (cross-checked against the gateway's own `Stats` counters), the
//! admitted-frame percentiles from a log-bucketed histogram, and an
//! SLO verdict; `--append` splices `loadgen_c{N}` entries into
//! `BENCH_serving.json` under the existing schema.
//!
//! ## Observability
//!
//! Every serving-path subsystem publishes into one process-wide
//! [`MetricsRegistry`](obs::MetricsRegistry) ([`obs::global()`](obs::global)),
//! and `dssddi-serve --metrics-listen ADDR` exposes it as Prometheus
//! text — no external crates, no agent:
//!
//! ```text
//! dssddi-serve --listen 127.0.0.1:4641 --demo \
//!     --metrics-listen 127.0.0.1:9641 &
//! curl -s http://127.0.0.1:9641/metrics | grep dssddi_serving_requests_total
//! ```
//!
//! Metric names follow `dssddi_<subsystem>_<name>[_total]`: the serving
//! family (`dssddi_serving_requests_total`, `dssddi_serving_latency_micros`,
//! per-stage `dssddi_serving_stage_micros{stage="decode"|"admit"|"queue"|
//! "infer"|"encode"}`), admission control
//! (`dssddi_admission_shed_total{reason=...}`,
//! `dssddi_admission_queue_wait_micros`), clinical critique outcomes
//! (`dssddi_kb_severity_total{grade=...}`), replication progress
//! (`dssddi_replica_syncs_total`, `dssddi_replica_max_lag`), gateway
//! transport counters and chaos-proxy fault injection
//! (`dssddi_chaos_faults_total{kind=...}`).
//!
//! Per-request tracing rides the same wire protocol: a client that opts in
//! with [`Client::set_tracing`](serving::Client::set_tracing) stamps every
//! request with a `u64` trace ID carried in a version-2 frame extension
//! (untraced clients still emit version-1 frames bit-identically, so old
//! peers interoperate). The gateway times each request's
//! decode → admit → queue → infer → encode stages into a
//! [`SpanRecorder`](obs::SpanRecorder) and keeps the slowest exemplars in a
//! bounded [`TraceRing`](obs::TraceRing), dumpable over the wire with
//! [`Client::trace_dump`](serving::Client::trace_dump) — the `dssddi-top`
//! example renders them as a live per-model/per-stage console view:
//!
//! ```text
//! cargo run --release -p dssddi-replica --example dssddi-top -- \
//!     127.0.0.1:4641 --iterations 5 --interval-ms 1000
//! ```
//!
//! ## Resilience and fault injection
//!
//! Networks fail in more ways than "overloaded", and a clinical gateway
//! has to degrade into *typed errors*, never panics or silent hangs. The
//! [`chaos`] crate ships a deterministic, dependency-free fault-injecting
//! TCP proxy ([`ChaosProxy`](chaos::ChaosProxy)): a seeded
//! [`FaultPlan`](chaos::FaultPlan) assigns each accepted connection a
//! scheduled fault — delay (fixed or jittered), truncate-after-N-bytes,
//! corrupt-byte (breaks the CRC), reset, slow-loris stall, black-hole —
//! with typed per-fault counters, so every failure mode is reproducible
//! from a seed.
//!
//! Both ends are hardened against what the proxy injects. The gateway
//! enforces a wall-clock per-frame deadline
//! ([`ServerConfig::frame_deadline`](serving::ServerConfig)) that reaps
//! stalled *and* byte-trickling peers with a typed timeout (counted in
//! [`GatewayStats`](serving::GatewayStats), reported through `Stats`),
//! bounds its concurrent connections
//! ([`ServerConfig::max_connections`](serving::ServerConfig)) with a
//! typed `Overloaded` shed, and drains cleanly on `Shutdown` under live
//! traffic. The client fails over across gateway replicas
//! ([`Client::connect_any`](serving::Client::connect_any)) with
//! per-endpoint health memory and cooldowns, answers `Ping` liveness
//! probes that bypass admission control
//! ([`Client::ping`](serving::Client::ping)), and — with
//! [`RetryPolicy::retry_connection_faults`](serving::RetryPolicy::retry_connection_faults)
//! armed — retries resets, timeouts and short reads with jittered
//! backoff for **idempotent requests only**; a reload is never resent
//! across a transport fault, because the first send may have executed.
//! Model and knowledge-base saves are crash-safe (temp file + atomic
//! rename), so a writer killed mid-save can never leave a torn artifact.
//!
//! ```text
//! # drive a live gateway through a deterministic fault schedule and
//! # report resets/timeouts/short-reads distinct from admission sheds
//! dssddi-loadgen --addr 127.0.0.1:4547 --chaos 7:mixed --smoke
//! ```
//!
//! ## Clinical knowledge base (`DSKB` files, severity-graded critique)
//!
//! Interaction *edges* say two drugs interact; the [`kb`] subsystem says how
//! badly and what to do about it. The workflow is *ingest → save → serve →
//! reload*:
//!
//! ```no_run
//! use dssddi::prelude::*;
//!
//! # let registry = DrugRegistry::standard();
//! # let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
//! # let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
//! # let service = ServiceBuilder::fast().build_support(&ddi).unwrap();
//! // Ingest: seed every DDI edge with its sign default (antagonistic edges
//! // of unknown severity grade Moderate), then overlay curated TSV facts
//! // (drug_a  drug_b  severity  evidence  mechanism  management).
//! let mut kb = KnowledgeBase::from_ddi_graph(&ddi, &registry)?;
//! kb.ingest_tsv(&std::fs::read_to_string("examples/data/ddi_kb.tsv").unwrap(), &registry)?;
//!
//! // Critique with clinical grades; the AlertPolicy filters findings at
//! // the source (min severity; Contraindicated always fires).
//! let request = CheckPrescriptionRequest::new(vec![
//!     service.resolve_drug("Gabapentin").unwrap(),
//!     service.resolve_drug("Isosorbide Mononitrate").unwrap(),
//! ])
//! .with_policy(AlertPolicy::at_least(Severity::Major));
//! let report = service.check_prescription_with_kb(&request, Some(&kb)).unwrap();
//! for pair in &report.antagonistic {
//!     println!("[{}] {} + {}: {:?}", pair.severity, pair.a_name, pair.b_name, pair.management);
//! }
//!
//! // Persist to the CRC-framed DSKB container (same frame shape as DSSD
//! // model files, own magic) and ship it to a serving host; versions are
//! // monotone and `KnowledgeBase::diff` reviews an update before shipping.
//! kb.save("clinic.dskb")?;
//! # Ok::<(), dssddi::kb::KbError>(())
//! ```
//!
//! In the gateway every shard pairs its service with a knowledge base
//! (seeded from the shard's DDI graph unless `dssddi-serve` was given
//! `--kb KEY=PATH.dskb`), and both halves hot-reload *under a live key with
//! zero dropped requests*: `Client::reload_kb` / `Client::reload_model`
//! ship the new `DSKB`/`DSSD` container over the wire, in-flight requests
//! finish on the artifact they started with, and the shard's serving
//! counters survive the swap. `Client::kb_info` reports the live KB
//! version. Suggestion filters can also consult the KB:
//! [`SuggestFilters::exclude_contraindicated_with`](core::SuggestFilters)
//! drops candidates whose interaction with a drug the patient already takes
//! is graded `Contraindicated`. See `examples/kb_critique.rs` for the whole
//! workflow.
//!
//! ## Persistence (`DSSD` files)
//!
//! A fitted [`DecisionService`](core::DecisionService) (or engine-level
//! [`Dssddi`](core::Dssddi)) can be saved to a versioned, dependency-free
//! binary container and reloaded in a fresh process —
//! `save(path)` / `load(path, registry)`. The on-disk layout is 4 magic
//! bytes `"DSSD"`, a little-endian `u16` format version (currently 1), a
//! `u64` payload length, the payload, and a CRC-32 checksum of the payload
//! (see [`tensor::serde`]). The payload records the registry's drug names
//! (so typed [`DrugId`](core::DrugId)s survive reload and a wrong registry
//! is refused), the configuration, and every trained parameter set
//! (MDGCN weights, DDIGCN embeddings, treatment clusters). Loading is fully
//! bounds-checked: truncated, corrupt or version-mismatched files return
//! [`CoreError::Persistence`](core::CoreError::Persistence), never panic.
//! See `examples/save_load.rs` for the end-to-end round trip.
//!
//! Serving also memoizes explanation subgraphs in a service-owned,
//! size-bounded LRU cache (default
//! [`DEFAULT_EXPLANATION_CACHE_CAPACITY`](core::DEFAULT_EXPLANATION_CACHE_CAPACITY)
//! = 1024 drug sets), shared across `suggest_batch` calls — the DDI graph is
//! immutable after fit, so cached community searches stay valid for the
//! service's lifetime while memory use stays flat.
//!
//! ## Serving performance
//!
//! Inference never touches the autodiff tape: `suggest_batch` runs through
//! a dedicated tape-free path (`Mlp::infer` and friends in [`gnn::infer`])
//! built on fused, cache-blocked kernels in [`tensor`] that write into a
//! reusable [`ScratchPool`](tensor::ScratchPool) — no per-op allocation in
//! steady state, and **bit-identical** outputs to the taped training-time
//! forward pass (asserted by property tests; the taped reference survives
//! as `predict_scores_taped`). Scratch-pool rules: whoever `take`s a buffer
//! `recycle`s it when done; a taken buffer has *unspecified contents* and
//! must be fully overwritten (every `*_into` kernel does — use
//! `take_zeroed` otherwise); buffers never cross threads — each serving
//! worker owns its own pool.
//!
//! Large batches are sharded across scoped worker threads automatically
//! (the service is `Sync`;
//! [`suggest_batch_sharded`](core::DecisionService::suggest_batch_sharded)
//! controls the shard count explicitly). The shared explanation memo is
//! locked only for lookup/insert — never during a community search — so
//! cold explanations overlap across shards. Responses are always in
//! request order with scores identical to serial serving.
//!
//! The serving performance trajectory is tracked in `BENCH_serving.json`
//! at the repository root, written by
//! `cargo run --release -p dssddi-experiments --bin bench_report`. Each
//! entry reports `throughput_rps` (requests per second over the whole
//! run), and `p50_ms`/`p99_ms` latency percentiles per *batch* call for a
//! named workload at a given `batch_size` — compare `suggest_batch_cold`
//! (explanation cache cleared before every batch) against
//! `suggest_batch_memoized` (steady state), and `predict_scores_taped`
//! against `predict_scores_tape_free` for the pure model-inference
//! speedup. The `loadgen_c{N}` entries are different in kind: produced
//! by the open-loop generator against an admission-limited gateway at
//! ~2x capacity, they record *delivered* throughput and admitted-frame
//! percentiles while the excess is shed with typed `Overloaded`
//! rejections. Criterion benches covering the same paths live in
//! `crates/bench/benches/service_serving.rs`
//! (`cargo bench -p dssddi-bench`); CI smoke-runs them with
//! `cargo bench -- --test`.
//!
//! ## Static analysis
//!
//! The workspace ships its own analysis gate, [`analysis`]
//! (`dssddi-analyze`), run by CI on every push:
//!
//! ```text
//! cargo run --release -p dssddi-analyze --bin dssddi-analyze -- --deny-new --deny-stale
//! ```
//!
//! It walks the workspace sources with a dependency-free lexer and
//! enforces four invariant families no compiler checks: the canonical lock
//! nesting order of the serving path (`LOCK00x` — acquisition-graph cycles,
//! read→write upgrades, drift against the `LOCK ORDER:` block in
//! `crates/serving/src/router.rs`), wire/container registry consistency
//! (`WIRE00x` — duplicate or resurrected `DSWR` tags, encode/decode arm
//! coverage, doc-table agreement, `ErrorCode` bijection), the panic policy
//! (`PANIC00x` — `unwrap`/`expect`/`panic!`/indexing outside tests,
//! ratcheted per file in `analysis/baseline.toml`), and the scratch-pool
//! kernel convention (`KERNEL00x` — `*_into` kernels take their output
//! first and declare `fully overwrites`). `dssddi-analyze --list`
//! enumerates the codes; `--explain CODE` prints the rationale and the fix;
//! `--update-baseline` tightens the ratchet after cleanups.
//!
//! ## Migrating from the research facade
//!
//! The pre-service entry points still compile but are deprecated:
//! `Dssddi::fit_chronic` is replaced by
//! [`ServiceBuilder::fit_chronic`](core::ServiceBuilder::fit_chronic) (which
//! validates the configuration first), and `Dssddi::suggest` by
//! [`DecisionService::suggest_batch`](core::DecisionService::suggest_batch)
//! (which resolves drug names, supports per-request filters and memoizes
//! explanations). The engine-level `Dssddi::fit` remains available for
//! research code that needs raw matrices, and a fitted engine is reachable
//! through `DecisionService::engine`.

#![warn(missing_docs)]

pub use dssddi_analyze as analysis;
pub use dssddi_baselines as baselines;
pub use dssddi_chaos as chaos;
pub use dssddi_core as core;
pub use dssddi_data as data;
pub use dssddi_gnn as gnn;
pub use dssddi_graph as graph;
pub use dssddi_kb as kb;
pub use dssddi_loadgen as loadgen;
pub use dssddi_ml as ml;
pub use dssddi_obs as obs;
pub use dssddi_replica as replica;
pub use dssddi_serving as serving;
pub use dssddi_tensor as tensor;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dssddi_baselines::{
        BiparGcnRecommender, CauseRecRecommender, EccRecommender, GcmcRecommender,
        LightGcnRecommender, Recommender, SafeDrugRecommender, SvmRecommender, UserSim,
    };
    pub use dssddi_chaos::{ChaosProxy, FaultPlan};
    pub use dssddi_core::{
        Backbone, CheckPrescriptionRequest, CoreError, DecisionService, DrugId, Dssddi,
        DssddiConfig, Explanation, InteractionReport, MdModuleConfig, MsModuleConfig,
        PairInteraction, PatientId, ScoredDrug, ServiceBuilder, SuggestFilters, SuggestRequest,
        SuggestResponse, Suggestion,
    };
    pub use dssddi_data::{
        generate_chronic_cohort, generate_ddi_graph, generate_mimic_dataset,
        pretrained_drug_embeddings, split_patients, ChronicCohort, ChronicConfig, DdiConfig,
        Disease, DrkgConfig, DrugRegistry, MimicConfig, Split,
    };
    pub use dssddi_graph::{BipartiteGraph, Interaction, SignedGraph};
    pub use dssddi_kb::{
        AlertPolicy, EvidenceLevel, KbDiff, KbError, KbFact, KbInfo, KnowledgeBase, Severity,
    };
    pub use dssddi_loadgen::{LoadgenConfig, LoadgenReport, WorkloadMix};
    pub use dssddi_ml::{ndcg_at_k, precision_at_k, ranking_metrics, recall_at_k, top_k_indices};
    pub use dssddi_obs::{Histogram, MetricsRegistry, MetricsServer, TraceExemplar};
    pub use dssddi_replica::{ReplicaAgent, ReplicaClient, ReplicaGroup};
    pub use dssddi_serving::{
        AdmissionConfig, Client, GatewayStats, KeyVersions, ModelCatalog, ModelInfo, ModelKey,
        ModelStats, RateLimit, ReplicaState, ReplicaStats, RetryPolicy, Router, Server,
        ServerConfig, ServingError, StatsReport,
    };
    pub use dssddi_tensor::Matrix;
}
