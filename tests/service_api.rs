//! Integration tests for the typed service API surface as seen through the
//! `dssddi` facade prelude: builder validation, identifier round-trips,
//! filter semantics and prescription critique.

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ddi_world(seed: u64) -> (DrugRegistry, SignedGraph) {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    (registry, ddi)
}

#[test]
fn builder_validation_errors_are_contextual() {
    let (_, ddi) = ddi_world(1);

    // Odd hidden dims are invalid for sign-concatenating backbones.
    let err = ServiceBuilder::fast()
        .backbone(Backbone::Sgcn)
        .hidden_dim(9)
        .build_support(&ddi)
        .unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains('9') && message.contains("SGCN"),
        "uncontextual error: {message}"
    );

    // Zero epochs are caught before any training.
    assert!(ServiceBuilder::fast()
        .epochs(10, 0)
        .build_support(&ddi)
        .is_err());

    // α outside [0, 1] is rejected.
    assert!(ServiceBuilder::fast()
        .alpha(-0.1)
        .build_support(&ddi)
        .is_err());

    // A valid builder goes through.
    ServiceBuilder::fast()
        .backbone(Backbone::Gin)
        .hidden_dim(9)
        .build_support(&ddi)
        .unwrap();
}

#[test]
fn drug_ids_round_trip_through_the_registry() {
    let (registry, ddi) = ddi_world(2);
    let service = ServiceBuilder::fast().build_support(&ddi).unwrap();

    for drug in registry.iter() {
        // name -> id -> name round-trip for the whole formulary.
        let id = service.resolve_drug(&drug.name).unwrap();
        assert_eq!(id.index(), drug.id);
        assert_eq!(service.drug_name(id).unwrap(), drug.name);
        // Display form resolves too ("DID 48").
        assert_eq!(service.resolve_drug(&id.to_string()).unwrap(), id);
    }
    assert!(matches!(
        service.resolve_drug("definitely-not-a-drug"),
        Err(CoreError::UnknownDrug { .. })
    ));
}

#[test]
fn check_prescription_flags_known_adverse_pair_by_name() {
    let (_, ddi) = ddi_world(3);
    let service = ServiceBuilder::fast().build_support(&ddi).unwrap();

    // Metformin + Isosorbide Dinitrate is a Fig. 9 antagonistic case the
    // generator always includes.
    let report = service
        .check_prescription(&CheckPrescriptionRequest::new(vec![
            service.resolve_drug("Metformin").unwrap(),
            service.resolve_drug("Isosorbide Dinitrate").unwrap(),
        ]))
        .unwrap();
    assert!(!report.is_safe());
    assert_eq!(report.antagonistic.len(), 1);
    let pair = &report.antagonistic[0];
    assert_eq!(pair.a_name, "Metformin");
    assert_eq!(pair.b_name, "Isosorbide Dinitrate");
    assert_eq!(pair.interaction, Interaction::Antagonistic);

    // The synergistic Fig. 9 pair passes as safe.
    let safe = service
        .check_prescription(&CheckPrescriptionRequest::new(vec![
            service.resolve_drug("Indapamide").unwrap(),
            service.resolve_drug("Perindopril").unwrap(),
        ]))
        .unwrap();
    assert!(safe.is_safe());
    assert_eq!(safe.synergistic.len(), 1);
    assert!(safe.suggestion_satisfaction > 0.0);
}

#[test]
fn filter_semantics_on_a_fitted_service() {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(4);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 80,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
    let observed: Vec<usize> = (0..60).collect();
    let service = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(&cohort, &observed, &drug_features, &ddi, &mut rng)
        .unwrap();

    let patient = 70;
    let features = cohort.features().row(patient).to_vec();
    let unfiltered = service
        .suggest(&SuggestRequest::new(
            PatientId::new(patient),
            features.clone(),
            5,
        ))
        .unwrap();
    let banned: Vec<DrugId> = unfiltered.drugs[..2].iter().map(|d| d.id).collect();

    let filtered = service
        .suggest(
            &SuggestRequest::new(PatientId::new(patient), features, 5).with_filters(
                SuggestFilters {
                    exclude: banned.clone(),
                    ..Default::default()
                },
            ),
        )
        .unwrap();
    for drug in &filtered.drugs {
        assert!(
            !banned.contains(&drug.id),
            "excluded drug {} was suggested",
            drug.name
        );
    }
    // Still k drugs, ranked descending, with names.
    assert_eq!(filtered.drugs.len(), 5);
    for pair in filtered.drugs.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn batch_and_single_suggestions_agree() {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(5);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 70,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
    let observed: Vec<usize> = (0..55).collect();
    let service = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(&cohort, &observed, &drug_features, &ddi, &mut rng)
        .unwrap();

    let requests: Vec<SuggestRequest> = (55..70)
        .map(|p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
        .collect();
    let batched = service.suggest_batch(&requests).unwrap();
    for (request, from_batch) in requests.iter().zip(&batched) {
        let single = service.suggest(request).unwrap();
        assert_eq!(
            from_batch.drugs.iter().map(|d| d.id).collect::<Vec<_>>(),
            single.drugs.iter().map(|d| d.id).collect::<Vec<_>>(),
        );
        assert_eq!(
            from_batch.suggestion_satisfaction,
            single.suggestion_satisfaction
        );
    }
    // Empty batches are a no-op, not an error.
    assert!(service.suggest_batch(&[]).unwrap().is_empty());
}
