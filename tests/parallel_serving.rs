//! Parallel batch serving must be observationally identical to serial
//! serving: responses in request order, every score bit-identical, every
//! ranking unchanged — regardless of the shard count or batch composition.
//!
//! The fitted service is built once (training is the expensive part) and
//! shared across all randomized cases through a `OnceLock`; the service is
//! `Sync` by design, which is exactly what sharded serving relies on.

use std::sync::OnceLock;

use proptest::prelude::*;

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    service: DecisionService,
    cohort: ChronicCohort,
    held_out: Vec<usize>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(41);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients: 90,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
        let observed: Vec<usize> = (0..60).collect();
        let service = ServiceBuilder::fast()
            .hidden_dim(16)
            .epochs(20, 25)
            .fit_chronic(&cohort, &observed, &drug_features, &ddi, &mut rng)
            .unwrap();
        Fixture {
            service,
            cohort,
            held_out: (60..90).collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random batch compositions (with repeats), ks and shard counts,
    /// the sharded batch equals the serial batch response-by-response.
    #[test]
    fn sharded_suggest_batch_equals_serial_in_order_and_bits(
        seed in 0u64..1_000_000,
        batch_len in 1usize..40,
        shards in 1usize..9,
        k in 1usize..5,
    ) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<SuggestRequest> = (0..batch_len)
            .map(|_| {
                let p = fx.held_out[rand::Rng::gen_range(&mut rng, 0..fx.held_out.len())];
                SuggestRequest::new(
                    PatientId::new(p),
                    fx.cohort.features().row(p).to_vec(),
                    k,
                )
            })
            .collect();

        let serial = fx.service.suggest_batch_sharded(&requests, 1).unwrap();
        let sharded = fx.service.suggest_batch_sharded(&requests, shards).unwrap();
        prop_assert_eq!(serial.len(), requests.len());
        prop_assert_eq!(sharded.len(), requests.len());
        for (i, request) in requests.iter().enumerate() {
            prop_assert_eq!(serial[i].patient, request.patient);
            prop_assert_eq!(sharded[i].patient, request.patient, "order broken at {}", i);
            let a: Vec<(usize, u32)> = serial[i]
                .drugs
                .iter()
                .map(|d| (d.id.index(), d.score.to_bits()))
                .collect();
            let b: Vec<(usize, u32)> = sharded[i]
                .drugs
                .iter()
                .map(|d| (d.id.index(), d.score.to_bits()))
                .collect();
            prop_assert_eq!(a, b, "scores/ranking differ at response {}", i);
            prop_assert_eq!(
                serial[i].suggestion_satisfaction.to_bits(),
                sharded[i].suggestion_satisfaction.to_bits()
            );
        }
    }
}

/// The auto-sharding entry point also matches the serial path on a batch
/// large enough to actually engage multiple workers on multi-core hosts.
#[test]
fn auto_sharded_batch_matches_serial() {
    let fx = fixture();
    let requests: Vec<SuggestRequest> = fx
        .held_out
        .iter()
        .cycle()
        .take(64)
        .map(|&p| SuggestRequest::new(PatientId::new(p), fx.cohort.features().row(p).to_vec(), 3))
        .collect();
    let serial = fx.service.suggest_batch_sharded(&requests, 1).unwrap();
    let auto = fx.service.suggest_batch(&requests).unwrap();
    assert_eq!(serial.len(), auto.len());
    for (a, b) in serial.iter().zip(&auto) {
        assert_eq!(a.patient, b.patient);
        let sa: Vec<(usize, u32)> = a
            .drugs
            .iter()
            .map(|d| (d.id.index(), d.score.to_bits()))
            .collect();
        let sb: Vec<(usize, u32)> = b
            .drugs
            .iter()
            .map(|d| (d.id.index(), d.score.to_bits()))
            .collect();
        assert_eq!(sa, sb);
    }
}
