//! Persistence integration tests: a service fitted in one process must be
//! savable, loadable against the same registry, and produce byte-identical
//! suggestion rankings and explanations for the same requests — while
//! corrupt, truncated or version-mismatched files produce typed
//! [`CoreError`]s, never panics.

use std::path::PathBuf;

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A unique temp path per test so parallel tests never collide.
fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dssddi-save-load-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{name}-{}.dssd", std::process::id()))
}

struct World {
    registry: DrugRegistry,
    ddi: SignedGraph,
    cohort: ChronicCohort,
    drug_features: Matrix,
}

fn build_world(seed: u64) -> World {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 80,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
    World {
        registry,
        ddi,
        cohort,
        drug_features,
    }
}

fn fitted_service(world: &World, seed: u64) -> DecisionService {
    let mut rng = StdRng::seed_from_u64(seed);
    let observed: Vec<usize> = (0..60).collect();
    ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(
            &world.cohort,
            &observed,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .unwrap()
}

#[test]
fn reloaded_service_returns_identical_responses() {
    let world = build_world(11);
    let service = fitted_service(&world, 12);
    let path = temp_path("identical-responses");
    service.save(&path).unwrap();
    let reloaded = DecisionService::load(&path, DrugRegistry::standard()).unwrap();
    std::fs::remove_file(&path).ok();

    let requests: Vec<SuggestRequest> = (60..80)
        .map(|p| {
            SuggestRequest::new(
                PatientId::new(p),
                world.cohort.features().row(p).to_vec(),
                4,
            )
        })
        .collect();
    let original = service.suggest_batch(&requests).unwrap();
    let restored = reloaded.suggest_batch(&requests).unwrap();
    assert_eq!(original.len(), restored.len());
    for (a, b) in original.iter().zip(&restored) {
        assert_eq!(a.patient, b.patient);
        // Rankings are byte-identical: same drugs, same order, same bits.
        let ids_a: Vec<_> = a.drugs.iter().map(|d| d.id).collect();
        let ids_b: Vec<_> = b.drugs.iter().map(|d| d.id).collect();
        assert_eq!(ids_a, ids_b);
        for (da, db) in a.drugs.iter().zip(&b.drugs) {
            assert_eq!(da.score.to_bits(), db.score.to_bits());
            assert_eq!(da.name, db.name);
        }
        // Explanations agree structurally and numerically.
        assert_eq!(a.explanation.community.nodes, b.explanation.community.nodes);
        assert_eq!(a.explanation.edges, b.explanation.edges);
        assert_eq!(
            a.suggestion_satisfaction.to_bits(),
            b.suggestion_satisfaction.to_bits()
        );
    }

    // Raw score matrices agree bit-for-bit as well.
    let features = world
        .cohort
        .features()
        .select_rows(&(60..80).collect::<Vec<_>>());
    let s1 = service.predict_scores(&features).unwrap();
    let s2 = reloaded.predict_scores(&features).unwrap();
    let bits = |m: &Matrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&s1), bits(&s2));
}

#[test]
fn embedded_registry_load_matches_registry_backed_load() {
    // A serving host that only receives the DSSD file can reconstruct the
    // registry from the embedded name list and still serve byte-identical
    // suggestions — this is what the dssddi-serve gateway relies on.
    let world = build_world(41);
    let service = fitted_service(&world, 42);
    let path = temp_path("embedded-registry");
    service.save(&path).unwrap();
    let embedded = DecisionService::load_with_embedded_registry(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(embedded.registry().len(), service.registry().len());
    assert_eq!(embedded.registry().digest(), service.registry().digest());
    assert_eq!(embedded.registry().names(), service.registry().names());
    assert!(embedded.is_fitted());
    assert_eq!(embedded.n_features(), service.n_features());

    let requests: Vec<SuggestRequest> = (60..70)
        .map(|p| {
            SuggestRequest::new(
                PatientId::new(p),
                world.cohort.features().row(p).to_vec(),
                4,
            )
        })
        .collect();
    let original = service.suggest_batch(&requests).unwrap();
    let restored = embedded.suggest_batch(&requests).unwrap();
    for (a, b) in original.iter().zip(&restored) {
        assert_eq!(a, b, "embedded-registry load must serve identically");
        for (da, db) in a.drugs.iter().zip(&b.drugs) {
            assert_eq!(da.score.to_bits(), db.score.to_bits());
        }
    }
    assert!(matches!(
        DecisionService::load_with_embedded_registry(temp_path("no-such-file")),
        Err(CoreError::Persistence { .. })
    ));
}

#[test]
fn support_only_service_round_trips() {
    let world = build_world(21);
    let service = ServiceBuilder::fast().build_support(&world.ddi).unwrap();
    let path = temp_path("support-only");
    service.save(&path).unwrap();
    let reloaded = DecisionService::load(&path, world.registry.clone()).unwrap();
    std::fs::remove_file(&path).ok();

    let request = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    let a = service.check_prescription(&request).unwrap();
    let b = reloaded.check_prescription(&request).unwrap();
    assert_eq!(a.is_safe(), b.is_safe());
    assert_eq!(a.antagonistic, b.antagonistic);
    assert_eq!(
        a.suggestion_satisfaction.to_bits(),
        b.suggestion_satisfaction.to_bits()
    );
    // A support-only service still refuses to suggest after reload.
    let suggest = SuggestRequest::new(PatientId::new(0), vec![0.0; 4], 2);
    assert!(matches!(
        reloaded.suggest(&suggest),
        Err(CoreError::NotFitted { .. })
    ));
}

#[test]
fn corrupt_truncated_and_mismatched_files_error_without_panics() {
    let world = build_world(31);
    let service = fitted_service(&world, 32);
    let path = temp_path("corruption");
    service.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Truncation at a spread of prefixes: always a typed error.
    for cut in [0, 3, 4, 13, 14, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            matches!(
                DecisionService::load(&path, DrugRegistry::standard()),
                Err(CoreError::Persistence { .. })
            ),
            "truncation at {cut} must be a persistence error"
        );
    }

    // A flipped payload byte fails the checksum.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x20;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        DecisionService::load(&path, DrugRegistry::standard()),
        Err(CoreError::Persistence { .. })
    ));

    // A bumped format version is refused with a typed error.
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xEE;
    std::fs::write(&path, &wrong_version).unwrap();
    match DecisionService::load(&path, DrugRegistry::standard()) {
        Err(CoreError::Persistence { what }) => {
            assert!(what.contains("version"), "uncontextual error: {what}")
        }
        other => panic!("expected Persistence error, got {other:?}"),
    }

    // Engine-level loading rejects a service container (wrong section).
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Dssddi::load(&path),
        Err(CoreError::Persistence { .. })
    ));

    // A missing file is an I/O persistence error, not a panic.
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        DecisionService::load(&path, DrugRegistry::standard()),
        Err(CoreError::Persistence { .. })
    ));
}

#[test]
fn engine_save_load_round_trips_scores() {
    let world = build_world(41);
    let mut rng = StdRng::seed_from_u64(42);
    let observed: Vec<usize> = (0..60).collect();
    let mut config = DssddiConfig::fast();
    config.ddi.hidden_dim = 16;
    config.ddi.epochs = 25;
    config.md.hidden_dim = 16;
    config.md.epochs = 30;
    let train_features = world.cohort.features().select_rows(&observed);
    let train_graph = world.cohort.bipartite_graph(&observed).unwrap();
    let engine = Dssddi::fit(
        &train_features,
        &train_graph,
        &world.drug_features,
        &world.ddi,
        &config,
        &mut rng,
    )
    .unwrap();

    let path = temp_path("engine");
    engine.save(&path).unwrap();
    let reloaded = Dssddi::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let features = world.cohort.features().select_rows(&[70, 71, 72]);
    let s1 = engine.predict_scores(&features).unwrap();
    let s2 = reloaded.predict_scores(&features).unwrap();
    assert_eq!(s1.data().len(), s2.data().len());
    for (a, b) in s1.data().iter().zip(s2.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        engine.ddi_module().is_some(),
        reloaded.ddi_module().is_some()
    );
    assert_eq!(
        engine.config().md.hidden_dim,
        reloaded.config().md.hidden_dim
    );
}
