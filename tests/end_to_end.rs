//! Cross-crate integration tests: the full DSSDDI pipeline from synthetic
//! data generation through training, suggestion, explanation and evaluation,
//! through both the typed [`DecisionService`] API and the legacy deprecated
//! shims (which must keep compiling and agreeing with the service).

use dssddi::core::ms_module::explain_suggestion;
use dssddi::core::MsModuleConfig;
use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    registry: DrugRegistry,
    ddi: SignedGraph,
    cohort: ChronicCohort,
    drug_features: Matrix,
    split: Split,
}

fn build_world(n_patients: usize, seed: u64) -> World {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let drug_features = pretrained_drug_embeddings(
        &registry,
        &DrkgConfig {
            dim: 16,
            epochs: 10,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).unwrap();
    World {
        registry,
        ddi,
        cohort,
        drug_features,
        split,
    }
}

fn tiny_config() -> DssddiConfig {
    let mut config = DssddiConfig::fast();
    config.ddi.hidden_dim = 16;
    config.ddi.epochs = 40;
    config.md.hidden_dim = 16;
    config.md.epochs = 50;
    config
}

#[test]
fn decision_service_end_to_end() {
    let world = build_world(120, 1);
    let mut rng = StdRng::seed_from_u64(2);

    // Build through the validating builder.
    let service = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(40, 50)
        .fit_chronic(
            &world.cohort,
            &world.split.train,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .expect("service training");

    // Batched suggestion: one request per held-out patient.
    let requests: Vec<SuggestRequest> = world
        .split
        .test
        .iter()
        .map(|&p| {
            SuggestRequest::new(
                PatientId::new(p),
                world.cohort.features().row(p).to_vec(),
                4,
            )
        })
        .collect();
    let responses = service.suggest_batch(&requests).expect("suggest_batch");
    assert_eq!(responses.len(), world.split.test.len());
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(response.patient, request.patient);
        assert_eq!(response.drugs.len(), 4);
        for drug in &response.drugs {
            // Responses carry registry-resolved drug *names*, not indices.
            assert_eq!(
                drug.name,
                world.registry.drug(drug.id.index()).unwrap().name,
                "drug names must come from the registry"
            );
            assert!((0.0..=1.0).contains(&drug.score));
            assert!(response.explanation.community.contains(drug.id.index()));
        }
        assert!(response.suggestion_satisfaction >= 0.0);
    }

    // Prescription critique flags the paper's known antagonistic pair.
    let check = CheckPrescriptionRequest::new(vec![
        service.resolve_drug("Gabapentin").unwrap(),
        service.resolve_drug("Isosorbide Mononitrate").unwrap(),
    ]);
    let report = service
        .check_prescription(&check)
        .expect("check_prescription");
    assert!(!report.is_safe());
    assert_eq!(report.antagonistic.len(), 1);
    assert_eq!(report.antagonistic[0].a_name, "Gabapentin");
    assert!(report.explanation.community.contains(61));

    // Filters: a patient already taking Isosorbide Mononitrate must not be
    // suggested any of its antagonists.
    let taken = service.resolve_drug("Isosorbide Mononitrate").unwrap();
    let filtered = service
        .suggest(
            &SuggestRequest::new(
                PatientId::new(world.split.test[0]),
                world.cohort.features().row(world.split.test[0]).to_vec(),
                4,
            )
            .with_filters(SuggestFilters {
                avoid_antagonists_of: vec![taken],
                ..Default::default()
            }),
        )
        .expect("filtered suggestion");
    for drug in &filtered.drugs {
        assert_ne!(
            world.ddi.interaction(taken.index(), drug.id.index()),
            Some(Interaction::Antagonistic)
        );
    }
}

#[test]
#[allow(deprecated)] // intentionally exercises the legacy shims
fn full_pipeline_fit_suggest_explain_evaluate() {
    let world = build_world(120, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let system = Dssddi::fit_chronic(
        &world.cohort,
        &world.split.train,
        &world.drug_features,
        &world.ddi,
        &tiny_config(),
        &mut rng,
    )
    .unwrap();

    let test_features = world.cohort.features().select_rows(&world.split.test);
    let test_labels = world.cohort.labels().select_rows(&world.split.test);

    // Suggestions carry scores, explanations and valid drug IDs.
    let suggestions = system.suggest(&test_features, 4).unwrap();
    assert_eq!(suggestions.len(), world.split.test.len());
    for suggestion in &suggestions {
        assert_eq!(suggestion.drugs.len(), 4);
        for s in &suggestion.drugs {
            assert!(s.drug < world.registry.len());
            assert!((0.0..=1.0).contains(&s.score));
        }
        assert!(suggestion.explanation.suggestion_satisfaction >= 0.0);
    }

    // Evaluation metrics are bounded and the system is clearly better than
    // chance on recall.
    let scores = system.predict_scores(&test_features).unwrap();
    let metrics = ranking_metrics(&scores, &test_labels, 6).unwrap();
    assert!(metrics.precision > 0.0 && metrics.precision <= 1.0);
    assert!(
        metrics.recall > 0.1,
        "recall@6 unexpectedly low: {}",
        metrics.recall
    );
    assert!(metrics.ndcg > 0.1);
}

#[test]
fn dssddi_is_clearly_better_than_chance_and_competitive_with_usersim() {
    let world = build_world(150, 3);
    let mut config = tiny_config();
    config.md.epochs = 250;
    config.md.hidden_dim = 32;
    config.ddi.hidden_dim = 32;
    let mut rng = StdRng::seed_from_u64(4);
    let system = ServiceBuilder::new()
        .config(config)
        .fit_chronic(
            &world.cohort,
            &world.split.train,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .unwrap();

    let train_x = world.cohort.features().select_rows(&world.split.train);
    let train_y = world.cohort.labels().select_rows(&world.split.train);
    let test_x = world.cohort.features().select_rows(&world.split.test);
    let test_y = world.cohort.labels().select_rows(&world.split.test);

    let usersim = UserSim::fit(&train_x, &train_y).unwrap();
    let ours = ndcg_at_k(&system.predict_scores(&test_x).unwrap(), &test_y, 6).unwrap();
    let theirs = ndcg_at_k(&usersim.predict_scores(&test_x).unwrap(), &test_y, 6).unwrap();
    let random = ndcg_at_k(
        &Matrix::rand_uniform(test_y.rows(), test_y.cols(), 0.0, 1.0, &mut rng),
        &test_y,
        6,
    )
    .unwrap();
    // At this deliberately tiny training scale (integration-test budget) we
    // only require DSSDDI to be far better than chance and in UserSim's
    // league; the full-scale comparison is exercised by the experiment
    // binaries (Table I) where DSSDDI is trained for hundreds of epochs.
    assert!(
        ours > 2.0 * random,
        "DSSDDI NDCG@6 ({ours:.3}) should be well above chance ({random:.3})"
    );
    assert!(
        ours > 0.6 * theirs,
        "DSSDDI NDCG@6 ({ours:.3}) should be competitive with UserSim ({theirs:.3})"
    );
}

#[test]
fn training_is_deterministic_for_a_fixed_seed() {
    let world = build_world(80, 5);
    let fit = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = ServiceBuilder::new()
            .config(tiny_config())
            .fit_chronic(
                &world.cohort,
                &world.split.train,
                &world.drug_features,
                &world.ddi,
                &mut rng,
            )
            .unwrap();
        let test_features = world.cohort.features().select_rows(&world.split.test[..5]);
        service.predict_scores(&test_features).unwrap()
    };
    let a = fit(9);
    let b = fit(9);
    assert_eq!(a.data(), b.data(), "same seed must give identical scores");
}

#[test]
fn suggestion_satisfaction_prefers_paper_synergy_pairs() {
    let mut rng = StdRng::seed_from_u64(6);
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
    let ms = MsModuleConfig::default();
    // Simvastatin + Atorvastatin (synergistic) vs Gabapentin + Isosorbide
    // Mononitrate (antagonistic) — the Fig. 8 comparison.
    let good = explain_suggestion(&ddi, &[46, 47], &ms).unwrap();
    let bad = explain_suggestion(&ddi, &[61, 59], &ms).unwrap();
    assert!(good.suggestion_satisfaction > bad.suggestion_satisfaction);
    assert!(good.internal_synergy >= 1);
    assert!(bad.internal_antagonism >= 1);
}

#[test]
fn mimic_like_pipeline_with_gin_backbone() {
    let mut rng = StdRng::seed_from_u64(8);
    let mimic = generate_mimic_dataset(
        &MimicConfig {
            n_patients: 150,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let split = split_patients(mimic.n_patients(), (5, 3, 2), &mut rng).unwrap();
    let train_x = mimic.features().select_rows(&split.train);
    let test_x = mimic.features().select_rows(&split.test);
    let test_y = mimic.labels().select_rows(&split.test);
    let pairs: Vec<(usize, usize)> = split
        .train
        .iter()
        .enumerate()
        .flat_map(|(row, &p)| mimic.drugs_of(p).into_iter().map(move |d| (row, d)))
        .collect();
    let train_graph =
        BipartiteGraph::from_pairs(split.train.len(), mimic.n_drugs(), &pairs).unwrap();

    let mut config = tiny_config();
    config.ddi.backbone = Backbone::Gin;
    config.md.drug_features = dssddi::core::config::DrugFeatureSource::OneHot;
    let placeholder = Matrix::identity(mimic.n_drugs());
    let system = Dssddi::fit(
        &train_x,
        &train_graph,
        &placeholder,
        mimic.ddi(),
        &config,
        &mut rng,
    )
    .unwrap();
    let scores = system.predict_scores(&test_x).unwrap();
    let metrics = ranking_metrics(&scores, &test_y, 8).unwrap();
    // MIMIC-like labels are dense (8-15 drugs), so precision is high even for
    // a lightly trained model.
    assert!(
        metrics.precision > 0.2,
        "precision@8 too low: {}",
        metrics.precision
    );
}

#[test]
fn baselines_and_dssddi_share_the_same_interface_shapes() {
    let world = build_world(80, 10);
    let mut rng = StdRng::seed_from_u64(11);
    let train_x = world.cohort.features().select_rows(&world.split.train);
    let train_y = world.cohort.labels().select_rows(&world.split.train);
    let train_graph = world.cohort.bipartite_graph(&world.split.train).unwrap();
    let test_x = world.cohort.features().select_rows(&world.split.test);
    let n_test = world.split.test.len();
    let n_drugs = world.registry.len();

    let graph_cfg = dssddi::baselines::graph_models::GraphBaselineConfig {
        hidden_dim: 16,
        epochs: 20,
        ..Default::default()
    };
    let neural_cfg = dssddi::baselines::neural::NeuralConfig {
        hidden_dim: 16,
        epochs: 20,
        ..Default::default()
    };

    let recommenders: Vec<Box<dyn Recommender>> = vec![
        Box::new(UserSim::fit(&train_x, &train_y).unwrap()),
        Box::new(
            SvmRecommender::fit(
                &train_x,
                &train_y,
                &dssddi::ml::SvmConfig {
                    epochs: 10,
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        Box::new(GcmcRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng).unwrap()),
        Box::new(LightGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng).unwrap()),
        Box::new(BiparGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng).unwrap()),
        Box::new(
            SafeDrugRecommender::fit(&train_x, &train_y, &world.ddi, 0.05, &neural_cfg, &mut rng)
                .unwrap(),
        ),
        Box::new(CauseRecRecommender::fit(&train_x, &train_y, 0.2, &neural_cfg, &mut rng).unwrap()),
    ];
    for recommender in &recommenders {
        let scores = recommender.predict_scores(&test_x).unwrap();
        assert_eq!(
            scores.shape(),
            (n_test, n_drugs),
            "{} shape",
            recommender.name()
        );
        assert!(
            scores.all_finite(),
            "{} produced non-finite scores",
            recommender.name()
        );
    }
}
