//! Persistence: train a [`DecisionService`] once, save it to a `DSSD`
//! container file, reload it (as a serving host would after receiving the
//! file), and verify the reloaded service produces identical suggestions.
//!
//! Run with: `cargo run --release --example save_load`

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Train a service on the synthetic chronic-disease world (the
    //    "offline training host" half of the deployment).
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 200,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("cohort");
    let drug_features = pretrained_drug_embeddings(
        &registry,
        &DrkgConfig {
            dim: 32,
            epochs: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("TransE embeddings");
    let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).expect("split");
    let service = ServiceBuilder::fast()
        .hidden_dim(32)
        .fit_chronic(&cohort, &split.train, &drug_features, &ddi, &mut rng)
        .expect("DSSDDI training");

    // 2. Save the fitted service. The file is a versioned `DSSD` container:
    //    magic bytes, format version, payload length, payload, CRC-32.
    let path = std::env::temp_dir().join("dssddi-quicksave.dssd");
    service.save(&path).expect("save");
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "Saved fitted service to {} ({file_len} bytes)",
        path.display()
    );

    // 3. Reload it, handing back the registry so typed DrugIds resolve to
    //    the same drugs (the "serving host" half). Loading validates the
    //    registry against the persisted formulary and checksums the file.
    let reloaded = DecisionService::load(&path, DrugRegistry::standard()).expect("load");
    println!("Reloaded service: {reloaded:?}");

    // 4. The reloaded service is byte-identical in behaviour.
    let requests: Vec<SuggestRequest> = split.test[..4]
        .iter()
        .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
        .collect();
    let before = service
        .suggest_batch(&requests)
        .expect("suggest (original)");
    let after = reloaded
        .suggest_batch(&requests)
        .expect("suggest (reloaded)");
    for (a, b) in before.iter().zip(&after) {
        println!("{}", a.patient);
        for (da, db) in a.drugs.iter().zip(&b.drugs) {
            assert_eq!(da.id, db.id, "rankings must survive the round trip");
            assert_eq!(
                da.score.to_bits(),
                db.score.to_bits(),
                "scores must be bit-identical"
            );
            println!(
                "  {:<24} score {:.4}  (reloaded: {:.4})",
                da.name, da.score, db.score
            );
        }
        assert_eq!(
            a.suggestion_satisfaction.to_bits(),
            b.suggestion_satisfaction.to_bits()
        );
    }
    println!(
        "Original and reloaded services agree bit-for-bit on {} patients.",
        before.len()
    );

    // 5. Damaged files are rejected with typed errors, never panics.
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupted");
    match DecisionService::load(&path, DrugRegistry::standard()) {
        Err(e) => println!("Corrupted file correctly rejected: {e}"),
        Ok(_) => panic!("corrupted file must not load"),
    }
    std::fs::remove_file(&path).ok();
}
