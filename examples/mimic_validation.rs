//! Validation on the MIMIC-III-like EHR data (the Section V-E protocol):
//! diagnosis/procedure codes of earlier visits are the features, the
//! last-visit prescription is the label, and only antagonistic DDI pairs are
//! available, so the service is built with the GIN backbone.
//!
//! MIMIC drug indices are not the chronic formulary, so the service is given
//! a registry-free engine here: the builder still validates the
//! configuration, while the engine-level API handles the raw matrices.
//!
//! Run with: `cargo run --release --example mimic_validation`

use dssddi::core::config::DrugFeatureSource;
use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let mimic = generate_mimic_dataset(
        &MimicConfig {
            n_patients: 800,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("MIMIC-like data");
    println!(
        "MIMIC-like EHR: {} patients, {} drugs, mean {:.1} drugs per last visit, {} antagonistic DDI pairs",
        mimic.n_patients(),
        mimic.n_drugs(),
        mimic.mean_drugs_per_patient(),
        mimic.ddi().antagonistic_count()
    );

    let split = split_patients(mimic.n_patients(), (5, 3, 2), &mut rng).expect("split");
    let train_x = mimic.features().select_rows(&split.train);
    let train_y = mimic.labels().select_rows(&split.train);
    let test_x = mimic.features().select_rows(&split.test);
    let test_y = mimic.labels().select_rows(&split.test);

    // Training bipartite graph over the observed patients.
    let pairs: Vec<(usize, usize)> = split
        .train
        .iter()
        .enumerate()
        .flat_map(|(row, &p)| mimic.drugs_of(p).into_iter().map(move |d| (row, d)))
        .collect();
    let train_graph =
        BipartiteGraph::from_pairs(split.train.len(), mimic.n_drugs(), &pairs).expect("graph");

    // Validate the MIMIC configuration through the builder, then fit the
    // engine on the raw matrices (MIMIC uses its own drug index space).
    let builder = ServiceBuilder::fast()
        .backbone(Backbone::Gin)
        .hidden_dim(32)
        .epochs(60, 80);
    builder.validate().expect("valid MIMIC configuration");
    let mut config = builder.peek_config().clone();
    config.md.drug_features = DrugFeatureSource::OneHot;
    let placeholder = Matrix::identity(mimic.n_drugs());
    let dssddi = Dssddi::fit(
        &train_x,
        &train_graph,
        &placeholder,
        mimic.ddi(),
        &config,
        &mut rng,
    )
    .expect("DSSDDI(GIN)");

    // A simple baseline for reference.
    let usersim = UserSim::fit(&train_x, &train_y).expect("UserSim");

    println!(
        "\n{:<14} {:>8} {:>8} {:>8}",
        "Method", "P@8", "R@8", "NDCG@8"
    );
    for (name, scores) in [
        (
            "DSSDDI(GIN)",
            dssddi.predict_scores(&test_x).expect("scores"),
        ),
        ("UserSim", usersim.predict_scores(&test_x).expect("scores")),
    ] {
        let m = ranking_metrics(&scores, &test_y, 8).expect("metrics");
        println!(
            "{name:<14} {:>8.3} {:>8.3} {:>8.3}",
            m.precision, m.recall, m.ndcg
        );
    }
    println!("\n(The paper's Table IV reports the same ordering at k = 4, 6, 8.)");
}
