//! Validation on the MIMIC-III-like EHR data (the Section V-E protocol):
//! diagnosis/procedure codes of earlier visits are the features, the
//! last-visit prescription is the label, and only antagonistic DDI pairs are
//! available, so the service is built with the GIN backbone.
//!
//! The MIMIC generator now produces an anonymised [`DrugRegistry`] alongside
//! the dataset, so the whole pipeline runs through the typed
//! [`DecisionService`] API — train, evaluate, request typed suggestions, and
//! (because any fitted service persists to a `DSSD` file) the resulting
//! model can be served by the `dssddi-serve` gateway like the chronic one.
//!
//! Run with: `cargo run --release --example mimic_validation`

use dssddi::core::config::DrugFeatureSource;
use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let mimic = generate_mimic_dataset(
        &MimicConfig {
            n_patients: 800,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("MIMIC-like data");
    println!(
        "MIMIC-like EHR: {} patients, {} drugs, mean {:.1} drugs per last visit, {} antagonistic DDI pairs",
        mimic.n_patients(),
        mimic.n_drugs(),
        mimic.mean_drugs_per_patient(),
        mimic.ddi().antagonistic_count()
    );

    let split = split_patients(mimic.n_patients(), (5, 3, 2), &mut rng).expect("split");
    let train_x = mimic.features().select_rows(&split.train);
    let train_y = mimic.labels().select_rows(&split.train);
    let test_x = mimic.features().select_rows(&split.test);
    let test_y = mimic.labels().select_rows(&split.test);

    // Training bipartite graph over the observed patients.
    let pairs: Vec<(usize, usize)> = split
        .train
        .iter()
        .enumerate()
        .flat_map(|(row, &p)| mimic.drugs_of(p).into_iter().map(move |d| (row, d)))
        .collect();
    let train_graph =
        BipartiteGraph::from_pairs(split.train.len(), mimic.n_drugs(), &pairs).expect("graph");

    // The generated registry covers the anonymised label space, so the
    // typed service API fits MIMIC end to end — no more engine-level
    // fallback. Only antagonistic interactions exist, hence GIN; drug
    // features are one-hot because MIMIC drugs have no KG embeddings.
    let mut builder = ServiceBuilder::fast()
        .backbone(Backbone::Gin)
        .hidden_dim(32)
        .epochs(60, 80)
        .registry(mimic.registry().clone());
    let mut config = builder.peek_config().clone();
    config.md.drug_features = DrugFeatureSource::OneHot;
    builder = builder.config(config);
    let placeholder = Matrix::identity(mimic.n_drugs());
    let service = builder
        .fit(&train_x, &train_graph, &placeholder, mimic.ddi(), &mut rng)
        .expect("DSSDDI(GIN) service");

    // A simple baseline for reference.
    let usersim = UserSim::fit(&train_x, &train_y).expect("UserSim");

    println!(
        "\n{:<14} {:>8} {:>8} {:>8}",
        "Method", "P@8", "R@8", "NDCG@8"
    );
    for (name, scores) in [
        (
            "DSSDDI(GIN)",
            service.predict_scores(&test_x).expect("scores"),
        ),
        ("UserSim", usersim.predict_scores(&test_x).expect("scores")),
    ] {
        let m = ranking_metrics(&scores, &test_y, 8).expect("metrics");
        println!(
            "{name:<14} {:>8.3} {:>8.3} {:>8.3}",
            m.precision, m.recall, m.ndcg
        );
    }
    println!("\n(The paper's Table IV reports the same ordering at k = 4, 6, 8.)");

    // Typed requests resolve anonymised names through the MIMIC registry.
    let requests: Vec<SuggestRequest> = split.test[..3]
        .iter()
        .map(|&p| SuggestRequest::new(PatientId::new(p), mimic.features().row(p).to_vec(), 8))
        .collect();
    println!("\nTyped suggestions for three held-out ICU patients:");
    for response in service.suggest_batch(&requests).expect("suggest") {
        let top: Vec<String> = response
            .drugs
            .iter()
            .take(3)
            .map(|d| format!("{} ({:.3})", d.name, d.score))
            .collect();
        println!(
            "  {}: {} ... | SS {:.3}",
            response.patient,
            top.join(", "),
            response.suggestion_satisfaction
        );
    }

    // The fitted MIMIC service persists like any other, so the serving
    // gateway can shard it next to the chronic model:
    //   service.save("mimic.dssd")  →  dssddi-serve mimic=mimic.dssd
    let dir = std::env::temp_dir().join("dssddi-mimic-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mimic.dssd");
    service.save(&path).expect("save MIMIC service");
    let mut catalog = ModelCatalog::new();
    catalog
        .load_file(ModelKey::new("mimic").expect("key"), &path)
        .expect("load MIMIC model into the gateway catalog");
    let router = Router::new(catalog);
    let routed = router
        .suggest_batch(&ModelKey::new("mimic").expect("key"), &requests)
        .expect("routed suggestions");
    println!(
        "\nServed through the gateway router: {} responses, model list: {:?}",
        routed.len(),
        router
            .list_models()
            .iter()
            .map(|m| format!("{} ({} drugs)", m.key, m.n_drugs))
            .collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}
