//! Deep dive into the Medical Support module: explain arbitrary
//! prescriptions (including the paper's Fig. 8 / Fig. 9 drug sets) with
//! closest-truss-community subgraphs and Suggestion Satisfaction scores —
//! no model training required.
//!
//! Run with: `cargo run --release --example explain_prescription`

use dssddi::core::ms_module::explain_suggestion;
use dssddi::core::MsModuleConfig;
use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let ms = MsModuleConfig::default();

    let cases: Vec<(&str, Vec<usize>)> = vec![
        (
            "Fig. 8 DSSDDI suggestion: Simvastatin + Atorvastatin + Isosorbide Mononitrate",
            vec![46, 47, 59],
        ),
        (
            "Fig. 8 counter-example: Gabapentin + Isosorbide Mononitrate (antagonistic)",
            vec![61, 59],
        ),
        ("Fig. 9 case 1: Indapamide + Perindopril (synergistic)", vec![10, 5]),
        ("Fig. 9 case 4: Metformin + Isosorbide Dinitrate (antagonistic)", vec![48, 58]),
        ("A hypertension triple therapy: Perindopril + Indapamide + Amlodipine", vec![5, 10, 8]),
    ];

    for (title, drugs) in cases {
        let explanation = explain_suggestion(&ddi, &drugs, &ms).expect("explanation");
        println!("== {title} ==");
        println!(
            "  drugs: {}",
            drugs
                .iter()
                .map(|&d| format!("{} (DID {d})", registry.drug(d).unwrap().name))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  community: {} drugs, {} edges, trussness {}, diameter {}",
            explanation.community.node_count(),
            explanation.edges.len(),
            explanation.community.trussness,
            if explanation.community.diameter == usize::MAX {
                "inf".to_string()
            } else {
                explanation.community.diameter.to_string()
            }
        );
        println!(
            "  internal synergy {} | internal antagonism {} | external antagonism {}",
            explanation.internal_synergy,
            explanation.internal_antagonism,
            explanation.external_antagonism
        );
        println!("  Suggestion Satisfaction = {:.4}\n", explanation.suggestion_satisfaction);
    }

    // Show that SS prefers the synergistic statin pair over the antagonistic
    // nitrate/anticonvulsant pair, exactly the behaviour Table III relies on.
    let good = explain_suggestion(&ddi, &[46, 47], &ms).unwrap().suggestion_satisfaction;
    let bad = explain_suggestion(&ddi, &[61, 59], &ms).unwrap().suggestion_satisfaction;
    println!("SS(Simvastatin, Atorvastatin) = {good:.4} > SS(Gabapentin, Isosorbide) = {bad:.4}: {}",
        if good > bad { "as expected" } else { "UNEXPECTED" });
}
