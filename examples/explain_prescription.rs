//! Deep dive into the Medical Support module through the service API:
//! critique arbitrary prescriptions (including the paper's Fig. 8 / Fig. 9
//! drug sets) with closest-truss-community subgraphs and Suggestion
//! Satisfaction scores — no model training required, thanks to the
//! support-only service built by `ServiceBuilder::build_support`.
//!
//! Run with: `cargo run --release --example explain_prescription`

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");

    // A support-only service: prescription critique works without any
    // trained model.
    let service = ServiceBuilder::fast()
        .build_support(&ddi)
        .expect("support service");

    let cases: Vec<(&str, Vec<&str>)> = vec![
        (
            "Fig. 8 DSSDDI suggestion: Simvastatin + Atorvastatin + Isosorbide Mononitrate",
            vec!["Simvastatin", "Atorvastatin", "Isosorbide Mononitrate"],
        ),
        (
            "Fig. 8 counter-example: Gabapentin + Isosorbide Mononitrate (antagonistic)",
            vec!["Gabapentin", "Isosorbide Mononitrate"],
        ),
        (
            "Fig. 9 case 1: Indapamide + Perindopril (synergistic)",
            vec!["Indapamide", "Perindopril"],
        ),
        (
            "Fig. 9 case 4: Metformin + Isosorbide Dinitrate (antagonistic)",
            vec!["Metformin", "Isosorbide Dinitrate"],
        ),
        (
            "A hypertension triple therapy: Perindopril + Indapamide + Amlodipine",
            vec!["Perindopril", "Indapamide", "Amlodipine"],
        ),
    ];

    for (title, names) in cases {
        let drugs: Vec<DrugId> = names
            .iter()
            .map(|name| service.resolve_drug(name).expect("drug in the formulary"))
            .collect();
        let report = service
            .check_prescription(&CheckPrescriptionRequest::new(drugs))
            .expect("prescription check");
        println!("== {title} ==");
        println!(
            "  drugs: {}",
            report
                .drugs
                .iter()
                .map(|d| format!("{} ({})", d.name, d.id))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let exp = &report.explanation;
        println!(
            "  community: {} drugs, {} edges, trussness {}, diameter {}",
            exp.community.node_count(),
            exp.edges.len(),
            exp.community.trussness,
            if exp.community.diameter == usize::MAX {
                "inf".to_string()
            } else {
                exp.community.diameter.to_string()
            }
        );
        println!(
            "  internal synergy {} | internal antagonism {} | external antagonism {}",
            exp.internal_synergy, exp.internal_antagonism, exp.external_antagonism
        );
        for pair in &report.antagonistic {
            println!(
                "  DANGER: {} <-> {} is antagonistic",
                pair.a_name, pair.b_name
            );
        }
        for pair in &report.synergistic {
            println!(
                "  good:   {} <-> {} is synergistic",
                pair.a_name, pair.b_name
            );
        }
        println!(
            "  Suggestion Satisfaction = {:.4}\n",
            report.suggestion_satisfaction
        );
    }

    // Show that SS prefers the synergistic statin pair over the antagonistic
    // nitrate/anticonvulsant pair, exactly the behaviour Table III relies on.
    let ss = |a: &str, b: &str| {
        service
            .check_prescription(&CheckPrescriptionRequest::new(vec![
                service.resolve_drug(a).unwrap(),
                service.resolve_drug(b).unwrap(),
            ]))
            .unwrap()
            .suggestion_satisfaction
    };
    let good = ss("Simvastatin", "Atorvastatin");
    let bad = ss("Gabapentin", "Isosorbide Mononitrate");
    println!(
        "SS(Simvastatin, Atorvastatin) = {good:.4} > SS(Gabapentin, Isosorbide) = {bad:.4}: {}",
        if good > bad {
            "as expected"
        } else {
            "UNEXPECTED"
        }
    );
}
