//! A clinic-style workflow on the chronic cohort: compare the DSSDDI
//! decision service against the simple baselines a clinic could deploy
//! (UserSim and SVM), and show how the Suggestion Satisfaction measure and
//! the service's prescription checks separate them even when the accuracy
//! gap is small.
//!
//! Run with: `cargo run --release --example chronic_clinic`

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 600,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("cohort");
    let drug_features = pretrained_drug_embeddings(
        &registry,
        &DrkgConfig {
            dim: 32,
            epochs: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("embeddings");
    let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).expect("split");

    let train_x = cohort.features().select_rows(&split.train);
    let train_y = cohort.labels().select_rows(&split.train);
    let test_x = cohort.features().select_rows(&split.test);
    let test_y = cohort.labels().select_rows(&split.test);

    // Fit the decision service and two deployable baselines.
    let service = ServiceBuilder::fast()
        .hidden_dim(32)
        .epochs(60, 100)
        .fit_chronic(&cohort, &split.train, &drug_features, &ddi, &mut rng)
        .expect("DSSDDI service");
    let usersim = UserSim::fit(&train_x, &train_y).expect("UserSim");
    let svm =
        SvmRecommender::fit(&train_x, &train_y, &dssddi::ml::SvmConfig::default()).expect("SVM");

    let methods: Vec<(&str, Matrix)> = vec![
        ("DSSDDI", service.predict_scores(&test_x).expect("scores")),
        ("UserSim", usersim.predict_scores(&test_x).expect("scores")),
        ("SVM", svm.predict_scores(&test_x).expect("scores")),
    ];

    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "Method", "P@4", "R@4", "NDCG@4", "SS@4"
    );
    for (name, scores) in &methods {
        let m = ranking_metrics(scores, &test_y, 4).expect("metrics");
        let mut ss = 0.0;
        for p in 0..scores.rows() {
            let top: Vec<DrugId> = top_k_indices(scores.row(p), 4)
                .into_iter()
                .map(DrugId::new)
                .collect();
            ss += service
                .check_prescription(&CheckPrescriptionRequest::new(top))
                .expect("prescription check")
                .suggestion_satisfaction;
        }
        ss /= scores.rows() as f64;
        println!(
            "{name:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            m.precision, m.recall, m.ndcg, ss
        );
    }

    // How often does each method co-suggest an antagonistic pair? The
    // service's InteractionReport answers this directly.
    println!("\nAntagonistic co-suggestions in the top-4 (lower is safer):");
    for (name, scores) in &methods {
        let mut conflicts = 0usize;
        for p in 0..scores.rows() {
            let top: Vec<DrugId> = top_k_indices(scores.row(p), 4)
                .into_iter()
                .map(DrugId::new)
                .collect();
            let report = service
                .check_prescription(&CheckPrescriptionRequest::new(top))
                .expect("prescription check");
            if !report.is_safe() {
                conflicts += 1;
            }
        }
        println!(
            "  {name:<10} {conflicts}/{} patients ({:.1}%)",
            scores.rows(),
            100.0 * conflicts as f64 / scores.rows() as f64
        );
    }
}
