//! Quickstart: build the synthetic chronic-disease world, train a
//! [`DecisionService`] through the [`ServiceBuilder`], and serve typed
//! suggestion requests plus a prescription check for a few held-out patients.
//!
//! Run with: `cargo run --release --example quickstart`

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: the 86-drug formulary, the signed DDI graph and a cohort.
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: 400,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("cohort");
    let drug_features = pretrained_drug_embeddings(
        &registry,
        &DrkgConfig {
            dim: 32,
            epochs: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("TransE embeddings");
    let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).expect("split");
    println!(
        "Cohort: {} patients, {} drugs, {} synergistic / {} antagonistic interactions",
        cohort.n_patients(),
        registry.len(),
        ddi.synergistic_count(),
        ddi.antagonistic_count()
    );

    // 2. Build the decision service: the builder validates the configuration
    // before any training time is spent.
    let service = ServiceBuilder::fast()
        .hidden_dim(32)
        .fit_chronic(&cohort, &split.train, &drug_features, &ddi, &mut rng)
        .expect("DSSDDI training");
    println!(
        "Trained DecisionService({}) on {} observed patients\n",
        service.config().ddi.backbone.name(),
        split.train.len()
    );

    // 3. Suggest medications for three held-out patients. The batch shares
    // one model forward pass, and repeated explanations are memoized.
    let patients = &split.test[..3];
    let requests: Vec<SuggestRequest> = patients
        .iter()
        .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
        .collect();
    let responses = service.suggest_batch(&requests).expect("suggestions");
    for response in &responses {
        let patient = response.patient.index();
        println!("{}", response.patient);
        println!(
            "  diseases       : {:?}",
            cohort.diseases()[patient]
                .iter()
                .map(|d| d.name())
                .collect::<Vec<_>>()
        );
        println!(
            "  actually taking: {:?}",
            cohort
                .drugs_of(patient)
                .iter()
                .map(|&d| registry.name_of(d).unwrap())
                .collect::<Vec<_>>()
        );
        for drug in &response.drugs {
            println!(
                "  suggest {:<24} ({:>6}) score {:.3}",
                drug.name, drug.id, drug.score
            );
        }
        let exp = &response.explanation;
        println!(
            "  explanation: {} drugs in the DDI subgraph, {} synergistic / {} antagonistic internal edges, SS = {:.3}\n",
            exp.community.node_count(),
            exp.internal_synergy,
            exp.internal_antagonism,
            response.suggestion_satisfaction
        );
    }

    // 4. Critique an existing prescription against the signed DDI graph —
    // the paper's Fig. 8 antagonistic pair, by name.
    let check = CheckPrescriptionRequest::new(vec![
        service.resolve_drug("Gabapentin").expect("known drug"),
        service
            .resolve_drug("Isosorbide Mononitrate")
            .expect("known drug"),
    ]);
    let report = service
        .check_prescription(&check)
        .expect("prescription check");
    println!(
        "Prescription check (Gabapentin + Isosorbide Mononitrate): {}",
        if report.is_safe() {
            "no antagonism found"
        } else {
            "antagonism found"
        }
    );
    for pair in &report.antagonistic {
        println!(
            "  warning: {} <-> {} is antagonistic",
            pair.a_name, pair.b_name
        );
    }

    // 5. Evaluate against the held-out prescriptions.
    let test_features = cohort.features().select_rows(&split.test);
    let test_labels = cohort.labels().select_rows(&split.test);
    let scores = service.predict_scores(&test_features).expect("scores");
    let metrics = ranking_metrics(&scores, &test_labels, 6).expect("metrics");
    println!(
        "\nHeld-out performance: Precision@6 {:.3}, Recall@6 {:.3}, NDCG@6 {:.3}",
        metrics.precision, metrics.recall, metrics.ndcg
    );
}
