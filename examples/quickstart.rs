//! Quickstart: build the synthetic chronic-disease world, fit DSSDDI on the
//! observed patients, and print suggestions + explanations for a few
//! held-out patients.
//!
//! Run with: `cargo run --release --example quickstart`

use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: the 86-drug formulary, the signed DDI graph and a cohort.
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig { n_patients: 400, ..Default::default() },
        &mut rng,
    )
    .expect("cohort");
    let drug_features = pretrained_drug_embeddings(
        &registry,
        &DrkgConfig { dim: 32, epochs: 20, ..Default::default() },
        &mut rng,
    )
    .expect("TransE embeddings");
    let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).expect("split");
    println!(
        "Cohort: {} patients, {} drugs, {} synergistic / {} antagonistic interactions",
        cohort.n_patients(),
        registry.len(),
        ddi.synergistic_count(),
        ddi.antagonistic_count()
    );

    // 2. Fit the decision support system on the observed (training) patients.
    let mut config = DssddiConfig::fast();
    config.md.hidden_dim = 32;
    config.ddi.hidden_dim = 32;
    let system = Dssddi::fit_chronic(&cohort, &split.train, &drug_features, &ddi, &config, &mut rng)
        .expect("DSSDDI training");
    println!(
        "Trained DSSDDI({}) on {} observed patients\n",
        config.ddi.backbone.name(),
        split.train.len()
    );

    // 3. Suggest medications for three held-out patients and explain them.
    let patients = &split.test[..3];
    let features = cohort.features().select_rows(patients);
    let suggestions = system.suggest(&features, 3).expect("suggestions");
    for (i, suggestion) in suggestions.iter().enumerate() {
        let patient = patients[i];
        println!("Patient #{patient}");
        println!(
            "  diseases       : {:?}",
            cohort.diseases()[patient].iter().map(|d| d.name()).collect::<Vec<_>>()
        );
        println!(
            "  actually taking: {:?}",
            cohort
                .drugs_of(patient)
                .iter()
                .map(|&d| registry.drug(d).unwrap().name)
                .collect::<Vec<_>>()
        );
        for s in &suggestion.drugs {
            println!(
                "  suggest {:<24} (DID {:>2}) score {:.3}",
                registry.drug(s.drug).unwrap().name,
                s.drug,
                s.score
            );
        }
        let exp = &suggestion.explanation;
        println!(
            "  explanation: {} drugs in the DDI subgraph, {} synergistic / {} antagonistic internal edges, SS = {:.3}\n",
            exp.community.node_count(),
            exp.internal_synergy,
            exp.internal_antagonism,
            exp.suggestion_satisfaction
        );
    }

    // 4. Evaluate against the held-out prescriptions.
    let test_features = cohort.features().select_rows(&split.test);
    let test_labels = cohort.labels().select_rows(&split.test);
    let scores = system.predict_scores(&test_features).expect("scores");
    let metrics = ranking_metrics(&scores, &test_labels, 6).expect("metrics");
    println!(
        "Held-out performance: Precision@6 {:.3}, Recall@6 {:.3}, NDCG@6 {:.3}",
        metrics.precision, metrics.recall, metrics.ndcg
    );
}
