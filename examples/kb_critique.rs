//! The clinical knowledge-base workflow end to end: ingest a TSV source
//! into a versioned [`KnowledgeBase`], grade prescription critiques with
//! it under different alert policies, persist it to a `DSKB` container,
//! diff two versions, and hot-reload the update into a live serving
//! gateway — all without training a model (the critique path is
//! support-only).
//!
//! Run with: `cargo run --release --example kb_critique`

use dssddi::kb::{KbChange, KnowledgeBase};
use dssddi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let registry = DrugRegistry::standard();
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("ddi");
    let service = ServiceBuilder::fast()
        .build_support(&ddi)
        .expect("support service");

    // --- Ingest: DDI graph seed + curated TSV facts ----------------------
    // Seeding from the graph grades every known edge by its sign
    // (antagonistic -> moderate); the TSV then overrides the pairs a
    // clinician has actually reviewed.
    let mut kb = KnowledgeBase::from_ddi_graph(&ddi, &registry).expect("kb from ddi graph");
    let baseline = kb.clone();
    let tsv = std::fs::read_to_string("examples/data/ddi_kb.tsv").expect("read examples TSV");
    let summary = kb.ingest_tsv(&tsv, &registry).expect("ingest TSV");
    println!(
        "knowledge base v{}: {} facts ({} added, {} updated from the TSV)",
        kb.version(),
        kb.len(),
        summary.added,
        summary.updated
    );

    // --- Diff: what did the curated source change? -----------------------
    let diff = baseline.diff(&kb).expect("same formulary");
    println!("\nreview before shipping — {diff}:");
    for change in diff.changes.iter().take(5) {
        match change {
            KbChange::Added { pair, fact } => println!(
                "  + {} / {}: {} ({})",
                registry.name_of(pair.0).unwrap_or("?"),
                registry.name_of(pair.1).unwrap_or("?"),
                fact.severity,
                fact.evidence,
            ),
            KbChange::Changed { pair, old, new } => println!(
                "  ~ {} / {}: {} -> {}",
                registry.name_of(pair.0).unwrap_or("?"),
                registry.name_of(pair.1).unwrap_or("?"),
                old.severity,
                new.severity,
            ),
            KbChange::Removed { pair, .. } => println!("  - {:?}", pair),
        }
    }

    // --- Critique under alert policies -----------------------------------
    let prescription: Vec<DrugId> = ["Gabapentin", "Isosorbide Mononitrate", "Indapamide"]
        .iter()
        .map(|name| service.resolve_drug(name).expect("drug in formulary"))
        .collect();
    for (label, policy) in [
        ("report everything", AlertPolicy::default()),
        (
            "major and up (outpatient)",
            AlertPolicy::at_least(Severity::Major),
        ),
    ] {
        let report = service
            .check_prescription_with_kb(
                &CheckPrescriptionRequest::new(prescription.clone()).with_policy(policy),
                Some(&kb),
            )
            .expect("critique");
        println!("\npolicy: {label} (kb v{})", report.kb_version.unwrap_or(0));
        for pair in report.antagonistic.iter().chain(&report.synergistic) {
            println!(
                "  [{}] {} + {}: {}{}",
                pair.severity,
                pair.a_name,
                pair.b_name,
                match pair.interaction {
                    Interaction::Antagonistic => "antagonistic",
                    Interaction::Synergistic => "synergistic",
                    Interaction::None => "none",
                },
                pair.management
                    .as_deref()
                    .map(|hint| format!(" — {hint}"))
                    .unwrap_or_default(),
            );
        }
        println!(
            "  max severity: {:?}, SS = {:.3}",
            report.max_severity(),
            report.suggestion_satisfaction
        );
    }

    // --- Persist: save, reload, verify -----------------------------------
    let dir = std::env::temp_dir().join("dssddi-kb-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("clinic.dskb");
    kb.save(&path).expect("save DSKB");
    let reloaded = KnowledgeBase::load(&path).expect("load DSKB");
    assert_eq!(reloaded, kb, "DSKB containers round-trip exactly");
    println!(
        "\nsaved and reloaded {} ({} bytes, v{})",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        reloaded.version()
    );

    // --- Serve and hot-reload under a live key ---------------------------
    let mut catalog = ModelCatalog::new();
    let key = ModelKey::new("clinic").expect("key");
    let gateway_service = ServiceBuilder::fast()
        .build_support(&ddi)
        .expect("gateway shard");
    catalog
        .insert(key.clone(), gateway_service)
        .expect("insert shard");
    let server = Server::bind("127.0.0.1:0", Router::new(catalog)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let mut client =
        Client::connect_timeout(addr, std::time::Duration::from_secs(5)).expect("connect");
    let before = client.kb_info(&key).expect("kb info");
    let container = std::fs::read(&path).expect("read DSKB");
    let after = client.reload_kb(&key, &container).expect("hot reload");
    println!(
        "gateway KB hot-reloaded under live key {key}: v{} -> v{} ({} facts)",
        before.version, after.version, after.n_facts
    );
    let report = client
        .check_prescription(
            &key,
            &CheckPrescriptionRequest::new(prescription)
                .with_policy(AlertPolicy::at_least(Severity::Major)),
        )
        .expect("remote critique");
    assert!(report.has_contraindicated(), "the upgraded grade is live");
    println!(
        "remote critique now grades {} finding(s), max severity {:?}",
        report.antagonistic.len(),
        report.max_severity()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("no panic").expect("clean exit");
    std::fs::remove_file(&path).ok();
    println!("\nkb workflow complete: ingest -> diff -> critique -> save -> serve -> reload");
}
