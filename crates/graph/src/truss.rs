//! Truss decomposition (Wang & Cheng, PVLDB 2012).
//!
//! The *support* of an edge is the number of triangles containing it. A
//! subgraph is a *p-truss* when every edge has support at least `p − 2`
//! inside the subgraph. The *truss number* of an edge is the largest `p`
//! such that the edge belongs to a p-truss. The Medical Support module uses
//! these quantities to find dense, well-connected explanation subgraphs
//! around the suggested drugs (Definition 5 and Algorithm 1 of the paper).

use std::collections::{BTreeSet, HashMap};

use crate::ungraph::norm_edge;
use crate::UnGraph;

/// Result of a truss decomposition: the truss number of every edge.
#[derive(Debug, Clone, Default)]
pub struct TrussDecomposition {
    truss: HashMap<(usize, usize), usize>,
    // Cached at construction: the truss-aware Steiner distance evaluates
    // `max_truss` once per edge relaxation, and a per-call scan of the edge
    // map used to dominate the whole community search.
    max_truss: usize,
}

impl TrussDecomposition {
    /// Truss number of edge `{u, v}`; `None` if the edge is not present.
    pub fn truss(&self, u: usize, v: usize) -> Option<usize> {
        self.truss.get(&norm_edge(u, v)).copied()
    }

    /// Largest truss number over all edges (2 for a triangle-free graph,
    /// 0 for an edgeless graph). O(1): computed once at decomposition time.
    pub fn max_truss(&self) -> usize {
        self.max_truss
    }

    /// Smallest truss number over all edges (0 for an edgeless graph).
    pub fn min_truss(&self) -> usize {
        self.truss.values().copied().min().unwrap_or(0)
    }

    /// Iterator over `((u, v), truss)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &usize)> {
        self.truss.iter()
    }

    /// Number of edges covered by the decomposition.
    pub fn len(&self) -> usize {
        self.truss.len()
    }

    /// True when the decomposition covers no edges.
    pub fn is_empty(&self) -> bool {
        self.truss.is_empty()
    }
}

/// Computes the truss number of every edge by iterative peeling: repeatedly
/// remove the edge with the smallest support and record its truss number as
/// `support at removal + 2`.
pub fn truss_decomposition(graph: &UnGraph) -> TrussDecomposition {
    let mut work = graph.clone();
    let mut support: HashMap<(usize, usize), usize> = HashMap::new();
    for (u, v) in work.edges() {
        support.insert((u, v), work.edge_support(u, v));
    }
    let mut truss: HashMap<(usize, usize), usize> = HashMap::new();
    let mut k = 2usize;

    while !support.is_empty() {
        // Peel every edge whose support is <= k - 2 at the current level.
        loop {
            let to_remove: Vec<(usize, usize)> = support
                .iter()
                .filter(|(_, &s)| s + 2 <= k)
                .map(|(&e, _)| e)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for (u, v) in to_remove {
                if support.remove(&(u, v)).is_none() {
                    continue;
                }
                truss.insert((u, v), k);
                // Removing (u, v) destroys one triangle per common neighbour.
                let common = work.common_neighbors(u, v);
                work.remove_edge(u, v);
                for w in common {
                    for e in [norm_edge(u, w), norm_edge(v, w)] {
                        if let Some(s) = support.get_mut(&e) {
                            *s = s.saturating_sub(1);
                        }
                    }
                }
            }
        }
        k += 1;
    }
    let max_truss = truss.values().copied().max().unwrap_or(0);
    TrussDecomposition { truss, max_truss }
}

/// Returns the subgraph formed by all edges whose truss number is at least
/// `p` (node indices are preserved).
pub fn p_truss_subgraph(graph: &UnGraph, decomposition: &TrussDecomposition, p: usize) -> UnGraph {
    let mut sub = UnGraph::new(graph.node_count());
    for (&(u, v), &t) in decomposition.iter() {
        if t >= p {
            let _ = sub.add_edge(u, v);
        }
    }
    sub
}

/// Repeatedly removes edges whose support inside `sub` has fallen below
/// `p - 2`, restoring the p-truss property after node/edge deletions
/// (line 13 of Algorithm 1). Nodes left isolated are dropped from `nodes`.
pub fn maintain_p_truss(sub: &mut UnGraph, nodes: &mut BTreeSet<usize>, p: usize) {
    loop {
        let violating: Vec<(usize, usize)> = sub
            .edges()
            .into_iter()
            .filter(|&(u, v)| sub.edge_support(u, v) + 2 < p)
            .collect();
        if violating.is_empty() {
            break;
        }
        for (u, v) in violating {
            sub.remove_edge(u, v);
        }
    }
    nodes.retain(|&v| sub.degree(v) > 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles sharing an edge plus a pendant vertex.
    fn diamond_with_tail() -> UnGraph {
        UnGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn truss_numbers_of_known_graph() {
        let g = diamond_with_tail();
        let d = truss_decomposition(&g);
        // Every triangle edge is in a 3-truss; the shared edge (1,2) has
        // support 2 but is still only a 3-truss because its triangles are
        // not mutually reinforcing after peeling. The pendant edge is a 2-truss.
        assert_eq!(d.truss(3, 4), Some(2));
        assert_eq!(d.truss(0, 1), Some(3));
        assert_eq!(d.truss(1, 2), Some(3));
        assert_eq!(d.max_truss(), 3);
        assert_eq!(d.min_truss(), 2);
        assert_eq!(d.len(), g.edge_count());
    }

    #[test]
    fn four_clique_is_a_four_truss() {
        let g = UnGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let d = truss_decomposition(&g);
        for (u, v) in g.edges() {
            assert_eq!(d.truss(u, v), Some(4), "edge ({u},{v})");
        }
    }

    #[test]
    fn triangle_free_graph_has_truss_two() {
        let g = UnGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = truss_decomposition(&g);
        assert_eq!(d.max_truss(), 2);
        assert_eq!(d.min_truss(), 2);
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = UnGraph::new(3);
        let d = truss_decomposition(&g);
        assert!(d.is_empty());
        assert_eq!(d.max_truss(), 0);
    }

    #[test]
    fn p_truss_subgraph_keeps_only_dense_edges() {
        let g = diamond_with_tail();
        let d = truss_decomposition(&g);
        let sub = p_truss_subgraph(&g, &d, 3);
        assert!(!sub.has_edge(3, 4));
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.edge_count(), 5);
    }

    #[test]
    fn maintain_p_truss_removes_broken_edges_and_isolated_nodes() {
        let g = diamond_with_tail();
        let d = truss_decomposition(&g);
        let mut sub = p_truss_subgraph(&g, &d, 3);
        let mut nodes: BTreeSet<usize> = sub.non_isolated_nodes().into_iter().collect();
        // Remove node 0: edges (1,2),(1,3),(2,3) still form a triangle (3-truss).
        sub.detach_node(0);
        nodes.remove(&0);
        maintain_p_truss(&mut sub, &mut nodes, 3);
        assert_eq!(nodes, [1, 2, 3].into_iter().collect());
        assert_eq!(sub.edge_count(), 3);
        // Now remove node 3; remaining edge (1,2) has no triangle and must go.
        sub.detach_node(3);
        nodes.remove(&3);
        maintain_p_truss(&mut sub, &mut nodes, 3);
        assert!(nodes.is_empty());
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn decomposition_is_invariant_to_edge_insertion_order() {
        let edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)];
        let mut reversed = edges;
        reversed.reverse();
        let a = truss_decomposition(&UnGraph::from_edges(5, &edges).unwrap());
        let b = truss_decomposition(&UnGraph::from_edges(5, &reversed).unwrap());
        for (u, v) in UnGraph::from_edges(5, &edges).unwrap().edges() {
            assert_eq!(a.truss(u, v), b.truss(u, v));
        }
    }
}
