//! Closest Truss Community (CTC) search — Algorithm 1 of the paper.
//!
//! Given the DDI graph and the set of suggested drugs (the *query*), the
//! Medical Support module extracts a connected, dense subgraph that contains
//! every suggested drug and has small diameter. The procedure follows the
//! paper: truss decomposition → Steiner tree over the query → expansion into
//! a dense neighbourhood → maximal connected p-truss → iterative shrinking
//! by removing the furthest nodes while maintaining the truss property.

use std::collections::BTreeSet;

use crate::steiner::steiner_tree;
use crate::traversal::{all_connected, bfs, component_of, diameter};
use crate::truss::{maintain_p_truss, truss_decomposition, TrussDecomposition};
use crate::{GraphError, UnGraph};

/// A dense explanation subgraph around a set of query drugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Community {
    /// Nodes of the community (always a superset of the reachable query nodes).
    pub nodes: BTreeSet<usize>,
    /// Edges of the community as normalised `(min, max)` pairs.
    pub edges: Vec<(usize, usize)>,
    /// Trussness `p` the community satisfies (every edge has support ≥ p − 2).
    pub trussness: usize,
    /// Hop diameter of the community (`usize::MAX` if it is a forest of parts).
    pub diameter: usize,
}

impl Community {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the community contains the node.
    pub fn contains(&self, v: usize) -> bool {
        self.nodes.contains(&v)
    }
}

/// Configuration of the CTC search.
#[derive(Debug, Clone)]
pub struct CtcConfig {
    /// Target size for the expanded candidate subgraph `G'₀`
    /// (`n₀` in Algorithm 1).
    pub expansion_size: usize,
    /// Maximum number of shrink iterations (defensive bound; the loop also
    /// stops when the query would become disconnected).
    pub max_shrink_iterations: usize,
}

impl Default for CtcConfig {
    fn default() -> Self {
        Self {
            expansion_size: 30,
            max_shrink_iterations: 100,
        }
    }
}

/// Sum of hop distances from every community node to its furthest query node
/// — the `dist(G', Q)` objective minimised on line 15 of Algorithm 1.
fn community_query_distance(graph: &UnGraph, nodes: &BTreeSet<usize>, query: &[usize]) -> usize {
    let mut total = 0usize;
    for &q in query {
        if !nodes.contains(&q) {
            return usize::MAX;
        }
        let res = bfs(graph, q, Some(nodes));
        for &v in nodes {
            match res.dist[v] {
                usize::MAX => return usize::MAX,
                d => total = total.max(d),
            }
        }
    }
    total
}

/// Runs the closest-truss-community search of Algorithm 1.
///
/// Query nodes that are isolated in `graph` are kept in the result (the MS
/// module still has to display them) but cannot contribute interactions.
pub fn closest_truss_community(
    graph: &UnGraph,
    query: &[usize],
    config: &CtcConfig,
) -> Result<Community, GraphError> {
    // Line 1: truss decomposition on the full graph.
    let decomposition = truss_decomposition(graph);
    closest_truss_community_with(graph, &decomposition, query, config)
}

/// [`closest_truss_community`] with a caller-provided truss decomposition of
/// `graph` (line 1 of Algorithm 1 hoisted out). Serving layers whose graph
/// is immutable decompose once and amortise it over every explanation; the
/// result is identical to recomputing per call.
pub fn closest_truss_community_with(
    graph: &UnGraph,
    decomposition: &TrussDecomposition,
    query: &[usize],
    config: &CtcConfig,
) -> Result<Community, GraphError> {
    let n = graph.node_count();
    let mut unique_query: Vec<usize> = Vec::new();
    for &q in query {
        if q >= n {
            return Err(GraphError::NodeOutOfRange { node: q, nodes: n });
        }
        if !unique_query.contains(&q) {
            unique_query.push(q);
        }
    }
    if unique_query.is_empty() {
        return Err(GraphError::EmptyQuery);
    }

    // Line 2: Steiner tree containing the suggested drugs.
    let tree = steiner_tree(graph, &unique_query, decomposition)?;

    // Lines 3-4: seed subgraph and its minimum truss level p'.
    let mut nodes: BTreeSet<usize> = tree.nodes.clone();
    let mut sub = UnGraph::new(n);
    for &(u, v) in &tree.edges {
        sub.add_edge(u, v)?;
    }
    let p_seed = tree
        .edges
        .iter()
        .filter_map(|&(u, v)| decomposition.truss(u, v))
        .min()
        .unwrap_or(2);

    // Lines 5-7: grow the subgraph with adjacent edges of truss >= p'.
    expand_candidate(
        graph,
        decomposition,
        &mut sub,
        &mut nodes,
        p_seed,
        config.expansion_size,
    );

    // Line 8: truss decomposition on the candidate subgraph.
    let local = truss_decomposition(&sub);

    // Line 9: maximum connected p-truss containing the query.
    let (mut p, mut best_nodes, mut best_sub) = max_connected_p_truss(&local, &unique_query, n);
    if best_nodes.is_empty() {
        // The query has no triangles around it at all; fall back to the
        // Steiner tree itself as a (2-truss) explanation.
        p = 2;
        best_nodes = nodes.clone();
        best_sub = sub.clone();
    }
    // Query nodes with no interactions stay visible in the explanation.
    for &q in &unique_query {
        best_nodes.insert(q);
    }

    // Lines 10-15: iterative shrinking, keeping the candidate with the
    // smallest query distance. The candidate state is mutated in place (a
    // rejected step only ever precedes a `break`, so no rollback is needed)
    // and the furthest node is found with |Q| BFS passes from the query
    // nodes instead of one BFS per community node — hop distances are
    // symmetric, so the selected victim is identical.
    let mut best_candidate = (
        community_query_distance(&best_sub, &best_nodes, &unique_query),
        best_nodes.clone(),
        best_sub.clone(),
    );
    let mut cur_nodes = best_nodes;
    let mut cur_sub = best_sub;
    for _ in 0..config.max_shrink_iterations {
        // Find the non-query node furthest from the query (max over query
        // nodes of the hop distance, unreachable counting as infinite —
        // exactly `traversal::query_distance`, batched).
        let from_query: Vec<crate::traversal::BfsResult> = unique_query
            .iter()
            .map(|&q| bfs(&cur_sub, q, Some(&cur_nodes)))
            .collect();
        let mut furthest: Option<(usize, usize)> = None;
        for &v in &cur_nodes {
            if unique_query.contains(&v) {
                continue;
            }
            let d = from_query.iter().map(|res| res.dist[v]).max().unwrap_or(0);
            if furthest.is_none_or(|(fd, _)| d > fd) {
                furthest = Some((d, v));
            }
        }
        let Some((_, victim)) = furthest else { break };
        cur_sub.detach_node(victim);
        cur_nodes.remove(&victim);
        maintain_p_truss(&mut cur_sub, &mut cur_nodes, p);
        for &q in &unique_query {
            cur_nodes.insert(q);
        }
        if !all_connected(&cur_sub, &unique_query, &cur_nodes) && unique_query.len() > 1 {
            break;
        }
        let d = community_query_distance(&cur_sub, &cur_nodes, &unique_query);
        if d <= best_candidate.0 {
            best_candidate = (d, cur_nodes.clone(), cur_sub.clone());
        }
        if cur_nodes.len() <= unique_query.len() {
            break;
        }
    }

    let (_, final_nodes, final_sub) = best_candidate;
    let edges: Vec<(usize, usize)> = final_sub
        .edges()
        .into_iter()
        .filter(|&(u, v)| final_nodes.contains(&u) && final_nodes.contains(&v))
        .collect();
    let diam = diameter(&final_sub, &final_nodes);
    Ok(Community {
        nodes: final_nodes,
        edges,
        trussness: p,
        diameter: diam,
    })
}

/// Lines 5-7 of Algorithm 1: breadth-first expansion of the seed subgraph by
/// adjacent edges whose (global) truss number is at least `p_seed`.
fn expand_candidate(
    graph: &UnGraph,
    decomposition: &TrussDecomposition,
    sub: &mut UnGraph,
    nodes: &mut BTreeSet<usize>,
    p_seed: usize,
    target_size: usize,
) {
    let mut frontier: Vec<usize> = nodes.iter().copied().collect();
    while nodes.len() < target_size {
        let mut added_any = false;
        let mut next_frontier = Vec::new();
        for &u in &frontier {
            for v in graph.neighbors(u) {
                let t = decomposition.truss(u, v).unwrap_or(0);
                if t >= p_seed {
                    if !sub.has_edge(u, v) {
                        let _ = sub.add_edge(u, v);
                        added_any = true;
                    }
                    if nodes.insert(v) {
                        next_frontier.push(v);
                        added_any = true;
                        if nodes.len() >= target_size {
                            break;
                        }
                    }
                }
            }
            if nodes.len() >= target_size {
                break;
            }
        }
        // Also close triangles among the current node set so the local truss
        // decomposition sees the full induced density.
        let snapshot: Vec<usize> = nodes.iter().copied().collect();
        for &u in &snapshot {
            for v in graph.neighbors(u) {
                if nodes.contains(&v) && !sub.has_edge(u, v) {
                    let t = decomposition.truss(u, v).unwrap_or(0);
                    if t >= p_seed {
                        let _ = sub.add_edge(u, v);
                        added_any = true;
                    }
                }
            }
        }
        if !added_any {
            break;
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
}

/// Line 9 of Algorithm 1: the connected p-truss with the largest `p` that
/// still contains every query node (restricted to the candidate subgraph).
fn max_connected_p_truss(
    local: &TrussDecomposition,
    query: &[usize],
    n: usize,
) -> (usize, BTreeSet<usize>, UnGraph) {
    let max_p = local.max_truss();
    for p in (2..=max_p.max(2)).rev() {
        let mut candidate = UnGraph::new(n);
        for (&(u, v), &t) in local.iter() {
            if t >= p {
                let _ = candidate.add_edge(u, v);
            }
        }
        let within: BTreeSet<usize> = candidate.non_isolated_nodes().into_iter().collect();
        if query.iter().all(|q| within.contains(q)) && all_connected(&candidate, query, &within) {
            let comp = component_of(&candidate, query[0], Some(&within));
            let pruned = candidate.induced_subgraph(&comp);
            return (p, comp, pruned);
        }
    }
    (2, BTreeSet::new(), UnGraph::new(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph with a dense 4-clique {0,1,2,3}, a triangle {4,5,6} bridged to
    /// the clique, and a long sparse path 7-8-9.
    fn test_graph() -> UnGraph {
        UnGraph::from_edges(
            10,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // clique
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 6), // bridge + triangle
                (6, 7),
                (7, 8),
                (8, 9), // sparse tail
            ],
        )
        .unwrap()
    }

    #[test]
    fn community_contains_all_query_nodes() {
        let g = test_graph();
        let c = closest_truss_community(&g, &[0, 2], &CtcConfig::default()).unwrap();
        assert!(c.contains(0) && c.contains(2));
        assert!(c.trussness >= 3);
        assert!(c.edge_count() >= 1);
    }

    #[test]
    fn dense_clique_query_yields_clique_community() {
        let g = test_graph();
        let c = closest_truss_community(&g, &[0, 1, 2, 3], &CtcConfig::default()).unwrap();
        assert_eq!(c.trussness, 4);
        assert!(c.nodes.is_superset(&[0, 1, 2, 3].into_iter().collect()));
        // The sparse tail must not be dragged in.
        assert!(!c.contains(8) && !c.contains(9));
    }

    #[test]
    fn cross_cluster_query_stays_connected() {
        let g = test_graph();
        let c = closest_truss_community(&g, &[1, 5], &CtcConfig::default()).unwrap();
        let within = c.nodes.clone();
        let sub = UnGraph::from_edges(10, &c.edges).unwrap();
        assert!(all_connected(&sub, &[1, 5], &within));
        assert_ne!(c.diameter, usize::MAX);
    }

    #[test]
    fn isolated_query_node_is_preserved() {
        let mut g = test_graph();
        g.detach_node(9);
        let c = closest_truss_community(&g, &[0, 9], &CtcConfig::default()).unwrap();
        assert!(c.contains(9));
        assert!(c.contains(0));
    }

    #[test]
    fn empty_and_out_of_range_queries_error() {
        let g = test_graph();
        assert!(matches!(
            closest_truss_community(&g, &[], &CtcConfig::default()),
            Err(GraphError::EmptyQuery)
        ));
        assert!(matches!(
            closest_truss_community(&g, &[42], &CtcConfig::default()),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn single_node_query_returns_local_community() {
        let g = test_graph();
        let c = closest_truss_community(&g, &[0], &CtcConfig::default()).unwrap();
        assert!(c.contains(0));
        // Node 0 lives in the 4-clique, so its community should be dense.
        assert!(c.trussness >= 3);
    }

    #[test]
    fn every_edge_satisfies_trussness_invariant() {
        let g = test_graph();
        let c = closest_truss_community(&g, &[0, 1, 2, 3], &CtcConfig::default()).unwrap();
        let sub = UnGraph::from_edges(10, &c.edges).unwrap();
        if c.trussness > 2 {
            for &(u, v) in &c.edges {
                assert!(
                    sub.edge_support(u, v) + 2 >= c.trussness,
                    "edge ({u},{v}) violates {}-truss",
                    c.trussness
                );
            }
        }
    }

    #[test]
    fn triangle_free_graph_falls_back_to_steiner_tree() {
        let g = UnGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let c = closest_truss_community(&g, &[0, 4], &CtcConfig::default()).unwrap();
        assert!(c.contains(0) && c.contains(4));
        assert_eq!(c.trussness, 2);
    }
}
