//! Approximate Steiner trees (Mehlhorn-style 2-approximation).
//!
//! The closest-truss-community search starts from a Steiner tree connecting
//! the suggested drugs in the DDI graph (line 2 of Algorithm 1). Following
//! the paper, path lengths use a *truss-aware distance*: edges belonging to
//! denser trusses are cheaper, so the tree prefers routing through strongly
//! interacting drug clusters.

use std::collections::BTreeSet;

use crate::traversal::{dijkstra, reconstruct_path};
use crate::truss::TrussDecomposition;
use crate::{GraphError, UnGraph};

/// A tree (or forest, if the query is disconnected) embedded in the host graph.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// Nodes spanned by the tree, including the query nodes.
    pub nodes: BTreeSet<usize>,
    /// Edges of the tree as normalised `(min, max)` pairs.
    pub edges: Vec<(usize, usize)>,
}

impl SteinerTree {
    /// Total number of edges in the tree.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Materialises the tree as an [`UnGraph`] over the host graph's node space.
    pub fn to_graph(&self, n: usize) -> Result<UnGraph, GraphError> {
        UnGraph::from_edges(n, &self.edges)
    }
}

/// Truss-aware edge weight: an edge in a denser truss is cheaper to cross.
/// Weight is `1 + (k_max − truss(e)) / (k_max + 1)` so every edge costs at
/// least 1 hop and at most 2.
pub fn truss_distance_weight(decomposition: &TrussDecomposition, u: usize, v: usize) -> f64 {
    let k_max = decomposition.max_truss().max(2) as f64;
    let t = decomposition.truss(u, v).unwrap_or(2) as f64;
    1.0 + (k_max - t).max(0.0) / (k_max + 1.0)
}

/// Computes an approximate minimum Steiner tree connecting `query` in
/// `graph`, using Mehlhorn's construction: build the complete distance graph
/// over the query nodes, take its minimum spanning tree, expand each MST
/// edge into the underlying shortest path, and prune non-query leaves.
///
/// Query nodes in different connected components yield a forest containing
/// each reachable part (no error), because the MS module must still explain
/// drug suggestions whose DDI neighbourhoods are disconnected.
pub fn steiner_tree(
    graph: &UnGraph,
    query: &[usize],
    decomposition: &TrussDecomposition,
) -> Result<SteinerTree, GraphError> {
    let n = graph.node_count();
    let mut unique_query: Vec<usize> = Vec::new();
    for &q in query {
        if q >= n {
            return Err(GraphError::NodeOutOfRange { node: q, nodes: n });
        }
        if !unique_query.contains(&q) {
            unique_query.push(q);
        }
    }
    if unique_query.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let mut nodes: BTreeSet<usize> = unique_query.iter().copied().collect();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    if unique_query.len() == 1 {
        return Ok(SteinerTree {
            nodes,
            edges: vec![],
        });
    }

    // Shortest paths from every query node under the truss-aware metric.
    let weight = |u: usize, v: usize| truss_distance_weight(decomposition, u, v);
    let per_query: Vec<(Vec<f64>, Vec<usize>)> = unique_query
        .iter()
        .map(|&q| dijkstra(graph, q, weight))
        .collect();

    // Prim's MST over the complete distance graph on the query nodes.
    let q = unique_query.len();
    let mut in_tree = vec![false; q];
    let mut best_cost = vec![f64::INFINITY; q];
    let mut best_from = vec![usize::MAX; q];
    in_tree[0] = true;
    for j in 1..q {
        best_cost[j] = per_query[0].0[unique_query[j]];
        best_from[j] = 0;
    }
    for _ in 1..q {
        let mut pick = usize::MAX;
        let mut pick_cost = f64::INFINITY;
        for j in 0..q {
            if !in_tree[j] && best_cost[j] < pick_cost {
                pick = j;
                pick_cost = best_cost[j];
            }
        }
        if pick == usize::MAX {
            break; // remaining query nodes are unreachable; leave them isolated
        }
        in_tree[pick] = true;
        // Expand the MST edge (best_from[pick] -> pick) into its shortest path.
        let from = best_from[pick];
        let (_, parents) = &per_query[from];
        if let Some(path) = reconstruct_path(parents, unique_query[from], unique_query[pick]) {
            for window in path.windows(2) {
                nodes.insert(window[0]);
                nodes.insert(window[1]);
                edges.insert(crate::ungraph::norm_edge(window[0], window[1]));
            }
        }
        for j in 0..q {
            if !in_tree[j] {
                let c = per_query[pick].0[unique_query[j]];
                if c < best_cost[j] {
                    best_cost[j] = c;
                    best_from[j] = pick;
                }
            }
        }
    }

    // Prune non-query leaves repeatedly (Mehlhorn's final clean-up).
    let mut tree = UnGraph::new(n);
    for &(u, v) in &edges {
        tree.add_edge(u, v)?;
    }
    loop {
        let leaves: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&v| tree.degree(v) == 1 && !unique_query.contains(&v))
            .collect();
        if leaves.is_empty() {
            break;
        }
        for v in leaves {
            tree.detach_node(v);
            nodes.remove(&v);
        }
    }
    let final_edges: Vec<(usize, usize)> = tree.edges();
    Ok(SteinerTree {
        nodes,
        edges: final_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truss::truss_decomposition;

    fn grid_graph() -> UnGraph {
        // 0-1-2
        // |   |
        // 3-4-5   plus a dense triangle 1-4-6 to attract truss-aware paths
        UnGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 3),
                (2, 5),
                (3, 4),
                (4, 5),
                (1, 4),
                (1, 6),
                (4, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn steiner_tree_connects_all_query_nodes() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &[0, 5, 6], &d).unwrap();
        let tree_graph = t.to_graph(g.node_count()).unwrap();
        let within = t.nodes.clone();
        assert!(crate::traversal::all_connected(
            &tree_graph,
            &[0, 5, 6],
            &within
        ));
        // A tree has |nodes| - 1 edges when connected.
        assert_eq!(t.edge_count(), t.nodes.len() - 1);
    }

    #[test]
    fn single_query_node_yields_trivial_tree() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &[3], &d).unwrap();
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn duplicate_query_nodes_are_deduplicated() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &[2, 2, 2], &d).unwrap();
        assert_eq!(t.nodes.len(), 1);
    }

    #[test]
    fn empty_query_is_an_error_and_out_of_range_is_an_error() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        assert!(matches!(
            steiner_tree(&g, &[], &d),
            Err(GraphError::EmptyQuery)
        ));
        assert!(matches!(
            steiner_tree(&g, &[99], &d),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn disconnected_query_produces_partial_forest_without_error() {
        let g = UnGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &[0, 1, 4], &d).unwrap();
        assert!(t.nodes.contains(&0) && t.nodes.contains(&1) && t.nodes.contains(&4));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn truss_distance_prefers_dense_edges() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        // (1,4) belongs to the triangle 1-4-6 (3-truss), (0,1) does not.
        assert!(truss_distance_weight(&d, 1, 4) < truss_distance_weight(&d, 0, 1));
        // Unknown edge falls back to the cheapest-possible truss of 2.
        assert!(truss_distance_weight(&d, 0, 5) >= 1.0);
    }

    #[test]
    fn steiner_tree_has_no_superfluous_leaves() {
        let g = grid_graph();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &[0, 2], &d).unwrap();
        let tree_graph = t.to_graph(g.node_count()).unwrap();
        for &v in &t.nodes {
            if v != 0 && v != 2 {
                assert!(tree_graph.degree(v) >= 2, "non-query leaf {v} left in tree");
            }
        }
    }
}
