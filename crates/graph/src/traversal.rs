//! Graph traversal utilities: BFS distances, weighted shortest paths,
//! connectivity and diameters.
//!
//! These routines back the Steiner-tree computation and the "smallest
//! diameter / delete the furthest nodes" steps of the closest truss
//! community search (Algorithm 1 of the paper).

use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::UnGraph;

/// Unweighted single-source shortest-path distances (`usize::MAX` marks
/// unreachable nodes) together with BFS parents for path reconstruction.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Hop distance from the source to every node.
    pub dist: Vec<usize>,
    /// BFS parent of every node (`usize::MAX` for the source and unreachable nodes).
    pub parent: Vec<usize>,
}

/// Breadth-first search from `source`, optionally restricted to a node set.
pub fn bfs(graph: &UnGraph, source: usize, within: Option<&BTreeSet<usize>>) -> BfsResult {
    let n = graph.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    if source >= n || within.is_some_and(|w| !w.contains(&source)) {
        return BfsResult { dist, parent };
    }
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if let Some(w) = within {
                if !w.contains(&v) {
                    continue;
                }
            }
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult { dist, parent }
}

/// Reconstructs the path from the BFS/Dijkstra source to `target` using the
/// parent array; returns `None` when `target` is unreachable.
pub fn reconstruct_path(parent: &[usize], source: usize, target: usize) -> Option<Vec<usize>> {
    if source == target {
        return Some(vec![source]);
    }
    if parent[target] == usize::MAX {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parent[cur];
        path.push(cur);
        if path.len() > parent.len() {
            return None; // defensive: malformed parent array
        }
    }
    path.reverse();
    Some(path)
}

/// Weighted single-source shortest paths (Dijkstra). `weight(u, v)` must be
/// non-negative; distances are `f64::INFINITY` for unreachable nodes.
pub fn dijkstra(
    graph: &UnGraph,
    source: usize,
    weight: impl Fn(usize, usize) -> f64,
) -> (Vec<f64>, Vec<usize>) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    if source >= n {
        return (dist, parent);
    }
    // Max-heap on reversed ordering of (dist, node).
    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Entry(0.0, source));
    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for v in graph.neighbors(u) {
            let w = weight(u, v);
            let nd = d + w.max(0.0);
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Entry(nd, v));
            }
        }
    }
    (dist, parent)
}

/// Connected component containing `source`, restricted to `within` when given.
pub fn component_of(
    graph: &UnGraph,
    source: usize,
    within: Option<&BTreeSet<usize>>,
) -> BTreeSet<usize> {
    let res = bfs(graph, source, within);
    res.dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .map(|(v, _)| v)
        .collect()
}

/// All connected components over the non-isolated nodes of the graph.
pub fn connected_components(graph: &UnGraph) -> Vec<BTreeSet<usize>> {
    let mut seen = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for v in graph.non_isolated_nodes() {
        if seen[v] {
            continue;
        }
        let comp = component_of(graph, v, None);
        for &u in &comp {
            seen[u] = true;
        }
        components.push(comp);
    }
    components
}

/// True when every node of `targets` is reachable from the first target
/// inside the node set `within`.
pub fn all_connected(graph: &UnGraph, targets: &[usize], within: &BTreeSet<usize>) -> bool {
    match targets.first() {
        None => true,
        Some(&first) => {
            if targets.iter().any(|t| !within.contains(t)) {
                return false;
            }
            let comp = component_of(graph, first, Some(within));
            targets.iter().all(|t| comp.contains(t))
        }
    }
}

/// Hop diameter of the subgraph induced on `nodes` (0 for empty or singleton
/// sets, `usize::MAX` if the induced subgraph is disconnected).
pub fn diameter(graph: &UnGraph, nodes: &BTreeSet<usize>) -> usize {
    let mut best = 0usize;
    for &v in nodes {
        let res = bfs(graph, v, Some(nodes));
        for &u in nodes {
            if res.dist[u] == usize::MAX {
                return usize::MAX;
            }
            best = best.max(res.dist[u]);
        }
    }
    best
}

/// Maximum hop distance from node `v` to any of the query nodes inside the
/// node set `within` (the *query distance* used to shrink the CTC).
pub fn query_distance(
    graph: &UnGraph,
    v: usize,
    query: &[usize],
    within: &BTreeSet<usize>,
) -> usize {
    let res = bfs(graph, v, Some(within));
    query.iter().map(|&q| res.dist[q]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UnGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        UnGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let res = bfs(&g, 0, None);
        assert_eq!(res.dist, vec![0, 1, 2, 3, 4]);
        let path = reconstruct_path(&res.parent, 0, 4).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_respects_restriction() {
        let g = path_graph(5);
        let within: BTreeSet<usize> = [0, 1, 3, 4].into_iter().collect();
        let res = bfs(&g, 0, Some(&within));
        assert_eq!(res.dist[1], 1);
        assert_eq!(res.dist[3], usize::MAX); // 2 is excluded, so 3 unreachable
    }

    #[test]
    fn reconstruct_path_unreachable_is_none() {
        let g = UnGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let res = bfs(&g, 0, None);
        assert!(reconstruct_path(&res.parent, 0, 3).is_none());
        assert_eq!(reconstruct_path(&res.parent, 0, 0), Some(vec![0]));
    }

    #[test]
    fn dijkstra_prefers_lighter_paths() {
        // 0-1-2 with cheap edges, 0-2 expensive direct edge.
        let g = UnGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (dist, parent) = dijkstra(&g, 0, |u, v| {
            if (u, v) == (0, 2) || (u, v) == (2, 0) {
                10.0
            } else {
                1.0
            }
        });
        assert!((dist[2] - 2.0).abs() < 1e-9);
        assert_eq!(reconstruct_path(&parent, 0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = UnGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        let within: BTreeSet<usize> = (0..6).collect();
        assert!(all_connected(&g, &[0, 2], &within));
        assert!(!all_connected(&g, &[0, 3], &within));
        assert!(all_connected(&g, &[], &within));
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        let g = path_graph(4);
        let nodes: BTreeSet<usize> = (0..4).collect();
        assert_eq!(diameter(&g, &nodes), 3);
        let g2 = UnGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g2, &nodes), usize::MAX);
    }

    #[test]
    fn query_distance_is_max_over_queries() {
        let g = path_graph(5);
        let within: BTreeSet<usize> = (0..5).collect();
        assert_eq!(query_distance(&g, 2, &[0, 4], &within), 2);
        assert_eq!(query_distance(&g, 0, &[0, 4], &within), 4);
    }
}
