//! Signed interaction graphs.
//!
//! The drug-drug interaction graph of the paper (Definition 2) is a signed
//! graph: an edge labelled `+1` records a synergistic effect, `−1` an
//! antagonistic effect, and `0` an explicitly sampled "no interaction" pair
//! used as a negative class when training DDIGCN.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ungraph::norm_edge;
use crate::{GraphError, UnGraph};

/// Qualitative effect of a drug pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// The drugs reinforce each other (edge label `+1`).
    Synergistic,
    /// The drugs counteract each other or cause adverse effects (`−1`).
    Antagonistic,
    /// An explicitly recorded absence of interaction (`0`).
    None,
}

impl Interaction {
    /// Numeric edge label used as the regression target of DDIGCN.
    pub fn label(self) -> f32 {
        match self {
            Interaction::Synergistic => 1.0,
            Interaction::Antagonistic => -1.0,
            Interaction::None => 0.0,
        }
    }
}

/// An undirected graph whose edges carry an [`Interaction`] sign.
#[derive(Debug, Clone, Default)]
pub struct SignedGraph {
    n: usize,
    edges: BTreeMap<(usize, usize), Interaction>,
}

impl SignedGraph {
    /// Creates a signed graph over `n` nodes with no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of signed edges (including explicit "no interaction" edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds (or overwrites) the interaction between two distinct drugs.
    pub fn add_interaction(
        &mut self,
        u: usize,
        v: usize,
        interaction: Interaction,
    ) -> Result<(), GraphError> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u.max(v),
                nodes: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.edges.insert(norm_edge(u, v), interaction);
        Ok(())
    }

    /// Interaction between two drugs, if recorded.
    pub fn interaction(&self, u: usize, v: usize) -> Option<Interaction> {
        self.edges.get(&norm_edge(u, v)).copied()
    }

    /// All recorded edges as `(u, v, interaction)` with `u < v`.
    pub fn interactions(&self) -> impl Iterator<Item = (usize, usize, Interaction)> + '_ {
        self.edges.iter().map(|(&(u, v), &i)| (u, v, i))
    }

    /// Edges restricted to one interaction kind.
    pub fn edges_of(&self, kind: Interaction) -> Vec<(usize, usize)> {
        self.interactions()
            .filter(|&(_, _, i)| i == kind)
            .map(|(u, v, _)| (u, v))
            .collect()
    }

    /// Number of synergistic edges.
    pub fn synergistic_count(&self) -> usize {
        self.edges_of(Interaction::Synergistic).len()
    }

    /// Number of antagonistic edges.
    pub fn antagonistic_count(&self) -> usize {
        self.edges_of(Interaction::Antagonistic).len()
    }

    /// Neighbours of `v` restricted to one interaction kind.
    pub fn neighbors_of(&self, v: usize, kind: Interaction) -> Vec<usize> {
        self.interactions()
            .filter(|&(a, b, i)| i == kind && (a == v || b == v))
            .map(|(a, b, _)| if a == v { b } else { a })
            .collect()
    }

    /// Neighbours of `v` with any synergistic or antagonistic interaction
    /// (explicit "no interaction" edges are not neighbours in the GNN sense).
    pub fn interacting_neighbors(&self, v: usize) -> Vec<usize> {
        self.interactions()
            .filter(|&(a, b, i)| i != Interaction::None && (a == v || b == v))
            .map(|(a, b, _)| if a == v { b } else { a })
            .collect()
    }

    /// The unsigned structural view containing only synergistic and
    /// antagonistic edges — the graph the Medical Support module queries.
    pub fn structural_graph(&self) -> UnGraph {
        let mut g = UnGraph::new(self.n);
        for (u, v, i) in self.interactions() {
            if i != Interaction::None {
                // Bounds were validated on insertion.
                let _ = g.add_edge(u, v);
            }
        }
        g
    }

    /// Signed edge list `(u, v, label)` used as the DDIGCN regression targets.
    pub fn labelled_edges(&self) -> Vec<(usize, usize, f32)> {
        self.interactions()
            .map(|(u, v, i)| (u, v, i.label()))
            .collect()
    }

    /// Samples `count` drug pairs with no recorded interaction and adds them
    /// as explicit [`Interaction::None`] edges (Section IV-A1 of the paper).
    /// Returns the number of pairs actually added (the graph may saturate).
    pub fn sample_no_interaction_edges(&mut self, count: usize, rng: &mut impl Rng) -> usize {
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.edges.contains_key(&(u, v)) {
                    candidates.push((u, v));
                }
            }
        }
        candidates.shuffle(rng);
        let take = count.min(candidates.len());
        for &(u, v) in candidates.iter().take(take) {
            self.edges.insert((u, v), Interaction::None);
        }
        take
    }

    /// Count of drugs that participate in at least one synergistic or
    /// antagonistic interaction.
    pub fn interacting_drug_count(&self) -> usize {
        (0..self.n)
            .filter(|&v| !self.interacting_neighbors(v).is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_ddi() -> SignedGraph {
        let mut g = SignedGraph::new(5);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(0, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(1, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(2, 3, Interaction::Antagonistic).unwrap();
        g
    }

    #[test]
    fn interaction_labels() {
        assert_eq!(Interaction::Synergistic.label(), 1.0);
        assert_eq!(Interaction::Antagonistic.label(), -1.0);
        assert_eq!(Interaction::None.label(), 0.0);
    }

    #[test]
    fn add_and_query_interactions() {
        let g = small_ddi();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.interaction(1, 0), Some(Interaction::Synergistic));
        assert_eq!(g.interaction(3, 2), Some(Interaction::Antagonistic));
        assert_eq!(g.interaction(0, 4), None);
        assert_eq!(g.synergistic_count(), 1);
        assert_eq!(g.antagonistic_count(), 3);
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        let mut g = SignedGraph::new(3);
        assert!(g.add_interaction(1, 1, Interaction::Synergistic).is_err());
        assert!(g.add_interaction(0, 7, Interaction::None).is_err());
    }

    #[test]
    fn neighbor_queries_respect_kind() {
        let g = small_ddi();
        assert_eq!(g.neighbors_of(2, Interaction::Antagonistic), vec![0, 1, 3]);
        assert_eq!(g.neighbors_of(0, Interaction::Synergistic), vec![1]);
        assert_eq!(g.interacting_neighbors(4), Vec::<usize>::new());
        assert_eq!(g.interacting_drug_count(), 4);
    }

    #[test]
    fn structural_graph_drops_none_edges() {
        let mut g = small_ddi();
        let mut rng = StdRng::seed_from_u64(0);
        let added = g.sample_no_interaction_edges(3, &mut rng);
        assert_eq!(added, 3);
        let s = g.structural_graph();
        assert_eq!(s.edge_count(), 4);
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn no_interaction_sampling_saturates() {
        let mut g = SignedGraph::new(3);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Only (0,2) and (1,2) remain free.
        assert_eq!(g.sample_no_interaction_edges(10, &mut rng), 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn labelled_edges_align_with_interactions() {
        let g = small_ddi();
        let labels = g.labelled_edges();
        assert_eq!(labels.len(), 4);
        assert!(labels.contains(&(0, 1, 1.0)));
        assert!(labels.contains(&(0, 2, -1.0)));
    }

    #[test]
    fn overwriting_an_interaction_keeps_single_edge() {
        let mut g = SignedGraph::new(3);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(1, 0, Interaction::Antagonistic).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.interaction(0, 1), Some(Interaction::Antagonistic));
    }
}
