//! Simple undirected graphs with deterministic iteration order.
//!
//! [`UnGraph`] is the structural backbone used by the Medical Support
//! module: truss decomposition, Steiner tree computation and the closest
//! truss community search all operate on it. Node identifiers are dense
//! `usize` indices (drug IDs in the DDI graph).

use std::collections::BTreeSet;

use crate::GraphError;

/// An undirected simple graph over nodes `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnGraph {
    adj: Vec<BTreeSet<usize>>,
}

/// Normalises an edge so the smaller endpoint comes first.
#[inline]
pub fn norm_edge(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl UnGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge. Self-loops are rejected; duplicate edges are
    /// ignored (simple graph).
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let n = self.node_count();
        if u >= n || v >= n {
            return Err(GraphError::NodeOutOfRange {
                node: u.max(v),
                nodes: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        Ok(())
    }

    /// Removes an edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let a = self.adj[u].remove(&v);
        let b = self.adj[v].remove(&u);
        a && b
    }

    /// Removes a node by detaching all its incident edges (the node index
    /// remains valid but isolated).
    pub fn detach_node(&mut self, v: usize) {
        let neighbours: Vec<usize> = self.adj[v].iter().copied().collect();
        for u in neighbours {
            self.remove_edge(u, v);
        }
    }

    /// True when the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.node_count() && self.adj[u].contains(&v)
    }

    /// Neighbours of `v` in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All edges as normalised `(min, max)` pairs in ascending order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.node_count() {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Nodes that have at least one incident edge.
    pub fn non_isolated_nodes(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }

    /// Number of triangles containing the edge `{u, v}` (its *support*).
    pub fn edge_support(&self, u: usize, v: usize) -> usize {
        if !self.has_edge(u, v) {
            return 0;
        }
        self.adj[u].intersection(&self.adj[v]).count()
    }

    /// Common neighbours of `u` and `v`.
    pub fn common_neighbors(&self, u: usize, v: usize) -> Vec<usize> {
        self.adj[u].intersection(&self.adj[v]).copied().collect()
    }

    /// Induced subgraph on `nodes` (other nodes become isolated; indices are
    /// preserved so drug IDs stay meaningful).
    pub fn induced_subgraph(&self, nodes: &BTreeSet<usize>) -> UnGraph {
        let mut g = UnGraph::new(self.node_count());
        for &u in nodes {
            for &v in &self.adj[u] {
                if u < v && nodes.contains(&v) {
                    // Indices already validated by construction.
                    let _ = g.add_edge(u, v);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> UnGraph {
        // 0-1, 1-2, 0-2 triangle; 2-3 tail.
        UnGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn edge_addition_and_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = UnGraph::new(2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_and_out_of_range_are_rejected() {
        let mut g = UnGraph::new(2);
        assert!(matches!(g.add_edge(0, 0), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_and_detach() {
        let mut g = triangle_plus_tail();
        assert!(g.remove_edge(2, 3));
        assert!(!g.remove_edge(2, 3));
        assert_eq!(g.edge_count(), 3);
        g.detach_node(2);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn support_counts_triangles() {
        let g = triangle_plus_tail();
        assert_eq!(g.edge_support(0, 1), 1); // triangle 0-1-2
        assert_eq!(g.edge_support(2, 3), 0);
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
    }

    #[test]
    fn induced_subgraph_preserves_indices() {
        let g = triangle_plus_tail();
        let nodes: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let sub = g.induced_subgraph(&nodes);
        assert_eq!(sub.edge_count(), 3);
        assert!(!sub.has_edge(2, 3));
        assert_eq!(sub.node_count(), 4);
    }

    #[test]
    fn edges_are_normalised_and_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(norm_edge(5, 2), (2, 5));
    }
}
