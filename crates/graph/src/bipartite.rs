//! Patient–drug bipartite interaction graphs.
//!
//! The Medical Decision module represents observed medication use as a
//! bipartite graph between patients and drugs (Definition 3). This module
//! stores the interactions, exposes per-side adjacency, and converts the
//! graph into the edge lists and adjacency operators the GNN layers consume.

use std::collections::BTreeSet;

use crate::GraphError;

/// A bipartite graph between `n_left` patients and `n_right` drugs.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    left_adj: Vec<BTreeSet<usize>>,
    right_adj: Vec<BTreeSet<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_left,
            n_right,
            left_adj: vec![BTreeSet::new(); n_left],
            right_adj: vec![BTreeSet::new(); n_right],
        }
    }

    /// Builds a bipartite graph from `(patient, drug)` pairs.
    pub fn from_pairs(
        n_left: usize,
        n_right: usize,
        pairs: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        let mut g = Self::new(n_left, n_right);
        for &(l, r) in pairs {
            g.add_edge(l, r)?;
        }
        Ok(g)
    }

    /// Number of patients (left side).
    pub fn left_count(&self) -> usize {
        self.n_left
    }

    /// Number of drugs (right side).
    pub fn right_count(&self) -> usize {
        self.n_right
    }

    /// Number of patient–drug links.
    pub fn edge_count(&self) -> usize {
        self.left_adj.iter().map(BTreeSet::len).sum()
    }

    /// Adds a patient–drug link (duplicates are ignored).
    pub fn add_edge(&mut self, left: usize, right: usize) -> Result<(), GraphError> {
        if left >= self.n_left {
            return Err(GraphError::NodeOutOfRange {
                node: left,
                nodes: self.n_left,
            });
        }
        if right >= self.n_right {
            return Err(GraphError::NodeOutOfRange {
                node: right,
                nodes: self.n_right,
            });
        }
        self.left_adj[left].insert(right);
        self.right_adj[right].insert(left);
        Ok(())
    }

    /// True when the patient takes the drug.
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        left < self.n_left && self.left_adj[left].contains(&right)
    }

    /// Drugs taken by a patient, in ascending drug index order.
    pub fn drugs_of(&self, left: usize) -> Vec<usize> {
        self.left_adj[left].iter().copied().collect()
    }

    /// Patients taking a drug, in ascending patient index order.
    pub fn patients_of(&self, right: usize) -> Vec<usize> {
        self.right_adj[right].iter().copied().collect()
    }

    /// Degree of a patient node.
    pub fn left_degree(&self, left: usize) -> usize {
        self.left_adj[left].len()
    }

    /// Degree of a drug node.
    pub fn right_degree(&self, right: usize) -> usize {
        self.right_adj[right].len()
    }

    /// All `(patient, drug)` links in deterministic order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for l in 0..self.n_left {
            for &r in &self.left_adj[l] {
                out.push((l, r));
            }
        }
        out
    }

    /// Dense 0/1 medication-use matrix `Y` with one row per patient.
    pub fn to_label_matrix(&self) -> Vec<Vec<f32>> {
        let mut y = vec![vec![0.0; self.n_right]; self.n_left];
        for (l, r) in self.edges() {
            y[l][r] = 1.0;
        }
        y
    }

    /// Average number of drugs per patient (0.0 when there are no patients).
    pub fn mean_left_degree(&self) -> f32 {
        if self.n_left == 0 {
            0.0
        } else {
            self.edge_count() as f32 / self.n_left as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BipartiteGraph {
        BipartiteGraph::from_pairs(3, 4, &[(0, 0), (0, 2), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = small();
        assert_eq!(g.left_count(), 3);
        assert_eq!(g.right_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn adjacency_queries() {
        let g = small();
        assert_eq!(g.drugs_of(0), vec![0, 2]);
        assert_eq!(g.patients_of(2), vec![0, 1]);
        assert_eq!(g.left_degree(0), 2);
        assert_eq!(g.right_degree(1), 0);
        assert!((g.mean_left_degree() - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = small();
        g.add_edge(0, 0).unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn out_of_range_edges_error() {
        let mut g = BipartiteGraph::new(2, 2);
        assert!(g.add_edge(2, 0).is_err());
        assert!(g.add_edge(0, 5).is_err());
        assert!(BipartiteGraph::from_pairs(1, 1, &[(0, 3)]).is_err());
    }

    #[test]
    fn label_matrix_matches_edges() {
        let g = small();
        let y = g.to_label_matrix();
        assert_eq!(y.len(), 3);
        assert_eq!(y[0][2], 1.0);
        assert_eq!(y[1][0], 0.0);
        let total: f32 = y.iter().flatten().sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn edges_are_deterministically_ordered() {
        let g = small();
        assert_eq!(g.edges(), vec![(0, 0), (0, 2), (1, 2), (2, 3)]);
    }
}
