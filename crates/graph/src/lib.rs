//! # dssddi-graph
//!
//! Graph data structures and algorithms backing the DSSDDI reproduction:
//!
//! * [`UnGraph`] — simple undirected graphs with deterministic iteration,
//! * [`SignedGraph`] — the drug-drug interaction graph of Definition 2
//!   (synergistic / antagonistic / explicit no-interaction edges),
//! * [`BipartiteGraph`] — the patient–drug medication-use graph of
//!   Definition 3,
//! * [`truss`] — truss decomposition (Wang & Cheng, PVLDB 2012),
//! * [`steiner`] — Mehlhorn-style approximate Steiner trees under a
//!   truss-aware distance,
//! * [`ctc`] — the Closest Truss Community search of Algorithm 1, used by
//!   the Medical Support module to produce explanation subgraphs.

#![warn(missing_docs)]

pub mod bipartite;
pub mod ctc;
pub mod signed;
pub mod steiner;
pub mod traversal;
pub mod truss;
mod ungraph;

pub use bipartite::BipartiteGraph;
pub use ctc::{closest_truss_community, closest_truss_community_with, Community, CtcConfig};
pub use signed::{Interaction, SignedGraph};
pub use steiner::{steiner_tree, SteinerTree};
pub use traversal::{bfs, connected_components, diameter, BfsResult};
pub use truss::{p_truss_subgraph, truss_decomposition, TrussDecomposition};
pub use ungraph::{norm_edge, UnGraph};

/// Errors produced by graph construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index is outside the graph's node range.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// Self-loops are not allowed in interaction graphs.
    SelfLoop {
        /// The node that would have been connected to itself.
        node: usize,
    },
    /// A community/Steiner query contained no nodes.
    EmptyQuery,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop on node {node} is not allowed"),
            GraphError::EmptyQuery => write!(f, "query node set is empty"),
        }
    }
}

impl std::error::Error for GraphError {}
