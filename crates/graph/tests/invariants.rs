//! Property-based invariants for the graph algorithms used by the Medical
//! Support module: truss decomposition, Steiner trees and the closest truss
//! community search.

use std::collections::BTreeSet;

use dssddi_graph::{
    closest_truss_community, diameter, steiner_tree, truss_decomposition, CtcConfig, UnGraph,
};
use proptest::prelude::*;

/// Random undirected graph on `n` nodes with edge probability derived from a
/// bit vector, plus a guaranteed spanning path so the graph is connected.
fn arbitrary_connected_graph(max_n: usize) -> impl Strategy<Value = UnGraph> {
    (3usize..max_n).prop_flat_map(|n| {
        let max_pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_pairs).prop_map(move |bits| {
            let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[k] {
                        edges.push((u, v));
                    }
                    k += 1;
                }
            }
            UnGraph::from_edges(n, &edges).expect("valid edges")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every edge's truss number is at least 2 and at most its support + 2.
    #[test]
    fn truss_numbers_are_bounded_by_support(g in arbitrary_connected_graph(12)) {
        let d = truss_decomposition(&g);
        prop_assert_eq!(d.len(), g.edge_count());
        for (u, v) in g.edges() {
            let t = d.truss(u, v).expect("edge must have a truss number");
            prop_assert!(t >= 2);
            prop_assert!(t <= g.edge_support(u, v) + 2,
                "edge ({},{}) truss {} exceeds support {} + 2", u, v, t, g.edge_support(u, v));
        }
    }

    /// The subgraph formed by edges with truss number >= p is itself a p-truss:
    /// every surviving edge has at least p - 2 triangles inside the subgraph.
    #[test]
    fn p_truss_subgraph_satisfies_support_invariant(g in arbitrary_connected_graph(12)) {
        let d = truss_decomposition(&g);
        let p = d.max_truss();
        if p >= 3 {
            let sub = dssddi_graph::p_truss_subgraph(&g, &d, p);
            for (u, v) in sub.edges() {
                prop_assert!(sub.edge_support(u, v) + 2 >= p,
                    "edge ({},{}) support {} violates {}-truss", u, v, sub.edge_support(u, v), p);
            }
        }
    }

    /// The Steiner tree spans all query nodes, is acyclic (|E| = |V| - #components),
    /// and only uses edges of the host graph.
    #[test]
    fn steiner_tree_spans_query_with_host_edges(
        g in arbitrary_connected_graph(12),
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 2..5),
    ) {
        let n = g.node_count();
        let query: Vec<usize> = picks.iter().map(|i| i.index(n)).collect();
        let d = truss_decomposition(&g);
        let t = steiner_tree(&g, &query, &d).expect("steiner tree");
        for q in &query {
            prop_assert!(t.nodes.contains(q));
        }
        for &(u, v) in &t.edges {
            prop_assert!(g.has_edge(u, v), "tree edge ({u},{v}) not in host graph");
        }
        // Connected host graph => the tree spans the query in one component.
        prop_assert_eq!(t.edges.len(), t.nodes.len().saturating_sub(1));
    }

    /// The closest truss community always contains the query, only uses host
    /// edges, and satisfies its reported trussness.
    #[test]
    fn ctc_contains_query_and_satisfies_trussness(
        g in arbitrary_connected_graph(11),
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let n = g.node_count();
        let query: Vec<usize> = picks.iter().map(|i| i.index(n)).collect();
        let c = closest_truss_community(&g, &query, &CtcConfig::default()).expect("ctc");
        for q in &query {
            prop_assert!(c.contains(*q), "community misses query node {q}");
        }
        for &(u, v) in &c.edges {
            prop_assert!(g.has_edge(u, v));
        }
        if c.trussness > 2 && c.edge_count() > 0 {
            let sub = UnGraph::from_edges(n, &c.edges).unwrap();
            for &(u, v) in &c.edges {
                prop_assert!(sub.edge_support(u, v) + 2 >= c.trussness);
            }
        }
    }

    /// Diameter is monotone: a community's diameter never exceeds the
    /// diameter of the whole (connected) graph.
    #[test]
    fn community_diameter_not_larger_than_graph_diameter(
        g in arbitrary_connected_graph(10),
        pick in any::<prop::sample::Index>(),
    ) {
        let n = g.node_count();
        let all: BTreeSet<usize> = (0..n).collect();
        let full = diameter(&g, &all);
        let q = pick.index(n);
        let c = closest_truss_community(&g, &[q], &CtcConfig::default()).expect("ctc");
        if c.diameter != usize::MAX && full != usize::MAX {
            // The community is denser than the graph, so its internal paths
            // cannot be longer than the graph diameter plus detours removed
            // by the truss constraint; allow equality.
            prop_assert!(c.diameter <= full + 1,
                "community diameter {} much larger than graph diameter {}", c.diameter, full);
        }
    }
}
