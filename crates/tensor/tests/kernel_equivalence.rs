//! The blocked/fused kernels must agree with their straightforward
//! textbook formulations — exactly, not approximately: the serving path's
//! bit-identity guarantee is built on these kernels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dssddi_tensor::{fused_linear_into, ActivationKind, CsrMatrix, Matrix, ScratchPool};

/// Textbook i-k-j matmul with no blocking — the reference the cache-blocked
/// kernel must reproduce bit-for-bit (same ascending-`k` accumulation).
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let a_ik = a.get(i, k);
            for j in 0..b.cols() {
                out.add_at(i, j, a_ik * b.get(k, j));
            }
        }
    }
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matmul_matches_reference_bitwise(
        seed in 0u64..1_000_000,
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::rand_uniform(m, k, -3.0, 3.0, &mut rng);
        let b = Matrix::rand_uniform(k, n, -3.0, 3.0, &mut rng);
        let blocked = a.matmul(&b).unwrap();
        prop_assert_eq!(bits(&blocked), bits(&reference_matmul(&a, &b)));

        // matmul_into overwrites dirty buffers and matches too.
        let mut pool = ScratchPool::new();
        let mut dirty = pool.take(m, n);
        dirty.data_mut().fill(f32::NAN);
        a.matmul_into(&mut dirty, &b).unwrap();
        prop_assert_eq!(bits(&dirty), bits(&blocked));
    }

    #[test]
    fn blocked_transpose_round_trips(
        seed in 0u64..1_000_000,
        rows in 1usize..80,
        cols in 1usize..80,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::rand_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let t = a.transpose();
        prop_assert_eq!(t.shape(), (cols, rows));
        for r in 0..rows.min(8) {
            for c in 0..cols.min(8) {
                prop_assert_eq!(a.get(r, c).to_bits(), t.get(c, r).to_bits());
            }
        }
        prop_assert_eq!(bits(&t.transpose()), bits(&a));
    }

    #[test]
    fn fused_linear_matches_matmul_bias_activation_bitwise(
        seed in 0u64..1_000_000,
        n in 1usize..40,
        d_in in 1usize..20,
        d_out in 1usize..20,
        act_idx in 0usize..5,
    ) {
        let act = [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu(0.01),
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
            ActivationKind::Identity,
        ][act_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::rand_uniform(n, d_in, -2.0, 2.0, &mut rng);
        let w = Matrix::rand_uniform(d_in, d_out, -1.0, 1.0, &mut rng);
        let bias = Matrix::rand_uniform(1, d_out, -0.5, 0.5, &mut rng);

        let mut fused = Matrix::zeros(n, d_out);
        fused_linear_into(&mut fused, &x, &w, &bias, act).unwrap();

        let mut unfused = x.matmul(&w).unwrap();
        for r in 0..n {
            for c in 0..d_out {
                unfused.set(r, c, act.apply(unfused.get(r, c) + bias.get(0, c)));
            }
        }
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    /// The (potentially row-parallel) CSR product matches a dense reference
    /// regardless of where the parallel threshold lands.
    #[test]
    fn csr_matmul_dense_matches_dense_reference(
        seed in 0u64..1_000_000,
        n_rows in 1usize..30,
        n_cols in 1usize..30,
        dense_cols in 1usize..16,
        nnz in 0usize..120,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let triplets: Vec<(usize, usize, f32)> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..n_rows),
                    rng.gen_range(0..n_cols),
                    rng.gen_range(-1.0f32..1.0),
                )
            })
            .collect();
        let csr = CsrMatrix::from_triplets(n_rows, n_cols, &triplets).unwrap();
        let x = Matrix::rand_uniform(n_cols, dense_cols, -1.0, 1.0, &mut rng);
        let sparse = csr.matmul_dense(&x).unwrap();
        let dense = csr.to_dense().matmul(&x).unwrap();
        for (a, b) in sparse.data().iter().zip(dense.data().iter()) {
            prop_assert!((a - b).abs() <= 1e-5, "{a} vs {b}");
        }
    }
}

/// Force the parallel row-sharded path (work above the threshold) and check
/// it is bit-identical to the serial per-row accumulation.
#[test]
fn parallel_csr_product_is_bit_identical_to_serial_rows() {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 600;
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let csr = CsrMatrix::normalized_adjacency(n, &edges, true).unwrap();
    let x = Matrix::rand_uniform(n, 64, -1.0, 1.0, &mut rng);
    // nnz * cols = (2*(n-1)+n) * 64 > 65536 => parallel path engages.
    assert!(csr.nnz() * x.cols() > 1 << 16);
    let parallel = csr.matmul_dense(&x).unwrap();

    // Serial reference: accumulate each row in entry order.
    let mut serial = Matrix::zeros(n, 64);
    for r in 0..n {
        for (c, v) in csr.row_entries(r) {
            let src = x.row(c).to_vec();
            let dst = serial.row_mut(r);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += v * s;
            }
        }
    }
    let pb: Vec<u32> = parallel.data().iter().map(|v| v.to_bits()).collect();
    let sb: Vec<u32> = serial.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(pb, sb);
}
