//! Property-based gradient verification.
//!
//! Every differentiable operation is checked against central finite
//! differences on randomly generated inputs: if the tape computes
//! `dL/dx`, then perturbing `x[i]` by ±ε must change the loss by
//! approximately `dL/dx[i] · 2ε`.

use std::rc::Rc;

use dssddi_tensor::{CsrMatrix, Matrix, Tape, TensorError, Var};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Builds a loss from an input leaf using `f`, returning (loss value, grad of leaf).
fn loss_and_grad<F: Fn(&mut Tape, Var) -> Result<Var, TensorError>>(
    input: &Matrix,
    f: &F,
) -> (f32, Matrix) {
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let out = f(&mut tape, x).expect("forward failed");
    let loss = tape.mean_all(out);
    tape.backward(loss).expect("backward failed");
    (
        tape.value(loss).get(0, 0),
        tape.grad(x)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols())),
    )
}

/// Central finite-difference check of the analytic gradient.
fn check_gradient<F: Fn(&mut Tape, Var) -> Result<Var, TensorError>>(input: &Matrix, f: F) {
    let (_, grad) = loss_and_grad(input, &f);
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += EPS;
        let (lp, _) = loss_and_grad(&plus, &f);
        let mut minus = input.clone();
        minus.data_mut()[i] -= EPS;
        let (lm, _) = loss_and_grad(&minus, &f);
        let numeric = (lp - lm) / (2.0 * EPS);
        let analytic = grad.data()[i];
        let denom = numeric.abs().max(analytic.abs()).max(1.0);
        assert!(
            (numeric - analytic).abs() / denom < TOL,
            "gradient mismatch at {i}: numeric={numeric}, analytic={analytic}"
        );
    }
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_of_sigmoid(m in small_matrix(3, 4)) {
        check_gradient(&m, |t, x| Ok(t.sigmoid(x)));
    }

    #[test]
    fn grad_of_tanh(m in small_matrix(3, 4)) {
        check_gradient(&m, |t, x| Ok(t.tanh(x)));
    }

    #[test]
    fn grad_of_leaky_relu(m in small_matrix(3, 4)) {
        // Keep inputs away from the kink at 0 for numerical stability.
        let shifted = m.map(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
        check_gradient(&shifted, |t, x| Ok(t.leaky_relu(x, 0.1)));
    }

    #[test]
    fn grad_of_matmul(m in small_matrix(3, 4)) {
        let w = Matrix::from_fn(4, 2, |r, c| 0.3 * (r as f32 + 1.0) - 0.2 * c as f32);
        check_gradient(&m, move |t, x| {
            let wv = t.constant(w.clone());
            t.matmul(x, wv)
        });
    }

    #[test]
    fn grad_of_matmul_rhs(m in small_matrix(4, 2)) {
        let a = Matrix::from_fn(3, 4, |r, c| 0.1 * (r as f32) + 0.2 * (c as f32) - 0.3);
        check_gradient(&m, move |t, x| {
            let av = t.constant(a.clone());
            t.matmul(av, x)
        });
    }

    #[test]
    fn grad_of_hadamard_and_concat(m in small_matrix(3, 3)) {
        let other = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32 * 0.1 - 0.4);
        check_gradient(&m, move |t, x| {
            let o = t.constant(other.clone());
            let h = t.mul(x, o)?;
            t.concat_cols(h, x)
        });
    }

    #[test]
    fn grad_of_broadcast_bias(m in small_matrix(1, 4)) {
        let base = Matrix::from_fn(5, 4, |r, c| 0.05 * (r as f32) - 0.1 * (c as f32));
        check_gradient(&m, move |t, bias| {
            let b = t.constant(base.clone());
            let y = t.add_broadcast_row(b, bias)?;
            Ok(t.sigmoid(y))
        });
    }

    #[test]
    fn grad_of_broadcast_scale(m in small_matrix(1, 4)) {
        let base = Matrix::from_fn(5, 4, |r, c| 0.3 + 0.05 * (r as f32) - 0.1 * (c as f32));
        check_gradient(&m, move |t, gamma| {
            let b = t.constant(base.clone());
            t.mul_broadcast_row(b, gamma)
        });
    }

    #[test]
    fn grad_of_spmm(m in small_matrix(4, 3)) {
        let adj = CsrMatrix::normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], true).unwrap();
        let adj = Rc::new(adj);
        check_gradient(&m, move |t, x| t.spmm(&adj, x));
    }

    #[test]
    fn grad_of_select_rows(m in small_matrix(5, 3)) {
        check_gradient(&m, |t, x| {
            let s = t.select_rows(x, &[0, 2, 2, 4])?;
            Ok(t.tanh(s))
        });
    }

    #[test]
    fn grad_of_mse_loss(m in small_matrix(4, 2)) {
        let target = Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.2);
        check_gradient(&m, move |t, x| t.mse_loss(x, &target));
    }

    #[test]
    fn grad_of_bce_with_logits(m in small_matrix(4, 2)) {
        let target = Matrix::from_fn(4, 2, |r, c| ((r + c) % 2) as f32);
        check_gradient(&m, move |t, x| t.bce_with_logits(x, &target));
    }

    #[test]
    fn grad_of_standardize_cols(m in small_matrix(5, 3)) {
        check_gradient(&m, |t, x| Ok(t.standardize_cols(x, 1e-5)));
    }

    #[test]
    fn grad_of_mul_scalar_var(m in small_matrix(1, 1)) {
        let base = Matrix::from_fn(3, 3, |r, c| 0.1 * (r as f32) + 0.2 * (c as f32) - 0.3);
        check_gradient(&m, move |t, s| {
            let b = t.constant(base.clone());
            t.mul_scalar_var(b, s)
        });
    }

    #[test]
    fn grad_of_segment_softmax_attention(m in small_matrix(6, 1)) {
        // Six edges into three segments, attention weights aggregate constant features.
        let segments = Rc::new(vec![0usize, 0, 1, 1, 2, 2]);
        let edges = Rc::new(vec![(0usize, 0usize), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)]);
        let features = Matrix::from_fn(6, 2, |r, c| 0.2 * (r as f32) - 0.3 * (c as f32) + 0.1);
        check_gradient(&m, move |t, logits| {
            let att = t.segment_softmax(logits, &segments)?;
            let x = t.constant(features.clone());
            t.spmm_edge_weighted(&edges, att, x, 3)
        });
    }

    #[test]
    fn grad_flows_to_features_through_edge_weighted_aggregation(m in small_matrix(4, 2)) {
        let edges = Rc::new(vec![(0usize, 1usize), (1, 0), (2, 3), (3, 2), (0, 3)]);
        let weights = Matrix::from_fn(5, 1, |r, _| 0.2 + 0.1 * r as f32);
        check_gradient(&m, move |t, x| {
            let w = t.constant(weights.clone());
            t.spmm_edge_weighted(&edges, w, x, 4)
        });
    }
}

#[test]
fn two_layer_mlp_gradcheck() {
    // A deterministic end-to-end check through an MLP with every common op.
    let x = Matrix::from_fn(4, 3, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
    check_gradient(&x, |t, x| {
        let w1 = t.constant(Matrix::from_fn(3, 5, |r, c| {
            0.1 * (r as f32 + 1.0) - 0.05 * c as f32
        }));
        let b1 = t.constant(Matrix::from_fn(1, 5, |_, c| 0.01 * c as f32));
        let w2 = t.constant(Matrix::from_fn(5, 1, |r, _| 0.2 - 0.05 * r as f32));
        let h = t.matmul(x, w1)?;
        let h = t.add_broadcast_row(h, b1)?;
        let h = t.leaky_relu(h, 0.01);
        let out = t.matmul(h, w2)?;
        Ok(t.sigmoid(out))
    });
}
