//! Property-based round-trip coverage of the `DSSD` serializer: random
//! matrices and parameter sets must survive save→load bit-exactly, and
//! corrupted or truncated bytes must yield typed errors — never panics.

use dssddi_tensor::serde::{
    crc32, open_container, seal_container, ByteReader, ByteWriter, SerdeError,
};
use dssddi_tensor::{Matrix, ParamSet};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8).prop_flat_map(|rows| {
        (1usize..8).prop_flat_map(move |cols| {
            proptest::collection::vec(-1e6f32..1e6, rows * cols)
                .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized to shape"))
        })
    })
}

fn arb_param_set() -> impl Strategy<Value = ParamSet> {
    proptest::collection::vec(arb_matrix(), 1..5).prop_map(|matrices| {
        let mut params = ParamSet::new();
        for (i, m) in matrices.into_iter().enumerate() {
            params.add(format!("p{i}"), m);
        }
        params
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matrices survive the writer→container→reader pipeline bit-exactly.
    #[test]
    fn matrix_round_trips_bit_exactly(m in arb_matrix()) {
        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        let sealed = seal_container(w.as_bytes());
        let payload = open_container(&sealed).expect("fresh container is valid");
        let mut r = ByteReader::new(payload);
        let back = r.take_matrix("matrix").expect("fresh payload decodes");
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(back.shape(), m.shape());
        prop_assert_eq!(bits(&back), bits(&m));
    }

    /// Parameter sets keep names, order and exact values.
    #[test]
    fn param_set_round_trips(params in arb_param_set()) {
        let mut w = ByteWriter::new();
        w.put_param_set(&params);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.take_param_set("params").expect("decodes");
        prop_assert_eq!(back.len(), params.len());
        for (id, original) in params.iter() {
            prop_assert_eq!(back.name(id), params.name(id));
            prop_assert_eq!(bits(back.get(id)), bits(original));
        }
    }

    /// Truncating a sealed container anywhere errors and never panics.
    #[test]
    fn truncation_yields_errors_not_panics(m in arb_matrix(), frac in 0.0f64..1.0) {
        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        let sealed = seal_container(w.as_bytes());
        let cut = ((sealed.len() - 1) as f64 * frac) as usize;
        prop_assert!(open_container(&sealed[..cut]).is_err());
    }

    /// Flipping any single payload byte is caught (header bytes produce
    /// magic/version/length errors, payload bytes checksum errors).
    #[test]
    fn corruption_is_detected(m in arb_matrix(), pos in any::<prop::sample::Index>(), bit in 0u32..8) {
        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        let mut sealed = seal_container(w.as_bytes());
        let pos = pos.index(sealed.len());
        sealed[pos] ^= 1 << bit;
        let outcome = open_container(&sealed);
        match outcome {
            Err(_) => {}
            // A flip inside the 8-byte length field can produce a *larger*
            // declared length, which reads as truncation — still an error.
            Ok(_) => prop_assert!(false, "corruption at byte {pos} went undetected"),
        }
    }

    /// The checksum itself is deterministic and sensitive to input changes.
    #[test]
    fn crc32_detects_single_byte_changes(data in proptest::collection::vec(0u8..=255, 1..64),
                                         pos in any::<prop::sample::Index>()) {
        let original = crc32(&data);
        prop_assert_eq!(original, crc32(&data));
        let mut changed = data.clone();
        let pos = pos.index(changed.len());
        changed[pos] = changed[pos].wrapping_add(1);
        prop_assert!(crc32(&changed) != original);
    }
}

#[test]
fn non_finite_values_round_trip_bit_exactly() {
    let m = Matrix::from_vec(
        2,
        3,
        vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            f32::EPSILON,
            1e-45,
        ],
    )
    .expect("shape matches");
    let mut w = ByteWriter::new();
    w.put_matrix(&m);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    let back = r.take_matrix("specials").expect("decodes");
    assert_eq!(bits(&back), bits(&m));
}

#[test]
fn version_and_magic_mismatches_are_typed() {
    let sealed = seal_container(b"payload");
    let mut wrong_version = sealed.clone();
    wrong_version[4] = 42;
    assert!(matches!(
        open_container(&wrong_version),
        Err(SerdeError::UnsupportedVersion { found: 42, .. })
    ));
    let mut wrong_magic = sealed;
    wrong_magic[0] = b'X';
    assert!(matches!(
        open_container(&wrong_magic),
        Err(SerdeError::BadMagic)
    ));
}
