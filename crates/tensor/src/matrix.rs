//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the storage type used throughout the DSSDDI reproduction:
//! model parameters, node feature tables, activation buffers and gradients
//! are all dense matrices. The type is deliberately simple (a `Vec<f32>`
//! plus a shape) so that the autodiff tape in [`crate::tape`] can clone and
//! accumulate values cheaply and predictably.

use std::fmt;

use rand::Rng;

use crate::TensorError;

/// Row-block size of the dense matmul kernel: a block of output rows is
/// finished against one `rhs` panel before moving on, so the panel is reused
/// from cache `MATMUL_I_BLOCK` times.
const MATMUL_I_BLOCK: usize = 32;

/// Inner-dimension block size of the dense matmul kernel: `MATMUL_K_BLOCK`
/// rows of `rhs` form the panel kept hot in L1/L2. Blocks are visited in
/// ascending order, so every output element still accumulates its `k` terms
/// in exactly the order of the textbook i-k-j loop — the blocking changes
/// memory traffic, never floating-point results.
const MATMUL_K_BLOCK: usize = 64;

/// Tile side of the blocked transpose (a 32x32 f32 tile is 4 KiB, i.e. two
/// tiles fit in L1 comfortably).
const TRANSPOSE_BLOCK: usize = 32;

/// A dense, row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Internal constructor for callers that have already established
    /// `data.len() == rows * cols` (the scratch pool).
    pub(crate) fn from_parts(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
                op: "Matrix::from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
    }

    /// Creates a matrix with entries drawn from a standard normal
    /// distribution (Box–Muller transform; no external distribution crate).
    pub fn rand_normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            mean + std * z
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds (programmer error).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Adds `value` to the entry at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += value;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into an owned vector.
    pub fn row_to_vec(&self, r: usize) -> Vec<f32> {
        self.row(r).to_vec()
    }

    /// Column `c` as an owned vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Builds a new matrix from the rows selected by `indices`
    /// (rows may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Returns an error when the inner dimensions do not agree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(&mut out, rhs)?;
        Ok(out)
    }

    /// Matrix product `self * rhs` written into a caller-provided buffer
    /// (typically from a [`crate::ScratchPool`]) — the allocation-free kernel
    /// behind [`Matrix::matmul`]. Like every `*_into` kernel, it takes its
    /// output buffer as the first argument and fully overwrites it.
    ///
    /// `out` must already have shape `(self.rows, rhs.cols)`; the kernel
    /// fully overwrites it, so recycled scratch buffers need no prior
    /// zeroing. The kernel is cache-blocked (panels of
    /// `MATMUL_I_BLOCK` output rows against `MATMUL_K_BLOCK` `rhs` rows)
    /// with a branch-free inner loop over contiguous slices that the
    /// compiler can autovectorize. Because blocks are visited in ascending
    /// order, every output element accumulates its `k` terms in plain
    /// ascending order: results are deterministic and independent of the
    /// block sizes.
    pub fn matmul_into(&self, out: &mut Matrix, rhs: &Matrix) -> Result<(), TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                expected: (self.cols, self.cols),
                found: (rhs.rows, rhs.cols),
                op: "matmul",
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(TensorError::ShapeMismatch {
                expected: (self.rows, rhs.cols),
                found: out.shape(),
                op: "matmul_into",
            });
        }
        out.data.fill(0.0);
        let n = rhs.cols;
        for ii in (0..self.rows).step_by(MATMUL_I_BLOCK) {
            let i_end = (ii + MATMUL_I_BLOCK).min(self.rows);
            for kk in (0..self.cols).step_by(MATMUL_K_BLOCK) {
                let k_end = (kk + MATMUL_K_BLOCK).min(self.cols);
                for i in ii..i_end {
                    let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    for (k, &a_ik) in a_row[kk..k_end].iter().enumerate() {
                        // One well-predicted branch per `k`, amortised over
                        // the whole `j` loop: one-hot and other row-sparse
                        // inputs (DDIGCN identity features, binary patient
                        // features) skip the entire panel row, while the
                        // inner loop below stays branch-free and
                        // autovectorizable for dense inputs.
                        if a_ik == 0.0 {
                            continue;
                        }
                        let b_row = &rhs.data[(kk + k) * n..(kk + k + 1) * n];
                        for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                            *o += a_ik * b_kj;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Transpose (cache-blocked: both the source rows and the destination
    /// rows of a `TRANSPOSE_BLOCK`-squared tile stay resident while it is moved).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rr in (0..self.rows).step_by(TRANSPOSE_BLOCK) {
            let r_end = (rr + TRANSPOSE_BLOCK).min(self.rows);
            for cc in (0..self.cols).step_by(TRANSPOSE_BLOCK) {
                let c_end = (cc + TRANSPOSE_BLOCK).min(self.cols);
                for r in rr..r_end {
                    let src = &self.data[r * self.cols..(r + 1) * self.cols];
                    for c in cc..c_end {
                        out.data[c * self.rows + r] = src[c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// In-place element-wise addition (used for gradient accumulation).
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape(),
                found: rhs.shape(),
                op: "add_assign",
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Element-wise combination of two same-shape matrices.
    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape(),
                found: rhs.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum entry (negative infinity for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum entry (positive infinity for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum over columns, producing an `(rows, 1)` matrix.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.set(r, 0, self.row(r).iter().sum());
        }
        out
    }

    /// Sum over rows, producing a `(1, cols)` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.add_at(0, c, self.get(r, c));
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs` (same number of rows).
    pub fn concat_cols(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                expected: (self.rows, rhs.cols),
                found: rhs.shape(),
                op: "concat_cols",
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` and `rhs` (same number of columns).
    pub fn concat_rows(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                expected: (rhs.rows, self.cols),
                found: rhs.shape(),
                op: "concat_rows",
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// L2 norm of each row, as an `(rows, 1)` matrix.
    pub fn row_norms(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let n = self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            out.set(r, 0, n);
        }
        out
    }

    /// Dot product between two rows of (possibly different) matrices.
    pub fn row_dot(&self, r: usize, other: &Matrix, o: usize) -> f32 {
        self.row(r)
            .iter()
            .zip(other.row(o).iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Cosine similarity between row `r` of `self` and row `o` of `other`.
    ///
    /// Returns 0.0 when either row has a zero norm.
    pub fn row_cosine(&self, r: usize, other: &Matrix, o: usize) -> f32 {
        let dot = self.row_dot(r, other, o);
        let na = self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb = other.row(o).iter().map(|x| x * x).sum::<f32>().sqrt();
        if na <= f32::EPSILON || nb <= f32::EPSILON {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Euclidean distance between row `r` of `self` and row `o` of `other`.
    pub fn row_euclidean(&self, r: usize, other: &Matrix, o: usize) -> f32 {
        self.row(r)
            .iter()
            .zip(other.row(o).iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Pairwise cosine-similarity matrix between the rows of `self` and the
    /// rows of `other` (result is `self.rows x other.rows`).
    pub fn cosine_similarity_matrix(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                expected: (other.rows, self.cols),
                found: other.shape(),
                op: "cosine_similarity_matrix",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                out.set(i, j, self.row_cosine(i, other, j));
            }
        }
        Ok(out)
    }

    /// True when all entries are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns the indices that would sort row `r` in descending order.
    pub fn argsort_row_desc(&self, r: usize) -> Vec<usize> {
        let row = self.row(r);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| {
            row[b]
                .partial_cmp(&row[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full_shapes() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.sum(), 0.0);
        let o = Matrix::ones(2, 2);
        assert_eq!(o.sum(), 4.0);
        let f = Matrix::full(2, 3, 0.5);
        assert!((f.sum() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::rand_uniform(4, 4, -1.0, 1.0, &mut rng);
        let i = Matrix::identity(4);
        let ai = a.matmul(&i).unwrap();
        for (x, y) in a.data().iter().zip(ai.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.sum_cols().data(), &[3.0, 7.0]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::ones(2, 2);
        let b = Matrix::zeros(2, 3);
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 5));
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 4), 0.0);
        let d = a.concat_rows(&Matrix::zeros(1, 2)).unwrap();
        assert_eq!(d.shape(), (3, 2));
        assert!(a.concat_cols(&Matrix::zeros(3, 1)).is_err());
        assert!(a.concat_rows(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn select_rows_repeats_allowed() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn cosine_similarity_properties() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]).unwrap();
        assert!((a.row_cosine(0, &a, 0) - 1.0).abs() < 1e-6);
        assert!(a.row_cosine(0, &a, 1).abs() < 1e-6);
        let zero = Matrix::zeros(1, 3);
        assert_eq!(zero.row_cosine(0, &a, 0), 0.0);
        let sim = a.cosine_similarity_matrix(&a).unwrap();
        assert_eq!(sim.shape(), (2, 2));
        assert!((sim.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argsort_row_descending() {
        let a = Matrix::from_vec(1, 4, vec![0.1, 0.9, 0.5, 0.3]).unwrap();
        assert_eq!(a.argsort_row_desc(0), vec![1, 2, 3, 0]);
    }

    #[test]
    fn random_constructors_are_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Matrix::rand_uniform(3, 3, -1.0, 1.0, &mut r1);
        let b = Matrix::rand_uniform(3, 3, -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
        let c = Matrix::rand_normal(5, 5, 0.0, 1.0, &mut r1);
        assert!(c.all_finite());
    }

    #[test]
    fn row_euclidean_distance() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]).unwrap();
        assert!((a.row_euclidean(0, &a, 1) - 5.0).abs() < 1e-6);
    }
}
