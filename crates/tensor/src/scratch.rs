//! A pool of reusable matrix buffers for the tape-free inference path.
//!
//! Serving a batch of patients runs the same small forward pass thousands of
//! times; allocating fresh activation matrices for every layer of every
//! patient dominates the cost once the tape is gone. A [`ScratchPool`] keeps
//! the backing `Vec<f32>` allocations alive between uses:
//! [`ScratchPool::take`] hands out a matrix of the requested shape (reusing
//! a retired buffer's allocation when one is available) and
//! [`ScratchPool::recycle`] returns a matrix's storage to the pool.
//!
//! Reuse rules:
//!
//! * **Contents are unspecified** — a recycled buffer still holds its old
//!   values. Every kernel that writes into pooled buffers
//!   ([`Matrix::matmul_into`](crate::Matrix::matmul_into),
//!   [`fused_linear_into`](crate::fused_linear_into),
//!   `CsrMatrix::matmul_dense_into`) fully overwrites its output, so no
//!   caller pays a redundant zeroing pass; code that fills a buffer by hand
//!   must write every element. Use [`ScratchPool::take_zeroed`] when a
//!   cleared buffer is genuinely needed.
//! * Whoever `take`s a buffer `recycle`s it once done with it; after
//!   warm-up a steady-state serving loop performs no allocation.
//! * The pool is deliberately not thread-safe: each serving worker owns its
//!   own pool (buffers never cross threads), which keeps `take`/`recycle`
//!   at the cost of a `Vec` push/pop.

use crate::Matrix;

/// A reusable pool of matrix buffers. See the module docs.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<Vec<f32>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `rows x cols` matrix with **unspecified contents**, backed by a
    /// recycled allocation when the pool has one (most recently recycled
    /// first, so tight loops keep hitting the same cache-warm buffers).
    /// Callers must fully overwrite the buffer — all the `*_into` kernels
    /// do.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        let mut buf = self.free.pop().unwrap_or_default();
        if buf.len() >= need {
            buf.truncate(need);
        } else {
            // New capacity is zero-filled by `resize`; reused capacity
            // keeps whatever the previous user wrote.
            buf.resize(need, 0.0);
        }
        Matrix::from_parts(rows, cols, buf)
    }

    /// Like [`ScratchPool::take`], but the returned matrix is zero-filled.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take(rows, cols);
        m.data_mut().fill(0.0);
        m
    }

    /// Returns a matrix's backing storage to the pool for later reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.free.push(m.into_vec());
    }

    /// Number of idle buffers currently held.
    pub fn idle_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_matrices_of_the_right_shape_and_take_zeroed_clears() {
        let mut pool = ScratchPool::new();
        let mut m = pool.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        // Dirty the buffer, recycle it, and take a zeroed one: cleared even
        // though the allocation is reused.
        m.set(2, 3, 7.0);
        pool.recycle(m);
        assert_eq!(pool.idle_buffers(), 1);
        let z = pool.take_zeroed(2, 5);
        assert_eq!(pool.idle_buffers(), 0);
        assert_eq!(z.shape(), (2, 5));
        assert!(z.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn recycled_allocation_is_reused_when_it_fits() {
        let mut pool = ScratchPool::new();
        let m = pool.take(10, 10);
        let ptr = m.data().as_ptr();
        pool.recycle(m);
        let again = pool.take(4, 6); // smaller: same allocation serves it
        assert_eq!(again.data().as_ptr(), ptr);
    }

    #[test]
    fn kernels_fully_overwrite_dirty_recycled_buffers() {
        let mut pool = ScratchPool::new();
        let mut dirty = pool.take(4, 4);
        dirty.data_mut().fill(f32::NAN);
        pool.recycle(dirty);
        let a = Matrix::identity(4);
        let b = Matrix::full(4, 4, 2.0);
        let mut out = pool.take(4, 4);
        a.matmul_into(&mut out, &b).unwrap();
        assert_eq!(out, b, "matmul_into must overwrite stale contents");
    }
}
