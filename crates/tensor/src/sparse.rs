//! Compressed sparse row (CSR) matrices.
//!
//! Graph convolutions in the DDI and MD modules are expressed as products
//! of a (constant) normalised adjacency matrix with a dense feature matrix.
//! [`CsrMatrix`] stores that adjacency once and provides the sparse–dense
//! product used by the autodiff tape (forward: `A · X`, backward:
//! `Aᵀ · dL/dY`).

use crate::{Matrix, TensorError};

/// Minimum number of multiply-adds (`nnz * dense_cols`) before
/// `matmul_dense` shards rows across threads: below this, spawning costs
/// more than it saves (the paper-sized graphs fall well under it, so
/// training stays single-threaded and deterministic in timing).
const PAR_MIN_WORK: usize = 1 << 16;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    ///
    /// Duplicate `(row, col)` entries are summed. Entries outside the
    /// declared shape produce an error.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self, TensorError> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: (r, c),
                    shape: (rows, cols),
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // Merge duplicate (row, col) entries by summing their values.
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for &(r, c, v) in &merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the stored entries of row `r` as `(col, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Sparse–dense product `self * dense`.
    pub fn matmul_dense(&self, dense: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.matmul_dense_into(&mut out, dense)?;
        Ok(out)
    }

    /// Sparse–dense product `self * dense` written into a caller-provided
    /// buffer (typically from a [`crate::ScratchPool`]). Like every `*_into`
    /// kernel, it takes its output buffer as the first argument and fully
    /// overwrites it.
    ///
    /// `out` must already have shape `(self.rows, dense.cols())`; the
    /// kernel fully overwrites it. Rows of the output are
    /// independent, so when the total work (`nnz * dense_cols`) is large
    /// enough the row range is sharded across scoped threads; each row is
    /// still accumulated by exactly one thread in the same entry order as
    /// the serial loop, so results are bit-identical regardless of the
    /// thread count.
    pub fn matmul_dense_into(&self, out: &mut Matrix, dense: &Matrix) -> Result<(), TensorError> {
        if self.cols != dense.rows() {
            return Err(TensorError::ShapeMismatch {
                expected: (self.cols, dense.cols()),
                found: dense.shape(),
                op: "CsrMatrix::matmul_dense",
            });
        }
        if out.shape() != (self.rows, dense.cols()) {
            return Err(TensorError::ShapeMismatch {
                expected: (self.rows, dense.cols()),
                found: out.shape(),
                op: "CsrMatrix::matmul_dense_into",
            });
        }
        let cols = dense.cols();
        out.data_mut().fill(0.0);
        if cols == 0 || self.rows == 0 {
            return Ok(());
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.rows.max(1));
        if threads > 1 && self.nnz().saturating_mul(cols) >= PAR_MIN_WORK {
            let rows_per_shard = self.rows.div_ceil(threads);
            std::thread::scope(|s| {
                for (shard, chunk) in out.data_mut().chunks_mut(rows_per_shard * cols).enumerate() {
                    let first_row = shard * rows_per_shard;
                    s.spawn(move || self.accumulate_rows(dense, first_row, chunk, cols));
                }
            });
        } else {
            self.accumulate_rows(dense, 0, out.data_mut(), cols);
        }
        Ok(())
    }

    /// Serial kernel over the row range starting at `first_row` whose output
    /// slice is `chunk` (`chunk.len() / cols` rows).
    fn accumulate_rows(&self, dense: &Matrix, first_row: usize, chunk: &mut [f32], cols: usize) {
        for (local, dst) in chunk.chunks_mut(cols).enumerate() {
            for (c, v) in self.row_entries(first_row + local) {
                let src = dense.row(c);
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d += v * s;
                }
            }
        }
    }

    /// Transposed sparse–dense product `selfᵀ * dense` (used in backward).
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Result<Matrix, TensorError> {
        if self.rows != dense.rows() {
            return Err(TensorError::ShapeMismatch {
                expected: (self.rows, dense.cols()),
                found: dense.shape(),
                op: "CsrMatrix::transpose_matmul_dense",
            });
        }
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for r in 0..self.rows {
            let src = dense.row(r);
            for (c, v) in self.row_entries(r) {
                let dst = out.row_mut(c);
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d += v * s;
                }
            }
        }
        Ok(out)
    }

    /// Materialises the sparse matrix as a dense [`Matrix`] (tests / small graphs).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.add_at(r, c, v);
            }
        }
        out
    }

    /// Builds the symmetrically normalised adjacency `D^{-1/2} (A) D^{-1/2}`
    /// over an undirected edge list (each pair added in both directions),
    /// optionally with self-loops — the propagation operator used by
    /// LightGCN-style layers (Eq. 11–12 of the paper).
    pub fn normalized_adjacency(
        n: usize,
        edges: &[(usize, usize)],
        self_loops: bool,
    ) -> Result<Self, TensorError> {
        let mut deg = vec![0usize; n];
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 2 + n);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: (u, v),
                    shape: (n, n),
                });
            }
            pairs.push((u, v));
            pairs.push((v, u));
            deg[u] += 1;
            deg[v] += 1;
        }
        if self_loops {
            for i in 0..n {
                pairs.push((i, i));
                deg[i] += 1;
            }
        }
        let triplets: Vec<(usize, usize, f32)> = pairs
            .into_iter()
            .map(|(u, v)| {
                let du = deg[u].max(1) as f32;
                let dv = deg[v].max(1) as f32;
                (u, v, 1.0 / (du.sqrt() * dv.sqrt()))
            })
            .collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Builds the row-normalised (mean aggregation) adjacency `D^{-1} A`
    /// over an undirected edge list, used by the GIN-style neighbour mean in
    /// Eq. (1) of the paper.
    pub fn mean_adjacency(n: usize, edges: &[(usize, usize)]) -> Result<Self, TensorError> {
        let mut deg = vec![0usize; n];
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: (u, v),
                    shape: (n, n),
                });
            }
            pairs.push((u, v));
            pairs.push((v, u));
            deg[u] += 1;
            deg[v] += 1;
        }
        let triplets: Vec<(usize, usize, f32)> = pairs
            .into_iter()
            .map(|(u, v)| (u, v, 1.0 / deg[u].max(1) as f32))
            .collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Builds the normalised adjacency of a bipartite interaction graph with
    /// `n_left + n_right` nodes from `(left, right)` interaction pairs.
    /// Left nodes occupy indices `0..n_left`, right nodes
    /// `n_left..n_left+n_right`.
    pub fn bipartite_normalized(
        n_left: usize,
        n_right: usize,
        interactions: &[(usize, usize)],
    ) -> Result<Self, TensorError> {
        let edges: Result<Vec<(usize, usize)>, TensorError> = interactions
            .iter()
            .map(|&(l, r)| {
                if l >= n_left || r >= n_right {
                    Err(TensorError::IndexOutOfBounds {
                        index: (l, r),
                        shape: (n_left, n_right),
                    })
                } else {
                    Ok((l, n_left + r))
                }
            })
            .collect();
        Self::normalized_adjacency(n_left + n_right, &edges?, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_and_dense_round_trip() {
        let t = vec![(0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0)];
        let csr = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        assert_eq!(csr.nnz(), 3);
        let d = csr.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 0), 3.0);
        assert_eq!(d.get(2, 2), 4.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]).unwrap();
        assert_eq!(csr.to_dense().get(0, 1), 3.5);
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let t = vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0), (2, 0, 0.5)];
        let csr = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sparse_result = csr.matmul_dense(&x).unwrap();
        let dense_result = csr.to_dense().matmul(&x).unwrap();
        for (a, b) in sparse_result.data().iter().zip(dense_result.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let t = vec![(0, 1, 1.5), (1, 2, -2.0), (2, 0, 3.0)];
        let csr = CsrMatrix::from_triplets(3, 3, &t).unwrap();
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let a = csr.transpose_matmul_dense(&x).unwrap();
        let b = csr.to_dense().transpose().matmul(&x).unwrap();
        for (p, q) in a.data().iter().zip(b.data().iter()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let csr = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(csr.matmul_dense(&Matrix::zeros(2, 2)).is_err());
        assert!(csr.transpose_matmul_dense(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn normalized_adjacency_rows_of_connected_graph() {
        // Path graph 0-1-2 with self loops: known GCN normalisation.
        let adj = CsrMatrix::normalized_adjacency(3, &[(0, 1), (1, 2)], true).unwrap();
        let d = adj.to_dense();
        // Node 0 degree 2, node 1 degree 3 (with self loops).
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(0, 1) - 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt())).abs() < 1e-6);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn mean_adjacency_rows_sum_to_one_for_nonisolated_nodes() {
        let adj = CsrMatrix::mean_adjacency(4, &[(0, 1), (0, 2), (0, 3), (2, 3)]).unwrap();
        let d = adj.to_dense();
        for r in 0..4 {
            let s: f32 = (0..4).map(|c| d.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn bipartite_normalized_offsets_right_nodes() {
        let adj = CsrMatrix::bipartite_normalized(2, 3, &[(0, 0), (1, 2)]).unwrap();
        assert_eq!(adj.rows(), 5);
        let d = adj.to_dense();
        assert!(d.get(0, 2) > 0.0); // left 0 <-> right 0 (index 2)
        assert!(d.get(4, 1) > 0.0); // right 2 (index 4) <-> left 1
        assert!(CsrMatrix::bipartite_normalized(2, 3, &[(5, 0)]).is_err());
    }

    #[test]
    fn empty_rows_are_handled() {
        let csr = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        let x = Matrix::ones(4, 2);
        let y = csr.matmul_dense(&x).unwrap();
        assert_eq!(y.row(0), &[0.0, 0.0]);
        assert_eq!(y.row(3), &[1.0, 1.0]);
    }
}
