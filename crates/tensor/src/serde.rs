//! Versioned, dependency-free binary serialization.
//!
//! Trained DSSDDI parameter sets have to outlive the process that fitted
//! them: a service is trained once on the chronic cohort and then shipped to
//! serving hosts. This module is the byte-level substrate for that — a small
//! writer/reader pair plus a checked container format, with no external
//! crates involved.
//!
//! ## Container layout (`DSSD` format, version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic bytes "DSSD"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       8     payload length in bytes (little-endian u64)
//! 14      n     payload
//! 14+n    4     CRC-32 (IEEE) of the payload (little-endian u32)
//! ```
//!
//! All integers are little-endian; `f32`/`f64` are stored as their IEEE-754
//! bit patterns, so values (including NaNs) round-trip bit-exactly. Reading
//! is fully bounds-checked: truncated, corrupted or version-mismatched input
//! produces a typed [`SerdeError`], never a panic, and no allocation is made
//! before the claimed element count has been checked against the bytes that
//! are actually present.

use std::path::Path;

use crate::{Matrix, ParamId, ParamSet};

/// Magic bytes opening every container.
pub const MAGIC: [u8; 4] = *b"DSSD";

/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Errors produced while writing or reading serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SerdeError {
    /// A filesystem operation failed.
    Io {
        /// Description including the underlying error.
        what: String,
    },
    /// The input does not start with the `DSSD` magic bytes.
    BadMagic,
    /// The container was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The input ended before a declared field was complete.
    Truncated {
        /// The field that could not be read.
        what: &'static str,
    },
    /// A declared value is inconsistent with the surrounding data.
    Corrupt {
        /// Description of the inconsistency.
        what: String,
    },
    /// The payload checksum does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the container.
        expected: u32,
        /// Checksum computed over the payload.
        found: u32,
    },
}

impl std::fmt::Display for SerdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerdeError::Io { what } => write!(f, "i/o error: {what}"),
            SerdeError::BadMagic => write!(f, "not a DSSD container (bad magic bytes)"),
            SerdeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads version {supported})"
            ),
            SerdeError::Truncated { what } => write!(f, "truncated input while reading {what}"),
            SerdeError::Corrupt { what } => write!(f, "corrupt input: {what}"),
            SerdeError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum mismatch: stored {expected:#010x}, computed {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for SerdeError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends fields to a growing payload buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The payload written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed raw byte slice.
    pub fn put_u8_slice(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, values: &[f32]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_f32(v);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, values: &[usize]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_usize(v);
        }
    }

    /// Writes a [`Matrix`]: shape followed by the row-major data.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.data() {
            self.put_f32(v);
        }
    }

    /// Writes an optional [`Matrix`] behind a presence byte.
    pub fn put_opt_matrix(&mut self, m: Option<&Matrix>) {
        match m {
            Some(m) => {
                self.put_bool(true);
                self.put_matrix(m);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a [`ParamSet`]: every parameter's registration name and value,
    /// in registration order (so [`ParamId`]s stay valid after reload).
    pub fn put_param_set(&mut self, params: &ParamSet) {
        self.put_usize(params.len());
        for (id, matrix) in params.iter() {
            self.put_str(params.name(id));
            self.put_matrix(matrix);
        }
    }

    /// Writes a [`ParamId`] as its registration index.
    pub fn put_param_id(&mut self, id: ParamId) {
        self.put_usize(id.0);
    }
}

/// Reads fields back out of a payload, with full bounds checking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SerdeError> {
        if self.remaining() < n {
            return Err(SerdeError::Truncated { what });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, SerdeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, SerdeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, SerdeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, SerdeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`].
    pub fn take_usize(&mut self, what: &'static str) -> Result<usize, SerdeError> {
        let v = self.take_u64(what)?;
        usize::try_from(v).map_err(|_| SerdeError::Corrupt {
            what: format!("{what}: value {v} does not fit in usize"),
        })
    }

    /// Reads a boolean byte (0 or 1; anything else is corrupt).
    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, SerdeError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SerdeError::Corrupt {
                what: format!("{what}: invalid boolean byte {other}"),
            }),
        }
    }

    /// Reads an `f32` bit pattern.
    pub fn take_f32(&mut self, what: &'static str) -> Result<f32, SerdeError> {
        Ok(f32::from_bits(self.take_u32(what)?))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self, what: &'static str) -> Result<f64, SerdeError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Checks that a declared element count is backed by enough remaining
    /// bytes *before* any allocation happens, so a corrupt length cannot
    /// trigger a huge allocation.
    fn checked_len(
        &self,
        count: usize,
        elem_size: usize,
        what: &'static str,
    ) -> Result<usize, SerdeError> {
        let bytes = count.checked_mul(elem_size).ok_or(SerdeError::Corrupt {
            what: format!("{what}: element count {count} overflows"),
        })?;
        if bytes > self.remaining() {
            return Err(SerdeError::Truncated { what });
        }
        Ok(count)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &'static str) -> Result<String, SerdeError> {
        let len = self.take_usize(what)?;
        self.checked_len(len, 1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SerdeError::Corrupt {
            what: format!("{what}: string is not valid UTF-8"),
        })
    }

    /// Reads a length-prefixed raw byte slice written by
    /// [`ByteWriter::put_u8_slice`].
    pub fn take_u8_vec(&mut self, what: &'static str) -> Result<Vec<u8>, SerdeError> {
        let len = self.take_usize(what)?;
        self.checked_len(len, 1, what)?;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn take_f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, SerdeError> {
        let len = self.take_usize(what)?;
        self.checked_len(len, 4, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f32(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` slice.
    pub fn take_usize_vec(&mut self, what: &'static str) -> Result<Vec<usize>, SerdeError> {
        let len = self.take_usize(what)?;
        self.checked_len(len, 8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_usize(what)?);
        }
        Ok(out)
    }

    /// Reads a [`Matrix`] written by [`ByteWriter::put_matrix`].
    pub fn take_matrix(&mut self, what: &'static str) -> Result<Matrix, SerdeError> {
        let rows = self.take_usize(what)?;
        let cols = self.take_usize(what)?;
        let len = rows.checked_mul(cols).ok_or(SerdeError::Corrupt {
            what: format!("{what}: matrix shape {rows}x{cols} overflows"),
        })?;
        self.checked_len(len, 4, what)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.take_f32(what)?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|_| SerdeError::Corrupt {
            what: format!("{what}: matrix data does not match shape {rows}x{cols}"),
        })
    }

    /// Reads an optional [`Matrix`] written by [`ByteWriter::put_opt_matrix`].
    pub fn take_opt_matrix(&mut self, what: &'static str) -> Result<Option<Matrix>, SerdeError> {
        if self.take_bool(what)? {
            Ok(Some(self.take_matrix(what)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a [`ParamSet`] written by [`ByteWriter::put_param_set`].
    /// Parameters are re-registered in their original order, so previously
    /// serialized [`ParamId`]s remain valid against the returned set.
    pub fn take_param_set(&mut self, what: &'static str) -> Result<ParamSet, SerdeError> {
        let len = self.take_usize(what)?;
        // Each parameter carries at least a name length and a shape.
        self.checked_len(len, 24, what)?;
        let mut params = ParamSet::new();
        for _ in 0..len {
            let name = self.take_str(what)?;
            let matrix = self.take_matrix(what)?;
            params.add(name, matrix);
        }
        Ok(params)
    }

    /// Reads a [`ParamId`] and validates it against `params`.
    pub fn take_param_id(
        &mut self,
        params: &ParamSet,
        what: &'static str,
    ) -> Result<ParamId, SerdeError> {
        let idx = self.take_usize(what)?;
        if idx >= params.len() {
            return Err(SerdeError::Corrupt {
                what: format!(
                    "{what}: parameter index {idx} out of range (set has {})",
                    params.len()
                ),
            });
        }
        Ok(ParamId(idx))
    }
}

/// Byte length of a frame header: magic (4) + version (2) + payload
/// length (8). Every framed format built on this module — the `DSSD`
/// container and the serving wire protocol — shares this prefix shape.
pub const FRAME_HEADER_LEN: usize = 14;

/// Wraps a payload in a generic frame: `magic`, little-endian `version`,
/// `u64` payload length, payload, CRC-32 trailer. The `DSSD` container and
/// the serving wire protocol are both instances of this layout, differing
/// only in their magic bytes and version number.
pub fn seal_frame(magic: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN + 4);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validates the leading [`FRAME_HEADER_LEN`] bytes of a frame and returns
/// the declared payload length.
///
/// Checks, in order: magic bytes, format version, and that the declared
/// length fits in `usize`. This is the streaming entry point: a socket
/// reader pulls the fixed-size header first, learns the payload length from
/// it, then reads exactly `length + 4` more bytes (payload plus CRC) and
/// hands the whole frame to [`open_frame`].
pub fn parse_frame_header(magic: [u8; 4], version: u16, bytes: &[u8]) -> Result<usize, SerdeError> {
    if bytes.len() < 4 {
        return Err(SerdeError::Truncated {
            what: "container magic",
        });
    }
    if bytes[..4] != magic {
        return Err(SerdeError::BadMagic);
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(SerdeError::Truncated {
            what: "container header",
        });
    }
    let found = u16::from_le_bytes([bytes[4], bytes[5]]);
    if found != version {
        return Err(SerdeError::UnsupportedVersion {
            found,
            supported: version,
        });
    }
    let declared = u64::from_le_bytes([
        bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13],
    ]);
    usize::try_from(declared).map_err(|_| SerdeError::Corrupt {
        what: format!("declared payload length {declared} does not fit in usize"),
    })
}

/// Validates a complete frame sealed by [`seal_frame`] and returns its
/// payload slice.
///
/// Checks, in order: the header (via [`parse_frame_header`]), the declared
/// payload length against the actual byte count (trailing bytes are
/// rejected), and the CRC-32 trailer.
pub fn open_frame(magic: [u8; 4], version: u16, bytes: &[u8]) -> Result<&[u8], SerdeError> {
    let declared = parse_frame_header(magic, version, bytes)?;
    let body = &bytes[FRAME_HEADER_LEN..];
    // The declared length is untrusted input: checked arithmetic, so a
    // near-usize::MAX value cannot overflow `declared + 4`.
    let declared_with_crc = declared.checked_add(4).ok_or_else(|| SerdeError::Corrupt {
        what: format!("declared payload length {declared} overflows"),
    })?;
    if body.len() < declared_with_crc {
        return Err(SerdeError::Truncated {
            what: "container payload",
        });
    }
    if body.len() > declared_with_crc {
        return Err(SerdeError::Corrupt {
            what: format!(
                "container has {} trailing bytes after the checksum",
                body.len() - declared_with_crc
            ),
        });
    }
    let payload = &body[..declared];
    let stored = u32::from_le_bytes([
        body[declared],
        body[declared + 1],
        body[declared + 2],
        body[declared + 3],
    ]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(SerdeError::ChecksumMismatch {
            expected: stored,
            found: computed,
        });
    }
    Ok(payload)
}

/// Like [`parse_frame_header`] but accepting any of several `supported`
/// versions — the entry point for protocols that negotiate per-frame
/// (the serving wire protocol's traced frames). Returns the version the
/// frame actually carries plus its declared payload length; a version not
/// in `supported` reports the highest supported one in the error.
pub fn parse_frame_header_versions(
    magic: [u8; 4],
    supported: &[u16],
    bytes: &[u8],
) -> Result<(u16, usize), SerdeError> {
    if bytes.len() < 4 {
        return Err(SerdeError::Truncated {
            what: "container magic",
        });
    }
    if bytes.get(..4) != Some(magic.as_slice()) {
        return Err(SerdeError::BadMagic);
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(SerdeError::Truncated {
            what: "container header",
        });
    }
    let mut version_bytes = [0u8; 2];
    if let Some(src) = bytes.get(4..6) {
        version_bytes.copy_from_slice(src);
    }
    let found = u16::from_le_bytes(version_bytes);
    if !supported.contains(&found) {
        return Err(SerdeError::UnsupportedVersion {
            found,
            supported: supported.iter().copied().max().unwrap_or(0),
        });
    }
    let mut len_bytes = [0u8; 8];
    if let Some(src) = bytes.get(6..FRAME_HEADER_LEN) {
        len_bytes.copy_from_slice(src);
    }
    let declared = u64::from_le_bytes(len_bytes);
    let declared = usize::try_from(declared).map_err(|_| SerdeError::Corrupt {
        what: format!("declared payload length {declared} does not fit in usize"),
    })?;
    Ok((found, declared))
}

/// Like [`open_frame`] but accepting any of several `supported` versions;
/// returns the version the frame carries alongside its payload slice.
pub fn open_frame_versions<'a>(
    magic: [u8; 4],
    supported: &[u16],
    bytes: &'a [u8],
) -> Result<(u16, &'a [u8]), SerdeError> {
    let (found, declared) = parse_frame_header_versions(magic, supported, bytes)?;
    let body = bytes.get(FRAME_HEADER_LEN..).unwrap_or(&[]);
    // The declared length is untrusted input: checked arithmetic, so a
    // near-usize::MAX value cannot overflow `declared + 4`.
    let declared_with_crc = declared.checked_add(4).ok_or_else(|| SerdeError::Corrupt {
        what: format!("declared payload length {declared} overflows"),
    })?;
    if body.len() < declared_with_crc {
        return Err(SerdeError::Truncated {
            what: "container payload",
        });
    }
    if body.len() > declared_with_crc {
        return Err(SerdeError::Corrupt {
            what: format!(
                "container has {} trailing bytes after the checksum",
                body.len() - declared_with_crc
            ),
        });
    }
    let payload = body.get(..declared).ok_or(SerdeError::Truncated {
        what: "container payload",
    })?;
    let mut crc_bytes = [0u8; 4];
    if let Some(src) = body.get(declared..declared_with_crc) {
        crc_bytes.copy_from_slice(src);
    }
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32(payload);
    if stored != computed {
        return Err(SerdeError::ChecksumMismatch {
            expected: stored,
            found: computed,
        });
    }
    Ok((found, payload))
}

/// Wraps a payload in the `DSSD` container: magic, version, length, payload,
/// CRC-32 trailer.
pub fn seal_container(payload: &[u8]) -> Vec<u8> {
    seal_frame(MAGIC, FORMAT_VERSION, payload)
}

/// Validates a `DSSD` container and returns its payload slice.
///
/// Checks, in order: magic bytes, format version, declared payload length
/// against the actual byte count, and the CRC-32 trailer.
pub fn open_container(bytes: &[u8]) -> Result<&[u8], SerdeError> {
    open_frame(MAGIC, FORMAT_VERSION, bytes)
}

/// Writes `bytes` to `path` crash-safely: the bytes land in a temporary
/// sibling file first (same directory, so the rename never crosses a
/// filesystem) and replace `path` in one atomic `rename`. A writer killed
/// at any instant leaves either the previous artifact intact or no
/// artifact at all — never a torn container that would fail its CRC on the
/// next load. The temporary name carries the process id, so concurrent
/// savers from different processes cannot tear each other's staging file;
/// last rename wins, each rename installs a complete container.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), SerdeError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| SerdeError::Io {
        what: format!("writing {}: {e}", tmp.display()),
    })?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Do not leave the staging file behind on failure.
            std::fs::remove_file(&tmp).ok();
            Err(SerdeError::Io {
                what: format!(
                    "renaming {} into place as {}: {e}",
                    tmp.display(),
                    path.display()
                ),
            })
        }
    }
}

/// Seals `payload` into a container and writes it to `path` via
/// [`atomic_write`]: a crash mid-save can never leave a torn container.
pub fn save_container(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), SerdeError> {
    atomic_write(path, &seal_container(payload))
}

/// Reads a container from `path`, validates it and returns the payload.
pub fn load_container(path: impl AsRef<Path>) -> Result<Vec<u8>, SerdeError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SerdeError::Io {
        what: format!("reading {}: {e}", path.display()),
    })?;
    open_container(&bytes).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_usize(42);
        w.put_bool(true);
        w.put_f32(-1.5);
        w.put_f64(std::f64::consts::PI);
        w.put_str("médicament");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert_eq!(r.take_u16("b").unwrap(), 513);
        assert_eq!(r.take_u32("c").unwrap(), 70_000);
        assert_eq!(r.take_u64("d").unwrap(), 1 << 40);
        assert_eq!(r.take_usize("e").unwrap(), 42);
        assert!(r.take_bool("f").unwrap());
        assert_eq!(r.take_f32("g").unwrap(), -1.5);
        assert_eq!(r.take_f64("h").unwrap(), std::f64::consts::PI);
        assert_eq!(r.take_str("i").unwrap(), "médicament");
        assert!(r.is_exhausted());
    }

    #[test]
    fn special_floats_round_trip_bit_exactly() {
        let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, f32::MIN];
        let mut w = ByteWriter::new();
        w.put_f32_slice(&specials);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.take_f32_vec("specials").unwrap();
        for (a, b) in specials.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matrix_and_param_set_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 / 7.0);
        let mut params = ParamSet::new();
        let w_id = params.add("layer.w", m.clone());
        let b_id = params.add("layer.b", Matrix::zeros(1, 5));

        let mut w = ByteWriter::new();
        w.put_matrix(&m);
        w.put_opt_matrix(None);
        w.put_opt_matrix(Some(&m));
        w.put_param_set(&params);
        w.put_param_id(b_id);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_matrix("m").unwrap(), m);
        assert_eq!(r.take_opt_matrix("none").unwrap(), None);
        assert_eq!(r.take_opt_matrix("some").unwrap(), Some(m.clone()));
        let restored = r.take_param_set("params").unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.name(w_id), "layer.w");
        assert_eq!(restored.get(w_id), &m);
        let restored_b = r.take_param_id(&restored, "b").unwrap();
        assert_eq!(restored_b, b_id);
    }

    #[test]
    fn truncated_reads_error_without_panic() {
        let mut w = ByteWriter::new();
        w.put_matrix(&Matrix::ones(4, 4));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.take_matrix("m").is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2); // claimed element count, no data behind it
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.take_f32_vec("huge"),
            Err(SerdeError::Truncated { .. }) | Err(SerdeError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_param_id_is_rejected() {
        let params = ParamSet::new();
        let mut w = ByteWriter::new();
        w.put_usize(3);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.take_param_id(&params, "id"),
            Err(SerdeError::Corrupt { .. })
        ));
    }

    #[test]
    fn container_round_trip_and_validation() {
        let payload = b"the parameter bytes";
        let sealed = seal_container(payload);
        assert_eq!(open_container(&sealed).unwrap(), payload);

        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(open_container(&bad), Err(SerdeError::BadMagic));

        // Unsupported version.
        let mut bad = sealed.clone();
        bad[4] = 99;
        assert!(matches!(
            open_container(&bad),
            Err(SerdeError::UnsupportedVersion { found: 99, .. })
        ));

        // Flipped payload byte -> checksum mismatch.
        let mut bad = sealed.clone();
        bad[15] ^= 0x01;
        assert!(matches!(
            open_container(&bad),
            Err(SerdeError::ChecksumMismatch { .. })
        ));

        // Truncation anywhere -> error, never panic.
        for cut in 0..sealed.len() {
            assert!(open_container(&sealed[..cut]).is_err(), "cut at {cut}");
        }

        // Trailing garbage is rejected.
        let mut bad = sealed.clone();
        bad.push(0);
        assert!(matches!(
            open_container(&bad),
            Err(SerdeError::Corrupt { .. })
        ));

        // A near-usize::MAX declared length must not overflow the
        // `declared + 4` bound check.
        let mut bad = sealed.clone();
        bad[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            open_container(&bad),
            Err(SerdeError::Corrupt { .. })
        ));
        let mut bad = sealed;
        bad[6..14].copy_from_slice(&(u64::MAX - 4).to_le_bytes());
        assert!(open_container(&bad).is_err());
    }

    #[test]
    fn generic_frames_are_isolated_by_magic_and_version() {
        let framed = seal_frame(*b"DSWP", 3, b"payload");
        assert_eq!(open_frame(*b"DSWP", 3, &framed).unwrap(), b"payload");
        // A frame sealed under one magic is not a container and vice versa.
        assert_eq!(
            open_frame(*b"DSWP", 3, &seal_container(b"payload")),
            Err(SerdeError::BadMagic)
        );
        assert_eq!(open_container(&framed), Err(SerdeError::BadMagic));
        // Same magic, different version: typed version mismatch.
        assert!(matches!(
            open_frame(*b"DSWP", 4, &framed),
            Err(SerdeError::UnsupportedVersion {
                found: 3,
                supported: 4
            })
        ));
        // Streaming header parse recovers the declared payload length.
        assert_eq!(
            parse_frame_header(*b"DSWP", 3, &framed[..FRAME_HEADER_LEN]).unwrap(),
            b"payload".len()
        );
    }

    #[test]
    fn multi_version_frames_report_the_found_version() {
        let v3 = seal_frame(*b"DSWP", 3, b"payload");
        let v4 = seal_frame(*b"DSWP", 4, b"payload");
        // Either supported version opens, reporting which one was found.
        assert_eq!(
            open_frame_versions(*b"DSWP", &[3, 4], &v3).unwrap(),
            (3, b"payload".as_slice())
        );
        assert_eq!(
            open_frame_versions(*b"DSWP", &[3, 4], &v4).unwrap(),
            (4, b"payload".as_slice())
        );
        // A version outside the set reports the highest supported one.
        assert!(matches!(
            open_frame_versions(*b"DSWP", &[3, 4], &seal_frame(*b"DSWP", 5, b"payload")),
            Err(SerdeError::UnsupportedVersion {
                found: 5,
                supported: 4
            })
        ));
        // The streaming header parse agrees with the whole-frame open.
        assert_eq!(
            parse_frame_header_versions(*b"DSWP", &[3, 4], &v4[..FRAME_HEADER_LEN]).unwrap(),
            (4, b"payload".len())
        );
        // Corruption is still caught after the version gate.
        let mut torn = v3;
        if let Some(byte) = torn.get_mut(FRAME_HEADER_LEN) {
            *byte ^= 0xFF;
        }
        assert!(matches!(
            open_frame_versions(*b"DSWP", &[3, 4], &torn),
            Err(SerdeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn save_and_load_container_round_trip() {
        let dir = std::env::temp_dir().join("dssddi-serde-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.dssd");
        save_container(&path, b"hello").unwrap();
        assert_eq!(load_container(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_container(dir.join("missing.dssd")),
            Err(SerdeError::Io { .. })
        ));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_staging_file() {
        let dir = std::env::temp_dir().join("dssddi-serde-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let staging = dir
            .read_dir()
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("atomic.bin.tmp"))
            .count();
        assert_eq!(staging, 0, "staging files must not survive a save");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn killed_writer_never_leaves_a_torn_container() {
        let dir = std::env::temp_dir().join("dssddi-serde-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crash.dssd");
        save_container(&path, b"old payload").unwrap();

        // A save dies only in the window where bytes are on disk but the
        // rename has not happened: simulate every possible cut point of
        // the staged write and check the live artifact is untouched.
        let staged = seal_container(b"new payload");
        let tmp = format!("{}.tmp.{}", path.display(), std::process::id());
        for cut in 0..staged.len() {
            std::fs::write(&tmp, &staged[..cut]).unwrap();
            assert_eq!(
                load_container(&path).unwrap(),
                b"old payload",
                "a dead writer (cut at byte {cut}) must leave the old artifact intact"
            );
        }
        // A later save succeeds despite the stale staging file.
        save_container(&path, b"new payload").unwrap();
        assert_eq!(load_container(&path).unwrap(), b"new payload");

        // First-ever save dying pre-rename: no artifact, typed error.
        let fresh = dir.join("never-written.dssd");
        let fresh_tmp = format!("{}.tmp.{}", fresh.display(), std::process::id());
        std::fs::write(&fresh_tmp, &staged[..4]).unwrap();
        assert!(matches!(load_container(&fresh), Err(SerdeError::Io { .. })));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(&fresh_tmp).ok();
    }
}
