//! Weight initialisation schemes.

use rand::Rng;

use crate::Matrix;

/// Glorot/Xavier uniform initialisation: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::rand_uniform(fan_in, fan_out, -a, a, rng)
}

/// Glorot/Xavier normal initialisation: entries drawn from
/// `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::rand_normal(fan_in, fan_out, 0.0, std, rng)
}

/// He/Kaiming uniform initialisation, suited to ReLU activations.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::rand_uniform(fan_in, fan_out, -a, a, rng)
}

/// Zero initialisation for biases.
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

/// One-hot identity features for `n` nodes (the "ID embedding" inputs used by
/// the DDI module of the paper).
pub fn one_hot_ids(n: usize) -> Matrix {
    Matrix::identity(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(64, 32, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn xavier_normal_has_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_normal(100, 100, &mut rng);
        let mean = w.mean();
        assert!(mean.abs() < 0.05, "mean too far from zero: {mean}");
        assert!(w.all_finite());
    }

    #[test]
    fn kaiming_uniform_is_bounded_by_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = kaiming_uniform(50, 10, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
    }

    #[test]
    fn one_hot_ids_is_identity() {
        let ids = one_hot_ids(4);
        assert_eq!(ids.shape(), (4, 4));
        assert_eq!(ids.get(2, 2), 1.0);
        assert_eq!(ids.get(2, 3), 0.0);
        assert_eq!(ids.sum(), 4.0);
    }
}
