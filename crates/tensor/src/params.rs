//! Model parameter storage and binding onto the autodiff tape.
//!
//! Parameters persist across training steps in a [`ParamSet`] (just named
//! matrices). Each forward pass binds the parameters it uses onto a fresh
//! [`Tape`](crate::Tape) through a [`Binder`], which also remembers the
//! `(ParamId, Var)` association so that after `backward()` the gradients can
//! be pulled out and handed to an optimizer.

use crate::{Matrix, Tape, TensorError, Var};

/// Identifier of a parameter inside a [`ParamSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

/// A named collection of trainable matrices.
#[derive(Default)]
pub struct ParamSet {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its identifier.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterator over all `(ParamId, &Matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.values.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Total number of scalar parameters across all matrices.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }
}

/// Records which tape variable each parameter was bound to during one
/// forward pass.
#[derive(Default)]
pub struct Binder {
    pairs: Vec<(ParamId, Var)>,
}

impl Binder {
    /// Creates an empty binder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the current value of `id` as a differentiable leaf on `tape`
    /// and remembers the association.
    pub fn bind(&mut self, tape: &mut Tape, params: &ParamSet, id: ParamId) -> Var {
        let var = tape.leaf(params.get(id).clone());
        self.pairs.push((id, var));
        var
    }

    /// Bound `(ParamId, Var)` associations.
    pub fn pairs(&self) -> &[(ParamId, Var)] {
        &self.pairs
    }

    /// Collects the gradients computed by the last `tape.backward()` call.
    ///
    /// Parameters that did not contribute to the loss get a zero gradient of
    /// the right shape, so optimizers can treat all parameters uniformly.
    pub fn grads(&self, tape: &Tape, params: &ParamSet) -> Vec<(ParamId, Matrix)> {
        self.pairs
            .iter()
            .map(|&(id, var)| {
                let grad = tape
                    .grad(var)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(params.get(id).rows(), params.get(id).cols()));
                (id, grad)
            })
            .collect()
    }

    /// Global L2 norm of all bound parameter gradients (for diagnostics and
    /// gradient clipping).
    pub fn grad_norm(&self, tape: &Tape) -> f32 {
        self.pairs
            .iter()
            .filter_map(|&(_, var)| tape.grad(var))
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

/// Clips each gradient so that the global L2 norm does not exceed `max_norm`.
pub fn clip_grad_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> Result<f32, TensorError> {
    if max_norm <= 0.0 {
        return Err(TensorError::InvalidArgument {
            what: "max_norm must be positive",
        });
    }
    let total: f32 = grads
        .iter()
        .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for (_, g) in grads.iter_mut() {
            g.map_inplace(|x| x * scale);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_registration_and_lookup() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::ones(2, 3));
        let b = params.add("b", Matrix::zeros(1, 3));
        assert_eq!(params.len(), 2);
        assert_eq!(params.name(w), "w");
        assert_eq!(params.get(b).shape(), (1, 3));
        assert_eq!(params.num_scalars(), 9);
    }

    #[test]
    fn binder_collects_gradients_and_zero_fills_unused() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        let unused = params.add("unused", Matrix::ones(2, 2));

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let wv = binder.bind(&mut tape, &params, w);
        let _uv = binder.bind(&mut tape, &params, unused);
        let loss = tape.sum_all(wv);
        tape.backward(loss).unwrap();

        let grads = binder.grads(&tape, &params);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].1.data(), &[1.0, 1.0]);
        assert_eq!(grads[1].1.sum(), 0.0);
        assert!(binder.grad_norm(&tape) > 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_large_gradients() {
        let mut grads = vec![(ParamId(0), Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap())];
        let norm = clip_grad_norm(&mut grads, 1.0).unwrap();
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = grads[0].1.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
        assert!(clip_grad_norm(&mut grads, 0.0).is_err());
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_untouched() {
        let mut grads = vec![(ParamId(0), Matrix::from_vec(1, 2, vec![0.3, 0.4]).unwrap())];
        clip_grad_norm(&mut grads, 10.0).unwrap();
        assert_eq!(grads[0].1.data(), &[0.3, 0.4]);
    }
}
