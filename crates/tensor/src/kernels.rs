//! Fused, allocation-free inference kernels.
//!
//! Training records every operation on the [`Tape`](crate::Tape) so that
//! gradients can flow backwards; inference needs none of that. The kernels
//! here compute whole MLP/GCN layers — `act(x · W + b)` — in a single pass
//! over the output buffer, writing into caller-provided scratch memory
//! (see [`crate::ScratchPool`]) instead of allocating per operation.
//!
//! Every kernel is *bit-compatible* with the taped formulation it replaces:
//! the matmul accumulates in the same `k`-ascending order as
//! [`Matrix::matmul`], the bias is added with the same single `f32`
//! addition as `Tape::add_broadcast_row`, and [`ActivationKind::apply`]
//! evaluates exactly the scalar functions the tape's activation ops map
//! over their inputs. A tape-free forward pass therefore produces the same
//! bits as the taped one — asserted by the equivalence tests in
//! `dssddi-gnn` and `dssddi-core`.

use crate::ops::stable_sigmoid;
use crate::{Matrix, TensorError};

/// A scalar activation function, mirroring the activation ops of the tape
/// (`Tape::relu`, `Tape::leaky_relu`, `Tape::tanh`, `Tape::sigmoid`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivationKind {
    /// Rectified linear unit `max(x, 0)`.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Numerically stable logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl ActivationKind {
    /// Applies the activation to one scalar — the exact per-element function
    /// the corresponding tape op maps over its input.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            ActivationKind::Relu => v.max(0.0),
            ActivationKind::LeakyRelu(slope) => {
                if v > 0.0 {
                    v
                } else {
                    slope * v
                }
            }
            ActivationKind::Tanh => v.tanh(),
            ActivationKind::Sigmoid => stable_sigmoid(v),
            ActivationKind::Identity => v,
        }
    }
}

/// One fused dense layer: `out = act(x · w + bias)`, written into a
/// caller-provided buffer. Like every `*_into` kernel, it takes its output
/// buffer as the first argument and fully overwrites it.
///
/// `bias` must be a `1 x w.cols()` row (the layout MLP and GCN layers store
/// their biases in); `out` must already have shape `(x.rows(), w.cols())`
/// and the kernel fully overwrites it. Fusing the bias addition and
/// activation into the matmul's output pass removes two full intermediate
/// matrices per layer compared to the taped
/// `matmul → add_broadcast_row → activation` chain, while producing
/// bit-identical values (see the module docs).
pub fn fused_linear_into(
    out: &mut Matrix,
    x: &Matrix,
    w: &Matrix,
    bias: &Matrix,
    activation: ActivationKind,
) -> Result<(), TensorError> {
    if bias.shape() != (1, w.cols()) {
        return Err(TensorError::ShapeMismatch {
            expected: (1, w.cols()),
            found: bias.shape(),
            op: "fused_linear (bias)",
        });
    }
    x.matmul_into(out, w)?;
    let b = bias.data();
    for r in 0..out.rows() {
        for (o, &bj) in out.row_mut(r).iter_mut().zip(b) {
            *o = activation.apply(*o + bj);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fused_linear_matches_unfused_sequence_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for act in [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu(0.01),
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
            ActivationKind::Identity,
        ] {
            let x = Matrix::rand_uniform(7, 5, -2.0, 2.0, &mut rng);
            let w = Matrix::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
            let bias = Matrix::rand_uniform(1, 3, -0.5, 0.5, &mut rng);

            let mut fused = Matrix::zeros(7, 3);
            fused_linear_into(&mut fused, &x, &w, &bias, act).unwrap();

            let mut unfused = x.matmul(&w).unwrap();
            for r in 0..unfused.rows() {
                for c in 0..unfused.cols() {
                    let v = unfused.get(r, c) + bias.get(0, c);
                    unfused.set(r, c, act.apply(v));
                }
            }
            assert_eq!(fused, unfused);
        }
    }

    #[test]
    fn fused_linear_validates_shapes() {
        let x = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        let bad_bias = Matrix::zeros(1, 3);
        let mut out = Matrix::zeros(2, 4);
        assert!(fused_linear_into(&mut out, &x, &w, &bad_bias, ActivationKind::Identity).is_err());
        let bias = Matrix::zeros(1, 4);
        let mut bad_out = Matrix::zeros(2, 3);
        assert!(fused_linear_into(&mut bad_out, &x, &w, &bias, ActivationKind::Identity).is_err());
        assert!(fused_linear_into(&mut out, &x, &w, &bias, ActivationKind::Identity).is_ok());
    }
}
