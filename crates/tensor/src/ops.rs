//! Differentiable operations recorded on the [`Tape`](crate::Tape).
//!
//! Every operation has a forward constructor (a method on `Tape` that pushes
//! a node and returns a [`Var`](crate::Var)) and a backward rule implemented
//! in [`Tape::backward_contributions`]. The set of operations is exactly
//! what the DSSDDI models need: dense linear algebra, element-wise
//! non-linearities, sparse propagation over graphs, edge-weighted
//! aggregation with a segment softmax (for the attention backbones), and
//! fused, numerically stable losses.

use std::rc::Rc;

use crate::tape::Tape;
use crate::{CsrMatrix, Matrix, TensorError, Var};

/// The operation that produced a tape node, together with its inputs
/// (referenced by node index).
#[derive(Clone)]
#[allow(dead_code)] // some stored scalars (e.g. AddScalar's constant) are only used in forward
pub(crate) enum Op {
    /// A differentiable input (parameter) with no producer.
    Leaf,
    /// A non-differentiable input (data); gradients are not propagated into it.
    Constant,
    /// Element-wise `a + b`.
    Add(usize, usize),
    /// `x + bias` where `bias` is a `1 x d` row broadcast over the rows of `x`.
    AddBroadcastRow(usize, usize),
    /// `x ⊙ gamma` where `gamma` is a `1 x d` row broadcast over the rows of `x`.
    MulBroadcastRow(usize, usize),
    /// Element-wise `a - b`.
    Sub(usize, usize),
    /// Element-wise (Hadamard) `a ⊙ b`.
    Mul(usize, usize),
    /// Dense matrix product `a · b`.
    MatMul(usize, usize),
    /// `x * s` for a constant scalar `s`.
    Scale(usize, f32),
    /// `x + s` for a constant scalar `s`.
    AddScalar(usize, f32),
    /// `x * s` where `s` is a `1 x 1` tape variable (e.g. GIN's `1 + ε`).
    MulScalarVar(usize, usize),
    /// Rectified linear unit.
    Relu(usize),
    /// Leaky rectified linear unit with the given negative slope.
    LeakyRelu(usize, f32),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Horizontal concatenation `[a, b]`.
    ConcatCols(usize, usize),
    /// Sum of all entries, producing a `1 x 1` matrix.
    SumAll(usize),
    /// Mean of all entries, producing a `1 x 1` matrix.
    MeanAll(usize),
    /// Row-wise sum, producing an `n x 1` matrix.
    SumCols(usize),
    /// Gathers rows of `x` by index (rows may repeat).
    SelectRows(usize, Rc<Vec<usize>>),
    /// Sparse–dense product `A · x` with a constant CSR matrix `A`.
    Spmm(Rc<CsrMatrix>, usize),
    /// Edge-weighted aggregation: `out[dst] += w_e · x[src]` for each edge.
    SpmmEdgeWeighted {
        edges: Rc<Vec<(usize, usize)>>,
        weights: usize,
        x: usize,
        n_out: usize,
    },
    /// Softmax of edge logits grouped by destination segment.
    SegmentSoftmax {
        logits: usize,
        segments: Rc<Vec<usize>>,
    },
    /// Per-column standardisation `(x - μ) / sqrt(σ² + eps)`.
    StandardizeCols { x: usize, eps: f32 },
    /// Mean squared error against a constant target.
    MseLoss { pred: usize, target: Rc<Matrix> },
    /// Numerically stable binary cross-entropy on logits against constant targets.
    BceWithLogits { logits: usize, targets: Rc<Matrix> },
}

impl Tape {
    /// Element-wise sum of two same-shape variables.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var, TensorError> {
        let value = self.value(a).add(self.value(b))?;
        Ok(self.push(value, Op::Add(a.0, b.0)))
    }

    /// Adds a `1 x d` bias row to every row of `x`.
    pub fn add_broadcast_row(&mut self, x: Var, bias: Var) -> Result<Var, TensorError> {
        let xv = self.value(x);
        let bv = self.value(bias);
        if bv.rows() != 1 || bv.cols() != xv.cols() {
            return Err(TensorError::ShapeMismatch {
                expected: (1, xv.cols()),
                found: bv.shape(),
                op: "add_broadcast_row",
            });
        }
        let mut out = xv.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.add_at(r, c, bv.get(0, c));
            }
        }
        Ok(self.push(out, Op::AddBroadcastRow(x.0, bias.0)))
    }

    /// Multiplies every row of `x` element-wise by a `1 x d` row `gamma`.
    pub fn mul_broadcast_row(&mut self, x: Var, gamma: Var) -> Result<Var, TensorError> {
        let xv = self.value(x);
        let gv = self.value(gamma);
        if gv.rows() != 1 || gv.cols() != xv.cols() {
            return Err(TensorError::ShapeMismatch {
                expected: (1, xv.cols()),
                found: gv.shape(),
                op: "mul_broadcast_row",
            });
        }
        let mut out = xv.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.set(r, c, out.get(r, c) * gv.get(0, c));
            }
        }
        Ok(self.push(out, Op::MulBroadcastRow(x.0, gamma.0)))
    }

    /// Element-wise difference of two same-shape variables.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var, TensorError> {
        let value = self.value(a).sub(self.value(b))?;
        Ok(self.push(value, Op::Sub(a.0, b.0)))
    }

    /// Element-wise (Hadamard) product of two same-shape variables.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var, TensorError> {
        let value = self.value(a).hadamard(self.value(b))?;
        Ok(self.push(value, Op::Mul(a.0, b.0)))
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var, TensorError> {
        let value = self.value(a).matmul(self.value(b))?;
        Ok(self.push(value, Op::MatMul(a.0, b.0)))
    }

    /// Multiplies a variable by a constant scalar.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let value = self.value(x).scale(s);
        self.push(value, Op::Scale(x.0, s))
    }

    /// Adds a constant scalar to every entry.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let value = self.value(x).map(|v| v + s);
        self.push(value, Op::AddScalar(x.0, s))
    }

    /// Multiplies `x` by a learnable `1 x 1` scalar variable.
    pub fn mul_scalar_var(&mut self, x: Var, s: Var) -> Result<Var, TensorError> {
        let sv = self.value(s);
        if sv.shape() != (1, 1) {
            return Err(TensorError::ShapeMismatch {
                expected: (1, 1),
                found: sv.shape(),
                op: "mul_scalar_var",
            });
        }
        let scalar = sv.get(0, 0);
        let value = self.value(x).scale(scalar);
        Ok(self.push(value, Op::MulScalarVar(x.0, s.0)))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        self.push(value, Op::Relu(x.0))
    }

    /// Leaky rectified linear unit.
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let value = self.value(x).map(|v| if v > 0.0 { v } else { slope * v });
        self.push(value, Op::LeakyRelu(x.0, slope))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.value(x).map(stable_sigmoid);
        self.push(value, Op::Sigmoid(x.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        self.push(value, Op::Tanh(x.0))
    }

    /// Horizontal concatenation of two variables with the same row count.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Result<Var, TensorError> {
        let value = self.value(a).concat_cols(self.value(b))?;
        Ok(self.push(value, Op::ConcatCols(a.0, b.0)))
    }

    /// Sum of all entries as a `1 x 1` variable.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(x).sum());
        self.push(value, Op::SumAll(x.0))
    }

    /// Mean of all entries as a `1 x 1` variable.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(x).mean());
        self.push(value, Op::MeanAll(x.0))
    }

    /// Row-wise sum as an `n x 1` variable.
    pub fn sum_cols(&mut self, x: Var) -> Var {
        let value = self.value(x).sum_cols();
        self.push(value, Op::SumCols(x.0))
    }

    /// Gathers the rows of `x` named by `indices` (repeats allowed).
    pub fn select_rows(&mut self, x: Var, indices: &[usize]) -> Result<Var, TensorError> {
        let xv = self.value(x);
        for &i in indices {
            if i >= xv.rows() {
                return Err(TensorError::IndexOutOfBounds {
                    index: (i, 0),
                    shape: xv.shape(),
                });
            }
        }
        let value = xv.select_rows(indices);
        Ok(self.push(value, Op::SelectRows(x.0, Rc::new(indices.to_vec()))))
    }

    /// Sparse–dense product `A · x` with a constant adjacency `A`.
    pub fn spmm(&mut self, a: &Rc<CsrMatrix>, x: Var) -> Result<Var, TensorError> {
        let value = a.matmul_dense(self.value(x))?;
        Ok(self.push(value, Op::Spmm(Rc::clone(a), x.0)))
    }

    /// Edge-weighted aggregation `out[dst] += w_e · x[src]` over a fixed edge
    /// list. `weights` must be an `E x 1` variable aligned with `edges`.
    pub fn spmm_edge_weighted(
        &mut self,
        edges: &Rc<Vec<(usize, usize)>>,
        weights: Var,
        x: Var,
        n_out: usize,
    ) -> Result<Var, TensorError> {
        let wv = self.value(weights);
        let xv = self.value(x);
        if wv.shape() != (edges.len(), 1) {
            return Err(TensorError::ShapeMismatch {
                expected: (edges.len(), 1),
                found: wv.shape(),
                op: "spmm_edge_weighted",
            });
        }
        for &(src, dst) in edges.iter() {
            if src >= xv.rows() || dst >= n_out {
                return Err(TensorError::IndexOutOfBounds {
                    index: (src, dst),
                    shape: (xv.rows(), n_out),
                });
            }
        }
        let mut out = Matrix::zeros(n_out, xv.cols());
        for (e, &(src, dst)) in edges.iter().enumerate() {
            let w = wv.get(e, 0);
            for c in 0..xv.cols() {
                out.add_at(dst, c, w * xv.get(src, c));
            }
        }
        Ok(self.push(
            out,
            Op::SpmmEdgeWeighted {
                edges: Rc::clone(edges),
                weights: weights.0,
                x: x.0,
                n_out,
            },
        ))
    }

    /// Softmax over edge logits grouped by segment (typically the edge's
    /// destination node), producing normalised attention coefficients.
    pub fn segment_softmax(
        &mut self,
        logits: Var,
        segments: &Rc<Vec<usize>>,
    ) -> Result<Var, TensorError> {
        let lv = self.value(logits);
        if lv.shape() != (segments.len(), 1) {
            return Err(TensorError::ShapeMismatch {
                expected: (segments.len(), 1),
                found: lv.shape(),
                op: "segment_softmax",
            });
        }
        let n_seg = segments.iter().copied().max().map_or(0, |m| m + 1);
        let mut max_per_seg = vec![f32::NEG_INFINITY; n_seg];
        for (e, &s) in segments.iter().enumerate() {
            max_per_seg[s] = max_per_seg[s].max(lv.get(e, 0));
        }
        let mut sum_per_seg = vec![0.0f32; n_seg];
        let mut exps = vec![0.0f32; segments.len()];
        for (e, &s) in segments.iter().enumerate() {
            let x = (lv.get(e, 0) - max_per_seg[s]).exp();
            exps[e] = x;
            sum_per_seg[s] += x;
        }
        let mut out = Matrix::zeros(segments.len(), 1);
        for (e, &s) in segments.iter().enumerate() {
            out.set(e, 0, exps[e] / sum_per_seg[s].max(f32::MIN_POSITIVE));
        }
        Ok(self.push(
            out,
            Op::SegmentSoftmax {
                logits: logits.0,
                segments: Rc::clone(segments),
            },
        ))
    }

    /// Per-column standardisation (zero mean, unit variance), the
    /// normalisation step of a batch-norm layer.
    pub fn standardize_cols(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let (n, d) = xv.shape();
        let mut out = Matrix::zeros(n, d);
        for c in 0..d {
            let mut mean = 0.0f32;
            for r in 0..n {
                mean += xv.get(r, c);
            }
            mean /= n.max(1) as f32;
            let mut var = 0.0f32;
            for r in 0..n {
                let diff = xv.get(r, c) - mean;
                var += diff * diff;
            }
            var /= n.max(1) as f32;
            let std = (var + eps).sqrt();
            for r in 0..n {
                out.set(r, c, (xv.get(r, c) - mean) / std);
            }
        }
        self.push(out, Op::StandardizeCols { x: x.0, eps })
    }

    /// Mean squared error between a prediction variable and a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Result<Var, TensorError> {
        let pv = self.value(pred);
        if pv.shape() != target.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: pv.shape(),
                found: target.shape(),
                op: "mse_loss",
            });
        }
        let diff = pv.sub(target)?;
        let loss = diff.hadamard(&diff)?.mean();
        Ok(self.push(
            Matrix::full(1, 1, loss),
            Op::MseLoss {
                pred: pred.0,
                target: Rc::new(target.clone()),
            },
        ))
    }

    /// Numerically stable binary cross-entropy with logits against constant
    /// `{0, 1}` targets, averaged over all entries.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &Matrix) -> Result<Var, TensorError> {
        let lv = self.value(logits);
        if lv.shape() != targets.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: lv.shape(),
                found: targets.shape(),
                op: "bce_with_logits",
            });
        }
        let mut total = 0.0f32;
        for (z, y) in lv.data().iter().zip(targets.data().iter()) {
            total += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        }
        let loss = total / lv.len().max(1) as f32;
        Ok(self.push(
            Matrix::full(1, 1, loss),
            Op::BceWithLogits {
                logits: logits.0,
                targets: Rc::new(targets.clone()),
            },
        ))
    }

    /// Computes the gradient contributions of a single node to its inputs.
    ///
    /// Returns `(input_node_index, contribution)` pairs; the backward driver
    /// accumulates them. `grad` is the upstream gradient and `out` the value
    /// produced in the forward pass.
    pub(crate) fn backward_contributions(
        &self,
        op: &Op,
        grad: &Matrix,
        out: &Matrix,
    ) -> Result<Vec<(usize, Matrix)>, TensorError> {
        let val = |i: usize| self.node_value(i);
        let mut contributions = Vec::new();
        match op {
            Op::Leaf | Op::Constant => {}
            Op::Add(a, b) => {
                contributions.push((*a, grad.clone()));
                contributions.push((*b, grad.clone()));
            }
            Op::AddBroadcastRow(x, bias) => {
                contributions.push((*x, grad.clone()));
                contributions.push((*bias, grad.sum_rows()));
            }
            Op::MulBroadcastRow(x, gamma) => {
                let xv = self.node_value(*x);
                let gv = self.node_value(*gamma);
                let mut dx = grad.clone();
                for r in 0..dx.rows() {
                    for c in 0..dx.cols() {
                        dx.set(r, c, dx.get(r, c) * gv.get(0, c));
                    }
                }
                let mut dgamma = Matrix::zeros(1, gv.cols());
                for r in 0..grad.rows() {
                    for c in 0..grad.cols() {
                        dgamma.add_at(0, c, grad.get(r, c) * xv.get(r, c));
                    }
                }
                contributions.push((*x, dx));
                contributions.push((*gamma, dgamma));
            }
            Op::Sub(a, b) => {
                contributions.push((*a, grad.clone()));
                contributions.push((*b, grad.scale(-1.0)));
            }
            Op::Mul(a, b) => {
                contributions.push((*a, grad.hadamard(val(*b))?));
                contributions.push((*b, grad.hadamard(val(*a))?));
            }
            Op::MatMul(a, b) => {
                contributions.push((*a, grad.matmul(&self.node_value(*b).transpose())?));
                contributions.push((*b, self.node_value(*a).transpose().matmul(grad)?));
            }
            Op::Scale(x, s) => contributions.push((*x, grad.scale(*s))),
            Op::AddScalar(x, _) => contributions.push((*x, grad.clone())),
            Op::MulScalarVar(x, s) => {
                let scalar = self.node_value(*s).get(0, 0);
                contributions.push((*x, grad.scale(scalar)));
                let ds = grad.hadamard(val(*x))?.sum();
                contributions.push((*s, Matrix::full(1, 1, ds)));
            }
            Op::Relu(x) => {
                let xv = self.node_value(*x);
                let mask = xv.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                contributions.push((*x, grad.hadamard(&mask)?));
            }
            Op::LeakyRelu(x, slope) => {
                let xv = self.node_value(*x);
                let mask = xv.map(|v| if v > 0.0 { 1.0 } else { *slope });
                contributions.push((*x, grad.hadamard(&mask)?));
            }
            Op::Sigmoid(x) => {
                let d = out.map(|o| o * (1.0 - o));
                contributions.push((*x, grad.hadamard(&d)?));
            }
            Op::Tanh(x) => {
                let d = out.map(|o| 1.0 - o * o);
                contributions.push((*x, grad.hadamard(&d)?));
            }
            Op::ConcatCols(a, b) => {
                let a_cols = self.node_value(*a).cols();
                let (rows, total) = grad.shape();
                let mut da = Matrix::zeros(rows, a_cols);
                let mut db = Matrix::zeros(rows, total - a_cols);
                for r in 0..rows {
                    da.row_mut(r).copy_from_slice(&grad.row(r)[..a_cols]);
                    db.row_mut(r).copy_from_slice(&grad.row(r)[a_cols..]);
                }
                contributions.push((*a, da));
                contributions.push((*b, db));
            }
            Op::SumAll(x) => {
                let g = grad.get(0, 0);
                let shape = self.node_value(*x).shape();
                contributions.push((*x, Matrix::full(shape.0, shape.1, g)));
            }
            Op::MeanAll(x) => {
                let shape = self.node_value(*x).shape();
                let n = (shape.0 * shape.1).max(1) as f32;
                let g = grad.get(0, 0) / n;
                contributions.push((*x, Matrix::full(shape.0, shape.1, g)));
            }
            Op::SumCols(x) => {
                let shape = self.node_value(*x).shape();
                let mut dx = Matrix::zeros(shape.0, shape.1);
                for r in 0..shape.0 {
                    let g = grad.get(r, 0);
                    for c in 0..shape.1 {
                        dx.set(r, c, g);
                    }
                }
                contributions.push((*x, dx));
            }
            Op::SelectRows(x, indices) => {
                let shape = self.node_value(*x).shape();
                let mut dx = Matrix::zeros(shape.0, shape.1);
                for (out_row, &src_row) in indices.iter().enumerate() {
                    for c in 0..shape.1 {
                        dx.add_at(src_row, c, grad.get(out_row, c));
                    }
                }
                contributions.push((*x, dx));
            }
            Op::Spmm(a, x) => {
                contributions.push((*x, a.transpose_matmul_dense(grad)?));
            }
            Op::SpmmEdgeWeighted {
                edges,
                weights,
                x,
                n_out: _,
            } => {
                let wv = self.node_value(*weights);
                let xv = self.node_value(*x);
                let mut dw = Matrix::zeros(edges.len(), 1);
                let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                for (e, &(src, dst)) in edges.iter().enumerate() {
                    let w = wv.get(e, 0);
                    let mut dot = 0.0f32;
                    for c in 0..xv.cols() {
                        let g = grad.get(dst, c);
                        dot += g * xv.get(src, c);
                        dx.add_at(src, c, w * g);
                    }
                    dw.set(e, 0, dot);
                }
                contributions.push((*weights, dw));
                contributions.push((*x, dx));
            }
            Op::SegmentSoftmax { logits, segments } => {
                // d l_e = out_e * (g_e - sum_{e' in seg(e)} g_{e'} out_{e'})
                let n_seg = segments.iter().copied().max().map_or(0, |m| m + 1);
                let mut seg_dot = vec![0.0f32; n_seg];
                for (e, &s) in segments.iter().enumerate() {
                    seg_dot[s] += grad.get(e, 0) * out.get(e, 0);
                }
                let mut dl = Matrix::zeros(segments.len(), 1);
                for (e, &s) in segments.iter().enumerate() {
                    dl.set(e, 0, out.get(e, 0) * (grad.get(e, 0) - seg_dot[s]));
                }
                contributions.push((*logits, dl));
            }
            Op::StandardizeCols { x, eps } => {
                let xv = self.node_value(*x);
                let (n, d) = xv.shape();
                let nf = n.max(1) as f32;
                let mut dx = Matrix::zeros(n, d);
                for c in 0..d {
                    let mut mean = 0.0f32;
                    for r in 0..n {
                        mean += xv.get(r, c);
                    }
                    mean /= nf;
                    let mut var = 0.0f32;
                    for r in 0..n {
                        let diff = xv.get(r, c) - mean;
                        var += diff * diff;
                    }
                    var /= nf;
                    let std = (var + eps).sqrt();
                    let mut g_mean = 0.0f32;
                    let mut gy_mean = 0.0f32;
                    for r in 0..n {
                        g_mean += grad.get(r, c);
                        gy_mean += grad.get(r, c) * out.get(r, c);
                    }
                    g_mean /= nf;
                    gy_mean /= nf;
                    for r in 0..n {
                        let v = (grad.get(r, c) - g_mean - out.get(r, c) * gy_mean) / std;
                        dx.set(r, c, v);
                    }
                }
                contributions.push((*x, dx));
            }
            Op::MseLoss { pred, target } => {
                let pv = self.node_value(*pred);
                let n = pv.len().max(1) as f32;
                let scale = grad.get(0, 0) * 2.0 / n;
                let dpred = pv.sub(target)?.scale(scale);
                contributions.push((*pred, dpred));
            }
            Op::BceWithLogits { logits, targets } => {
                let lv = self.node_value(*logits);
                let n = lv.len().max(1) as f32;
                let scale = grad.get(0, 0) / n;
                let mut dl = Matrix::zeros(lv.rows(), lv.cols());
                for r in 0..lv.rows() {
                    for c in 0..lv.cols() {
                        let z = lv.get(r, c);
                        let y = targets.get(r, c);
                        dl.set(r, c, scale * (stable_sigmoid(z) - y));
                    }
                }
                contributions.push((*logits, dl));
            }
        }
        Ok(contributions)
    }
}

/// Overflow-safe logistic sigmoid.
pub fn stable_sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999);
        assert!(stable_sigmoid(-100.0) < 1e-3);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(stable_sigmoid(1000.0).is_finite());
        assert!(stable_sigmoid(-1000.0).is_finite());
    }
}
