//! # dssddi-tensor
//!
//! Dense linear algebra, sparse adjacency products and a tape-based
//! reverse-mode automatic differentiation engine — the numerical substrate
//! on which the DSSDDI reproduction trains its graph neural networks.
//!
//! The crate replaces the role PyTorch plays in the original paper. It is a
//! deliberately small, CPU-only `f32` engine: the paper's models operate on
//! 86 drugs and a few thousand patients with hidden dimension 64, so a
//! straightforward dense implementation reproduces the training dynamics.
//!
//! ## Quick tour
//!
//! ```
//! use dssddi_tensor::{Adam, Binder, Matrix, Optimizer, ParamSet, Tape};
//! use rand::SeedableRng;
//!
//! // A one-layer logistic regression trained with Adam.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let x = Matrix::rand_uniform(8, 3, -1.0, 1.0, &mut rng);
//! let y = Matrix::from_fn(8, 1, |r, _| if x.get(r, 0) > 0.0 { 1.0 } else { 0.0 });
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", dssddi_tensor::init::xavier_uniform(3, 1, &mut rng));
//! let mut opt = Adam::new(0.05);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let mut binder = Binder::new();
//!     let xv = tape.constant(x.clone());
//!     let wv = binder.bind(&mut tape, &params, w);
//!     let logits = tape.matmul(xv, wv).unwrap();
//!     let loss = tape.bce_with_logits(logits, &y).unwrap();
//!     tape.backward(loss).unwrap();
//!     let grads = binder.grads(&tape, &params);
//!     opt.step(&mut params, &grads).unwrap();
//! }
//! ```

#![warn(missing_docs)]

pub mod init;
mod kernels;
mod matrix;
mod ops;
mod optim;
mod params;
mod scratch;
pub mod serde;
mod sparse;
mod tape;

pub use kernels::{fused_linear_into, ActivationKind};
pub use matrix::Matrix;
pub use ops::stable_sigmoid;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{clip_grad_norm, Binder, ParamId, ParamSet};
pub use scratch::ScratchPool;
pub use sparse::CsrMatrix;
pub use tape::{Tape, Var};

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands (or an operand and a declared shape) disagree.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: (usize, usize),
        /// Shape that was actually provided.
        found: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index lies outside the matrix shape.
    IndexOutOfBounds {
        /// Offending `(row, col)` index.
        index: (usize, usize),
        /// Shape of the indexed matrix.
        shape: (usize, usize),
    },
    /// A scalar argument was invalid (e.g. non-positive clip norm).
    InvalidArgument {
        /// Description of the invalid argument.
        what: &'static str,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                found,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for shape {}x{}",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}
