//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Tape`] records every differentiable operation of one forward pass as
//! a node holding its value and its producing operation. Calling
//! [`Tape::backward`] seeds the loss gradient and walks the tape in reverse
//! topological (i.e. insertion) order, accumulating gradients into every
//! node that `requires_grad`. Model parameters live outside the tape in a
//! [`ParamSet`](crate::ParamSet) and are re-inserted as leaves on every
//! training step, exactly like a define-by-run framework.

use std::rc::Rc;

use crate::ops::Op;
use crate::{Matrix, TensorError};

/// Handle to a node on the [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    // Values are reference-counted so that (a) large constant inputs can be
    // shared onto many tapes without copying (`Tape::constant_shared` — one
    // feature matrix serves every training epoch) and (b) the backward pass
    // can hold a node's output while mutating the node table without
    // cloning the matrix.
    value: Rc<Matrix>,
    grad: Option<Matrix>,
    op: Op,
    requires_grad: bool,
}

/// A single-pass computation graph with reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a differentiable leaf (typically a model parameter).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push_with_grad(value, Op::Leaf, true)
    }

    /// Inserts a non-differentiable constant (input data).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push_with_grad(value, Op::Constant, false)
    }

    /// Inserts a non-differentiable constant without copying it: the tape
    /// shares the caller's reference-counted matrix. Training loops that
    /// re-feed the same features every epoch (and would otherwise clone a
    /// full feature matrix per step) should build the `Rc` once and pass
    /// clones of it here.
    pub fn constant_shared(&mut self, value: Rc<Matrix>) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op: Op::Constant,
            requires_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Value held by a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Value held by a node index (internal).
    pub(crate) fn node_value(&self, i: usize) -> &Matrix {
        &self.nodes[i].value
    }

    /// Gradient accumulated for a variable by the last [`Tape::backward`]
    /// call, if any.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Records a node whose `requires_grad` flag is inherited from its inputs.
    pub(crate) fn push(&mut self, value: Matrix, op: Op) -> Var {
        let requires = self.op_requires_grad(&op);
        self.push_with_grad(value, op, requires)
    }

    fn push_with_grad(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value: Rc::new(value),
            grad: None,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn op_requires_grad(&self, op: &Op) -> bool {
        self.op_inputs(op)
            .iter()
            .any(|&i| self.nodes[i].requires_grad)
    }

    fn op_inputs(&self, op: &Op) -> Vec<usize> {
        match op {
            Op::Leaf | Op::Constant => vec![],
            Op::Add(a, b)
            | Op::AddBroadcastRow(a, b)
            | Op::MulBroadcastRow(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::MatMul(a, b)
            | Op::MulScalarVar(a, b)
            | Op::ConcatCols(a, b) => vec![*a, *b],
            Op::Scale(x, _)
            | Op::AddScalar(x, _)
            | Op::Relu(x)
            | Op::LeakyRelu(x, _)
            | Op::Sigmoid(x)
            | Op::Tanh(x)
            | Op::SumAll(x)
            | Op::MeanAll(x)
            | Op::SumCols(x)
            | Op::SelectRows(x, _)
            | Op::Spmm(_, x)
            | Op::StandardizeCols { x, .. } => vec![*x],
            Op::SpmmEdgeWeighted { weights, x, .. } => vec![*weights, *x],
            Op::SegmentSoftmax { logits, .. } => vec![*logits],
            Op::MseLoss { pred, .. } => vec![*pred],
            Op::BceWithLogits { logits, .. } => vec![*logits],
        }
    }

    /// Runs reverse-mode differentiation from `loss`, which must hold a
    /// `1 x 1` value. Gradients of all contributing nodes become available
    /// through [`Tape::grad`].
    pub fn backward(&mut self, loss: Var) -> Result<(), TensorError> {
        let loss_shape = self.nodes[loss.0].value.shape();
        if loss_shape != (1, 1) {
            return Err(TensorError::ShapeMismatch {
                expected: (1, 1),
                found: loss_shape,
                op: "backward (loss must be scalar)",
            });
        }
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::ones(1, 1));

        for id in (0..=loss.0).rev() {
            let (op, grad, out) = {
                let node = &self.nodes[id];
                if !node.requires_grad {
                    continue;
                }
                match &node.grad {
                    None => continue,
                    // Cloning the Rc keeps the node's output alive across the
                    // mutable gradient updates below without copying it.
                    Some(g) => (node.op.clone(), g.clone(), Rc::clone(&node.value)),
                }
            };
            let contributions = self.backward_contributions(&op, &grad, &out)?;
            for (input, contribution) in contributions {
                if !self.nodes[input].requires_grad {
                    continue;
                }
                let slot = &mut self.nodes[input].grad;
                match slot {
                    Some(existing) => existing.add_assign(&contribution)?,
                    None => *slot = Some(contribution),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_nodes_do_not_receive_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        let c = tape.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap());
        let y = tape.mul(x, c).unwrap();
        let loss = tape.sum_all(y);
        tape.backward(loss).unwrap();
        assert!(tape.grad(c).is_none());
        assert_eq!(tape.grad(x).unwrap().data(), &[3.0, 4.0]);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        assert!(tape.backward(x).is_err());
    }

    #[test]
    fn chain_rule_through_matmul_and_sigmoid() {
        // f(W) = sum(sigmoid(x W)); check against hand-derived gradient.
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap());
        let w = tape.leaf(Matrix::from_vec(2, 1, vec![0.5, 0.25]).unwrap());
        let z = tape.matmul(x, w).unwrap();
        let s = tape.sigmoid(z);
        let loss = tape.sum_all(s);
        tape.backward(loss).unwrap();
        // x = [1, -1] against W = [0.5, 0.25]^T.
        let zval = 0.5 - 0.25;
        let sig = 1.0 / (1.0 + (-zval as f32).exp());
        let expected = [sig * (1.0 - sig), -(sig * (1.0 - sig))];
        let grad = tape.grad(w).unwrap();
        assert!((grad.get(0, 0) - expected[0]).abs() < 1e-5);
        assert!((grad.get(1, 0) - expected[1]).abs() < 1e-5);
    }

    #[test]
    fn gradients_accumulate_over_reused_variables() {
        // y = x ⊙ x; dy/dx = 2x via two contributions through Mul.
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]).unwrap());
        let y = tape.mul(x, x).unwrap();
        let loss = tape.sum_all(y);
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn second_backward_resets_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 1, vec![2.0]).unwrap());
        let y = tape.scale(x, 3.0);
        let loss = tape.sum_all(y);
        tape.backward(loss).unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().get(0, 0), 3.0);
    }
}
