//! First-order optimizers (SGD and Adam).
//!
//! The paper trains MDGCN and DDIGCN with Adam (learning rates 0.01 and
//! 0.001 respectively); SGD is provided for the classical baselines and for
//! tests that need a closed-form-checkable update.

use std::collections::HashMap;

use crate::{Matrix, ParamId, ParamSet, TensorError};

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step given `(parameter, gradient)` pairs.
    fn step(
        &mut self,
        params: &mut ParamSet,
        grads: &[(ParamId, Matrix)],
    ) -> Result<(), TensorError>;

    /// Learning rate currently in use.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(
        &mut self,
        params: &mut ParamSet,
        grads: &[(ParamId, Matrix)],
    ) -> Result<(), TensorError> {
        for (id, grad) in grads {
            let value = params.get_mut(*id);
            if value.shape() != grad.shape() {
                return Err(TensorError::ShapeMismatch {
                    expected: value.shape(),
                    found: grad.shape(),
                    op: "Sgd::step",
                });
            }
            for (w, g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
                *w -= self.lr * (g + self.weight_decay * *w);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2014), the optimizer used throughout the
/// paper's experiments.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    first_moment: HashMap<ParamId, Matrix>,
    second_moment: HashMap<ParamId, Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard hyperparameters
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Overrides the momentum coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(
        &mut self,
        params: &mut ParamSet,
        grads: &[(ParamId, Matrix)],
    ) -> Result<(), TensorError> {
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (id, grad) in grads {
            let value = params.get_mut(*id);
            if value.shape() != grad.shape() {
                return Err(TensorError::ShapeMismatch {
                    expected: value.shape(),
                    found: grad.shape(),
                    op: "Adam::step",
                });
            }
            let m = self
                .first_moment
                .entry(*id)
                .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            let v = self
                .second_moment
                .entry(*id)
                .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            for i in 0..grad.len() {
                let g = grad.data()[i] + self.weight_decay * value.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Binder, Tape};

    fn quadratic_step(opt: &mut dyn Optimizer, params: &mut ParamSet, w: ParamId) -> f32 {
        // loss = sum(w ⊙ w), minimum at w = 0.
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let wv = binder.bind(&mut tape, params, w);
        let sq = tape.mul(wv, wv).unwrap();
        let loss = tape.sum_all(sq);
        tape.backward(loss).unwrap();
        let grads = binder.grads(&tape, params);
        opt.step(params, &grads).unwrap();
        tape.value(loss).get(0, 0)
    }

    #[test]
    fn sgd_matches_hand_computed_update() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_vec(1, 1, vec![2.0]).unwrap());
        let mut opt = Sgd::new(0.1);
        quadratic_step(&mut opt, &mut params, w);
        // grad = 2*2 = 4, update = 2 - 0.1*4 = 1.6
        assert!((params.get(w).get(0, 0) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn sgd_weight_decay_shrinks_parameters_without_gradient() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_vec(1, 1, vec![1.0]).unwrap());
        let mut opt = Sgd::new(0.5).with_weight_decay(0.1);
        opt.step(&mut params, &[(w, Matrix::zeros(1, 1))]).unwrap();
        assert!((params.get(w).get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_vec(1, 3, vec![5.0, -3.0, 1.0]).unwrap());
        let mut opt = Adam::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            last = quadratic_step(&mut opt, &mut params, w);
        }
        assert!(last < 1e-2, "Adam failed to converge, final loss {last}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_vec(1, 2, vec![4.0, -4.0]).unwrap());
        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            last = quadratic_step(&mut opt, &mut params, w);
        }
        assert!(last < 1e-3);
    }

    #[test]
    fn optimizer_rejects_mismatched_gradient_shape() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::zeros(2, 2));
        let mut sgd = Sgd::new(0.1);
        assert!(sgd.step(&mut params, &[(w, Matrix::zeros(1, 1))]).is_err());
        let mut adam = Adam::new(0.1);
        assert!(adam.step(&mut params, &[(w, Matrix::zeros(3, 3))]).is_err());
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut adam = Adam::new(0.1);
        adam.set_learning_rate(0.01);
        assert!((adam.learning_rate() - 0.01).abs() < 1e-9);
    }
}
