//! Queries a running `dssddi-serve` gateway over the network: the client
//! half of the *train → save → serve → query* story.
//!
//! Start a gateway first, e.g. the deterministic demo catalog:
//!
//! ```text
//! cargo run --release -p dssddi-serving --bin dssddi-serve -- --demo --listen 127.0.0.1:0
//! ```
//!
//! then point this example at the printed address:
//!
//! ```text
//! cargo run --release -p dssddi-serving --example serve_client -- 127.0.0.1:PORT [--shutdown]
//! ```
//!
//! With `--shutdown` the example asks the gateway to exit cleanly after the
//! queries — that is what the CI loopback smoke test does.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dssddi_core::{CheckPrescriptionRequest, DrugId, SuggestRequest};
use dssddi_serving::demo::{demo_requests, demo_world, DEMO_SEED};
use dssddi_serving::{Client, ServingError};

fn main() -> Result<(), ServingError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shutdown = args.iter().any(|a| a == "--shutdown");

    println!("connecting to dssddi-serve at {addr} ...");
    let mut client = Client::connect(addr.as_str())?;

    // 1. What does this gateway serve?
    let models = client.list_models()?;
    println!("\ngateway serves {} model(s):", models.len());
    for model in &models {
        println!(
            "  {:<12} fitted: {:<5} drugs: {:<3} features: {:<9} backbone: {} digest: {:#018x} kb: v{}",
            model.key.to_string(),
            model.fitted,
            model.n_drugs,
            model
                .n_features
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".to_string()),
            model.backbone,
            model.registry_digest,
            model.kb_version,
        );
    }

    // 2. Pick a fitted shard and suggest medications for held-out patients.
    //    The demo world is derived from a shared seed, so when the gateway
    //    runs `--demo` we can send real held-out patient features; against
    //    other gateways we fall back to zero vectors of the advertised width.
    let fitted = models
        .iter()
        .find(|m| m.fitted)
        .ok_or_else(|| ServingError::Protocol {
            what: "gateway serves no fitted model".to_string(),
        })?;
    let world = demo_world(DEMO_SEED)?;
    let requests: Vec<SuggestRequest> = match fitted.n_features {
        Some(n) if n == world.cohort.features().cols() => demo_requests(&world, 4, 3),
        Some(n) => demo_requests(&world, 4, 3)
            .into_iter()
            .map(|r| SuggestRequest::new(r.patient, vec![0.0; n], r.k))
            .collect(),
        None => Vec::new(),
    };

    println!("\nsuggestions from model {:?}:", fitted.key.to_string());
    let responses = client.suggest_batch(&fitted.key, &requests)?;
    for response in &responses {
        let drugs: Vec<String> = response
            .drugs
            .iter()
            .map(|d| format!("{} (score {:.3})", d.name, d.score))
            .collect();
        println!(
            "  {}: {} | SS {:.3}",
            response.patient,
            drugs.join(", "),
            response.suggestion_satisfaction
        );
    }

    // 3. Critique a prescription: Gabapentin (61) + Isosorbide Mononitrate
    //    (59) is the paper's Fig. 8 antagonistic pair in the standard
    //    formulary.
    let critique_key = models
        .iter()
        .map(|m| &m.key)
        .find(|k| k.as_str() == "critique")
        .cloned()
        .unwrap_or_else(|| fitted.key.clone());
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    match client.check_prescription(&critique_key, &check) {
        Ok(report) => {
            println!(
                "\nprescription critique on {:?}: safe = {} (kb v{})",
                critique_key.to_string(),
                report.is_safe(),
                report.kb_version.unwrap_or(0),
            );
            for pair in &report.antagonistic {
                println!(
                    "  warning [{}]: {} is antagonistic with {}{}",
                    pair.severity,
                    pair.a_name,
                    pair.b_name,
                    pair.management
                        .as_deref()
                        .map(|hint| format!(" — {hint}"))
                        .unwrap_or_default(),
                );
            }
        }
        Err(ServingError::Remote { code, message }) => {
            // A non-demo gateway may have a smaller formulary; the typed
            // error tells us exactly that without tearing anything down.
            println!("\nprescription critique rejected ({code}): {message}");
        }
        Err(other) => return Err(other),
    }

    // 4. Serving statistics accumulated by the gateway for this session.
    println!("\nper-model serving stats:");
    for (key, stats) in client.stats()? {
        println!(
            "  {:<12} requests: {:<4} errors: {:<3} cache hit rate: {:.2} p50: {:.3} ms p99: {:.3} ms",
            key.to_string(),
            stats.requests,
            stats.errors,
            stats.cache_hit_rate(),
            stats.p50_ms,
            stats.p99_ms,
        );
    }

    if shutdown {
        println!("\nasking the gateway to shut down ...");
        client.shutdown()?;
        println!("gateway acknowledged shutdown");
    }
    Ok(())
}
