//! End-to-end gateway coverage over loopback TCP.
//!
//! The acceptance bar of the serving redesign: a [`Client`] talking to a
//! server must return rankings, scores and explanations **byte-identical**
//! to calling `DecisionService::suggest_batch` in-process on the same
//! fitted service, for every message type; corrupt, oversized or
//! version-mismatched frames must produce typed errors on both ends while
//! the server stays up; and shutdown must be clean.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use dssddi_core::{CheckPrescriptionRequest, DecisionService, DrugId};
use dssddi_serving::demo::{demo_catalog, demo_requests, demo_world, DemoWorld, DEMO_SEED};
use dssddi_serving::wire::{decode_response, encode_request, read_frame, WIRE_MAGIC, WIRE_VERSION};
use dssddi_serving::{
    Client, ErrorCode, ModelCatalog, ModelKey, Request, Response, Router, Server, ServingError,
};
use dssddi_tensor::serde::seal_frame;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dssddi-gateway-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{name}-{}.dssd", std::process::id()))
}

/// Spawns a server over the given catalog; returns its address and the
/// join handle of the accept loop.
fn spawn_server(
    catalog: ModelCatalog,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), ServingError>>,
) {
    let server = Server::bind("127.0.0.1:0", Router::new(catalog)).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Builds the trained demo gateway *through the DSSD file path*: the fitted
/// shard is saved and reloaded from disk exactly like a production serving
/// host would, and the same file backs the in-process reference service.
fn file_backed_world() -> (ModelCatalog, DecisionService, DemoWorld) {
    let (trained, world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let fitted_key = ModelKey::new("chronic").expect("key");
    let path = temp_path("fitted-shard");
    trained
        .service(&fitted_key)
        .expect("fitted shard present")
        .save(&path)
        .expect("save fitted shard");
    let reference = DecisionService::load_with_embedded_registry(&path).expect("reference load");
    let mut catalog = ModelCatalog::new();
    catalog
        .load_file(fitted_key, &path)
        .expect("load fitted shard from file");
    // Keep the support-only shard in the gateway too (insert path).
    let support_key = ModelKey::new("critique").expect("key");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support shard");
    catalog.insert(support_key, support).expect("insert");
    std::fs::remove_file(&path).ok();
    (catalog, reference, world)
}

#[test]
fn every_message_type_is_byte_identical_to_in_process_serving() {
    let (catalog, reference, world) = file_backed_world();
    let (addr, handle) = spawn_server(catalog);
    let mut client = Client::connect(addr).expect("connect");
    let fitted_key = ModelKey::new("chronic").expect("key");
    let support_key = ModelKey::new("critique").expect("key");

    // --- ListModels ---------------------------------------------------
    let models = client.list_models().expect("list models");
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].key, fitted_key);
    assert!(models[0].fitted);
    assert_eq!(models[0].n_drugs, reference.registry().len());
    assert_eq!(models[0].n_features, reference.n_features());
    assert_eq!(models[0].registry_digest, reference.registry().digest());
    assert_eq!(models[0].backbone, reference.config().ddi.backbone.name());
    assert_eq!(models[1].key, support_key);
    assert!(!models[1].fitted);
    assert_eq!(models[1].n_features, None);

    // --- Suggest / SuggestBatch ---------------------------------------
    let requests = demo_requests(&world, 8, 3);
    let local = reference.suggest_batch(&requests).expect("local batch");
    let remote = client
        .suggest_batch(&fitted_key, &requests)
        .expect("remote batch");
    assert_eq!(local.len(), remote.len());
    for (a, b) in local.iter().zip(&remote) {
        assert_eq!(a, b, "remote batch response differs from in-process");
        for (da, db) in a.drugs.iter().zip(&b.drugs) {
            assert_eq!(da.score.to_bits(), db.score.to_bits(), "score bits differ");
        }
        assert_eq!(
            a.suggestion_satisfaction.to_bits(),
            b.suggestion_satisfaction.to_bits(),
            "satisfaction bits differ"
        );
    }
    let single_local = reference.suggest(&requests[0]).expect("local single");
    let single_remote = client
        .suggest(&fitted_key, &requests[0])
        .expect("remote single");
    assert_eq!(single_local, single_remote);
    for (da, db) in single_local.drugs.iter().zip(&single_remote.drugs) {
        assert_eq!(da.score.to_bits(), db.score.to_bits());
    }

    // --- CheckPrescription (on both shard kinds) -----------------------
    // A gateway shard critiques against its knowledge base (seeded from the
    // shard's DDI graph); the in-process reference attaches the same KB, so
    // severity-graded findings must be bit-identical under the same policy.
    let reference_kb =
        dssddi_serving::KnowledgeBase::from_ddi_graph(reference.ddi_graph(), reference.registry())
            .expect("reference kb");
    let check = CheckPrescriptionRequest::new(vec![
        DrugId::new(61),
        DrugId::new(59),
        DrugId::new(10),
        DrugId::new(5),
    ]);
    let local_report = reference
        .check_prescription_with_kb(&check, Some(&reference_kb))
        .expect("local check");
    let remote_report = client
        .check_prescription(&fitted_key, &check)
        .expect("remote check");
    assert_eq!(local_report, remote_report);
    assert_eq!(
        local_report.suggestion_satisfaction.to_bits(),
        remote_report.suggestion_satisfaction.to_bits()
    );
    assert_eq!(remote_report.kb_version, Some(reference_kb.version()));
    assert!(
        remote_report
            .antagonistic
            .iter()
            .all(|p| p.severity == dssddi_serving::Severity::Moderate),
        "graph-seeded antagonistic facts grade Moderate"
    );
    // The same request under a Major-and-up policy mutes every graph-seeded
    // finding — filtered at the source, identically on both ends.
    let gated = check
        .clone()
        .with_policy(dssddi_serving::AlertPolicy::at_least(
            dssddi_serving::Severity::Major,
        ));
    let local_gated = reference
        .check_prescription_with_kb(&gated, Some(&reference_kb))
        .expect("local gated check");
    let remote_gated = client
        .check_prescription(&fitted_key, &gated)
        .expect("remote gated check");
    assert_eq!(local_gated, remote_gated);
    assert!(remote_gated.antagonistic.is_empty() && remote_gated.synergistic.is_empty());
    // The support-only shard critiques too (no fitted model needed).
    let support_report = client
        .check_prescription(&support_key, &check)
        .expect("support check");
    assert!(!support_report.is_safe());

    // --- KbInfo ---------------------------------------------------------
    let kb_info = client.kb_info(&fitted_key).expect("kb info");
    assert_eq!(kb_info.version, reference_kb.version());
    assert_eq!(kb_info.n_facts, reference_kb.len());
    assert_eq!(kb_info.registry_digest, reference.registry().digest());
    let models_again = client.list_models().expect("list models again");
    assert_eq!(models_again[0].kb_version, kb_info.version);

    // --- Typed remote errors for every failure class --------------------
    match client.suggest_batch(&ModelKey::new("nope").expect("key"), &requests) {
        Err(ServingError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownModel);
            assert!(message.contains("nope") && message.contains("chronic"));
        }
        other => panic!("expected Remote UnknownModel, got {other:?}"),
    }
    match client.suggest(&support_key, &requests[0]) {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NotFitted),
        other => panic!("expected Remote NotFitted, got {other:?}"),
    }
    match client.check_prescription(
        &fitted_key,
        &CheckPrescriptionRequest::new(vec![DrugId::new(9999)]),
    ) {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownDrug),
        other => panic!("expected Remote UnknownDrug, got {other:?}"),
    }
    let mut bad_request = requests[0].clone();
    bad_request.features.pop();
    match client.suggest(&fitted_key, &bad_request) {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InvalidInput),
        other => panic!("expected Remote InvalidInput, got {other:?}"),
    }

    // --- Stats ----------------------------------------------------------
    let stats = client.stats().expect("stats");
    assert_eq!(stats.len(), 2);
    let (_, fitted_stats) = &stats[0];
    // 8 batch + 1 single + 1 check + the four error probes that reached the
    // fitted shard (unknown model never reaches a shard).
    assert!(
        fitted_stats.requests >= 10,
        "fitted shard saw {} requests",
        fitted_stats.requests
    );
    assert!(fitted_stats.errors >= 2);
    // The error breakdown accounts for every error and names the classes
    // the probes above triggered.
    let broken_down: u64 = fitted_stats.errors_by_code.iter().map(|(_, n)| n).sum();
    assert_eq!(broken_down, fitted_stats.errors);
    let codes: Vec<ErrorCode> = fitted_stats
        .errors_by_code
        .iter()
        .map(|&(code, _)| code)
        .collect();
    assert!(codes.contains(&ErrorCode::UnknownDrug));
    assert!(codes.contains(&ErrorCode::InvalidInput));
    assert!(fitted_stats.cache_hits + fitted_stats.cache_misses > 0);
    assert!(fitted_stats.p50_ms >= 0.0 && fitted_stats.p99_ms >= fitted_stats.p50_ms);
    // Every served request left a latency sample behind, and the sample
    // count travelled over the wire explicitly (it is no longer inferred
    // from `requests` client-side).
    assert!(
        fitted_stats.samples > 0,
        "latency window is empty after {} requests",
        fitted_stats.requests
    );
    assert!(fitted_stats.samples <= fitted_stats.requests);
    let rate = fitted_stats.cache_hit_rate();
    assert!((0.0..=1.0).contains(&rate));
    // Admission-control fields: no limits are configured on this gateway,
    // so nothing was shed and no queueing happened — and with this client
    // idle, nothing is in flight when Stats is served.
    assert_eq!(fitted_stats.shed_requests, 0);
    assert_eq!(fitted_stats.in_flight, 0);
    assert_eq!(fitted_stats.queue_depth_hwm, 0);

    // --- Clean shutdown -------------------------------------------------
    client.shutdown().expect("clean shutdown");
    handle
        .join()
        .expect("accept loop must not panic")
        .expect("accept loop exits cleanly");
}

#[test]
fn second_connection_sees_stats_of_the_first() {
    // Stats aggregate across connections because the router is shared.
    let world = demo_world(DEMO_SEED).expect("demo world");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support");
    let mut catalog = ModelCatalog::new();
    let key = ModelKey::new("critique").expect("key");
    catalog.insert(key.clone(), support).expect("insert");
    let (addr, handle) = spawn_server(catalog);

    let mut first = Client::connect(addr).expect("connect");
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    first.check_prescription(&key, &check).expect("check");
    drop(first); // closing a connection must not disturb the gateway

    let mut second = Client::connect(addr).expect("connect again");
    let stats = second.stats().expect("stats");
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].1.requests, 1, "first connection's call is counted");
    second.shutdown().expect("shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn trace_dump_exemplars_account_for_the_full_request_latency() {
    // A traced client exercises the data plane; the gateway keeps the
    // slowest exemplars with a per-stage breakdown whose sum must match
    // the recorded end-to-end latency (the ISSUE bar: within 10% — the
    // stage accounting is constructed to make it exact up to µs rounding).
    let (catalog, _, world) = file_backed_world();
    let (addr, handle) = spawn_server(catalog);
    let mut client = Client::connect(addr).expect("connect");
    client.set_tracing(true);
    let fitted_key = ModelKey::new("chronic").expect("key");
    let requests = demo_requests(&world, 6, 3);
    for request in &requests {
        client.suggest(&fitted_key, request).expect("suggest");
    }
    client
        .check_prescription(
            &fitted_key,
            &CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]),
        )
        .expect("check");

    let dump = client.trace_dump(32).expect("trace dump");
    assert!(
        dump.len() >= requests.len(),
        "expected >= {} exemplars, got {}",
        requests.len(),
        dump.len()
    );
    // Slowest first, and every exemplar is internally consistent.
    let mut previous = u64::MAX;
    for exemplar in &dump {
        assert!(exemplar.trace_id != 0, "trace IDs are non-zero");
        assert!(
            exemplar.total_micros <= previous,
            "exemplars must be sorted slowest-first"
        );
        previous = exemplar.total_micros;
        assert!(
            ["suggest", "suggest_batch", "check_prescription"].contains(&exemplar.op.as_str()),
            "only data-plane ops are traced, got {:?}",
            exemplar.op
        );
        let stage_sum: u64 = exemplar.stage_micros.iter().sum();
        let tolerance = exemplar.total_micros / 10;
        assert!(
            stage_sum.abs_diff(exemplar.total_micros) <= tolerance,
            "stage sum {} vs total {} drifts more than 10%",
            stage_sum,
            exemplar.total_micros
        );
    }
    // The dump honours its limit.
    let top = client.trace_dump(2).expect("bounded trace dump");
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].trace_id, dump[0].trace_id);

    client.shutdown().expect("shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

/// Sends raw bytes on a fresh connection and returns the decoded response
/// frame (if the server answers before closing).
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream.write_all(bytes).expect("write raw");
    stream.flush().expect("flush raw");
    // Half-close so a server waiting for more header bytes sees EOF.
    stream.shutdown(std::net::Shutdown::Write).ok();
    let payload = read_frame(&mut stream).ok()?;
    decode_response(&payload).ok()
}

#[test]
fn hostile_frames_get_typed_errors_and_the_server_stays_up() {
    // Support-only catalog: cheap to build, full protocol surface.
    let world = demo_world(DEMO_SEED).expect("demo world");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support");
    let mut catalog = ModelCatalog::new();
    catalog
        .insert(ModelKey::new("critique").expect("key"), support)
        .expect("insert");
    let (addr, handle) = spawn_server(catalog);

    // 1. Garbage bytes: typed Malformed error (bad magic), connection ends.
    match send_raw(addr, b"GET / HTTP/1.1\r\n\r\n") {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error frame, got {other:?}"),
    }

    // 2. Version-mismatched frame: typed Malformed error. (`+ 1` is the
    //    live traced version, so the first unknown version is `+ 2`.)
    let future = seal_frame(WIRE_MAGIC, WIRE_VERSION + 2, &[4u8]);
    match send_raw(addr, &future) {
        Some(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("version"), "got: {message}");
        }
        other => panic!("expected version error frame, got {other:?}"),
    }

    // 3. Oversized declared length: typed Malformed error, no allocation.
    let mut oversized = encode_request(&Request::ListModels);
    oversized[6..14].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    match send_raw(addr, &oversized[..14]) {
        Some(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("payload"), "got: {message}");
        }
        other => panic!("expected oversize error frame, got {other:?}"),
    }

    // 4. CRC-corrupt frame: typed Malformed error.
    let mut corrupt = encode_request(&Request::ListModels);
    let last = corrupt.len() - 5; // inside the payload, before the CRC
    corrupt[last] ^= 0xFF;
    match send_raw(addr, &corrupt) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected CRC error frame, got {other:?}"),
    }

    // 5. Valid frame, malformed body: typed error *and* the connection
    //    survives for the next request.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let bad_body = seal_frame(WIRE_MAGIC, WIRE_VERSION, &[0xEE, 1, 2, 3]);
    stream.write_all(&bad_body).expect("write");
    let payload = read_frame(&mut stream).expect("error frame");
    match decode_response(&payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }
    stream
        .write_all(&encode_request(&Request::ListModels))
        .expect("write valid request on the same connection");
    let payload = read_frame(&mut stream).expect("list models frame");
    match decode_response(&payload).expect("decodes") {
        Response::ListModels(models) => assert_eq!(models.len(), 1),
        other => panic!("expected ListModels, got {other:?}"),
    }
    drop(stream);

    // 6. After all that abuse, a fresh client still gets full service: the
    //    gateway never went down.
    let mut client = Client::connect(addr).expect("connect after abuse");
    let models = client.list_models().expect("list models");
    assert_eq!(models.len(), 1);
    client.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");

    // 7. And after shutdown, the port is actually closed.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let gone = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200)).and_then(
        |mut s| {
            s.write_all(&encode_request(&Request::ListModels))?;
            let mut buf = [0u8; 1];
            let n = s.read(&mut buf)?;
            Ok(n)
        },
    );
    assert!(
        matches!(gone, Err(_) | Ok(0)),
        "server still answering after shutdown"
    );
}

#[test]
fn shutdown_drains_and_is_not_blocked_by_idle_connections() {
    let world = demo_world(DEMO_SEED).expect("demo world");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support");
    let mut catalog = ModelCatalog::new();
    let key = ModelKey::new("critique").expect("key");
    catalog.insert(key.clone(), support).expect("insert");
    let (addr, handle) = spawn_server(catalog);

    // An idle keep-alive connection (request served, then silence) must not
    // block the post-shutdown drain: its handler polls the shutdown flag.
    let mut idle = Client::connect(addr).expect("idle client");
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    idle.check_prescription(&key, &check).expect("warm idle");

    let shutter = Client::connect(addr).expect("shutter");
    let start = std::time::Instant::now();
    shutter.shutdown().expect("shutdown ack");
    handle
        .join()
        .expect("accept loop must not panic")
        .expect("clean exit");
    // Bounded drain: one idle-poll interval plus scheduling slack, far
    // below a "hangs forever" failure.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "drain took {:?}",
        start.elapsed()
    );
    drop(idle);
}

#[test]
fn duplicate_and_invalid_catalog_entries_are_typed_errors() {
    let world = demo_world(DEMO_SEED).expect("demo world");
    let mut catalog = ModelCatalog::new();
    let key = ModelKey::new("critique").expect("key");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support");
    catalog.insert(key.clone(), support).expect("insert");
    let support2 = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support");
    assert!(matches!(
        catalog.insert(key, support2),
        Err(ServingError::DuplicateModel { .. })
    ));
    // Loading a non-DSSD file is a typed Core/Persistence error.
    let path = temp_path("not-a-model");
    std::fs::write(&path, b"definitely not a DSSD container").expect("write junk");
    assert!(matches!(
        catalog.load_file(ModelKey::new("junk").expect("key"), &path),
        Err(ServingError::Core(
            dssddi_core::CoreError::Persistence { .. }
        ))
    ));
    std::fs::remove_file(&path).ok();
}
