//! Property-based coverage of the serving wire protocol: random requests
//! and responses round-trip bit-exactly through encode→frame→decode, and
//! random truncation or bit-flips of frames yield typed errors — never
//! panics, never a wrong-but-accepted message (the CRC catches payload
//! damage; the header checks catch the rest).

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dssddi_core::{
    CheckPrescriptionRequest, DrugId, Explanation, InteractionReport, PairInteraction, PatientId,
    ScoredDrug, SignedEdge, SuggestFilters, SuggestRequest, SuggestResponse,
};
use dssddi_graph::{Community, Interaction};
use dssddi_kb::{AlertPolicy, KbInfo, Severity};
use dssddi_serving::wire::{
    decode_request, decode_response, encode_request, encode_request_ref_traced, encode_response,
    encode_response_traced, open_wire_frame, open_wire_frame_traced, WireError,
};
use dssddi_serving::{ErrorCode, ModelKey, ModelStats, Request, Response};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies. Floats are drawn as raw bit patterns so NaNs, infinities and
// negative zero all appear; equality below is always on bits.
// ---------------------------------------------------------------------------

fn arb_f32_bits() -> impl Strategy<Value = f32> {
    (0u32..=u32::MAX).prop_map(f32::from_bits)
}

fn arb_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_model_key() -> impl Strategy<Value = ModelKey> {
    (1usize..12, any::<u64>()).prop_map(|(len, salt)| {
        let alphabet: Vec<char> = ('a'..='z').chain("0123456789-_./".chars()).collect();
        let key: String = (0..len)
            .map(|i| {
                let mix = salt
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(i as u32);
                alphabet[(mix as usize) % alphabet.len()]
            })
            .collect();
        ModelKey::new(key).expect("alphabet chars are always valid")
    })
}

fn arb_drug_ids() -> impl Strategy<Value = Vec<DrugId>> {
    proptest::collection::vec(0usize..200, 0..5)
        .prop_map(|ids| ids.into_iter().map(DrugId::new).collect())
}

fn arb_suggest_request() -> impl Strategy<Value = SuggestRequest> {
    (
        0usize..10_000,
        proptest::collection::vec(arb_f32_bits(), 0..40),
        0usize..10,
        arb_drug_ids(),
        arb_drug_ids(),
        arb_drug_ids(),
    )
        .prop_map(|(patient, features, k, exclude, avoid, contraindicated)| {
            SuggestRequest::new(PatientId::new(patient), features, k).with_filters(SuggestFilters {
                exclude,
                avoid_antagonists_of: avoid,
                exclude_contraindicated_with: contraindicated,
            })
        })
}

fn arb_severity() -> impl Strategy<Value = Severity> {
    (0u8..4).prop_map(|t| Severity::from_u8(t).expect("tags 0..4 are valid"))
}

fn arb_alert_policy() -> impl Strategy<Value = AlertPolicy> {
    (arb_severity(), any::<bool>()).prop_map(|(min_severity, contraindicated_always_fires)| {
        AlertPolicy {
            min_severity,
            contraindicated_always_fires,
        }
    })
}

fn arb_kb_info() -> impl Strategy<Value = KbInfo> {
    (
        any::<u64>(),
        0usize..100_000,
        proptest::collection::vec(0usize..1000, 4),
        any::<u64>(),
        0usize..10_000,
    )
        .prop_map(
            |(version, n_facts, by_severity, registry_digest, n_drugs)| KbInfo {
                version,
                n_facts,
                facts_by_severity: [
                    by_severity[0],
                    by_severity[1],
                    by_severity[2],
                    by_severity[3],
                ],
                registry_digest,
                n_drugs,
            },
        )
}

fn arb_interaction() -> impl Strategy<Value = Interaction> {
    (0u8..3).prop_map(|t| match t {
        0 => Interaction::None,
        1 => Interaction::Synergistic,
        _ => Interaction::Antagonistic,
    })
}

fn arb_scored_drug() -> impl Strategy<Value = ScoredDrug> {
    (0usize..200, 0usize..30, arb_f32_bits()).prop_map(|(id, name_len, score)| ScoredDrug {
        id: DrugId::new(id),
        name: "drüg-".chars().cycle().take(name_len).collect(),
        score,
    })
}

fn arb_explanation() -> impl Strategy<Value = Explanation> {
    (
        proptest::collection::vec(0usize..100, 0..5),
        proptest::collection::vec(0usize..100, 0..8),
        proptest::collection::vec((0usize..100, 0usize..100), 0..8),
        (0usize..10, 0usize..1000),
        proptest::collection::vec((0usize..100, 0usize..100, arb_interaction()), 0..8),
        (0usize..5, 0usize..5, 0usize..5),
        arb_f64_bits(),
    )
        .prop_map(
            |(suggested, nodes, comm_edges, (trussness, diameter), edges, counts, ss)| {
                Explanation {
                    suggested,
                    community: Community {
                        nodes: nodes.into_iter().collect(),
                        edges: comm_edges,
                        trussness,
                        diameter,
                    },
                    edges: edges
                        .into_iter()
                        .map(|(u, v, interaction)| SignedEdge { u, v, interaction })
                        .collect(),
                    internal_synergy: counts.0,
                    internal_antagonism: counts.1,
                    external_antagonism: counts.2,
                    suggestion_satisfaction: ss,
                }
            },
        )
}

fn arb_suggest_response() -> impl Strategy<Value = SuggestResponse> {
    (
        0usize..10_000,
        proptest::collection::vec(arb_scored_drug(), 0..6),
        arb_explanation(),
        arb_f64_bits(),
    )
        .prop_map(|(patient, drugs, explanation, ss)| SuggestResponse {
            patient: PatientId::new(patient),
            drugs,
            explanation,
            suggestion_satisfaction: ss,
        })
}

fn arb_pair() -> impl Strategy<Value = PairInteraction> {
    (
        0usize..200,
        0usize..200,
        arb_interaction(),
        arb_severity(),
        (any::<bool>(), 0usize..20),
    )
        .prop_map(
            |(a, b, interaction, severity, (has_hint, hint_len))| PairInteraction {
                a: DrugId::new(a),
                a_name: format!("drug-{a}"),
                b: DrugId::new(b),
                b_name: format!("drug-{b}"),
                interaction,
                severity,
                management: has_hint.then(|| "hint-".chars().cycle().take(hint_len).collect()),
            },
        )
}

fn arb_report() -> impl Strategy<Value = InteractionReport> {
    (
        any::<bool>(),
        0usize..10_000,
        proptest::collection::vec(arb_scored_drug(), 0..6),
        proptest::collection::vec(arb_pair(), 0..4),
        proptest::collection::vec(arb_pair(), 0..4),
        arb_explanation(),
        arb_f64_bits(),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(
                has_patient,
                patient,
                drugs,
                antagonistic,
                synergistic,
                explanation,
                ss,
                (has_kb, kb_version),
            )| {
                InteractionReport {
                    patient: has_patient.then_some(PatientId::new(patient)),
                    drugs,
                    antagonistic,
                    synergistic,
                    explanation,
                    suggestion_satisfaction: ss,
                    kb_version: has_kb.then_some(kb_version),
                }
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..9,
        arb_model_key(),
        arb_suggest_request(),
        proptest::collection::vec(arb_suggest_request(), 0..4),
        (any::<bool>(), 0usize..10_000),
        arb_drug_ids(),
        arb_alert_policy(),
        proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..64),
    )
        .prop_map(
            |(
                variant,
                model,
                request,
                requests,
                (has_patient, patient),
                drugs,
                policy,
                container,
            )| match variant {
                0 => Request::Suggest { model, request },
                1 => Request::SuggestBatch { model, requests },
                2 => {
                    let mut check = CheckPrescriptionRequest::new(drugs).with_policy(policy);
                    if has_patient {
                        check = check.for_patient(PatientId::new(patient));
                    }
                    Request::CheckPrescription {
                        model,
                        request: check,
                    }
                }
                3 => Request::ReloadModel { model, container },
                4 => Request::ReloadKb { model, container },
                5 => Request::KbInfo { model },
                6 => Request::ListModels,
                7 => Request::Stats,
                _ => Request::Shutdown,
            },
        )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (0usize..ErrorCode::ALL.len()).prop_map(|i| ErrorCode::ALL[i])
}

fn arb_model_stats() -> impl Strategy<Value = ModelStats> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((arb_error_code(), any::<u64>()), 0..4),
        any::<u64>(),
        any::<u64>(),
        arb_f64_bits(),
        arb_f64_bits(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                requests,
                errors,
                errors_by_code,
                cache_hits,
                cache_misses,
                p50_ms,
                p99_ms,
                (shed_requests, in_flight, queue_depth_hwm, samples),
            )| {
                ModelStats {
                    requests,
                    errors,
                    errors_by_code,
                    cache_hits,
                    cache_misses,
                    p50_ms,
                    p99_ms,
                    shed_requests,
                    in_flight,
                    queue_depth_hwm,
                    samples,
                }
            },
        )
}

fn arb_model_info() -> impl Strategy<Value = dssddi_serving::ModelInfo> {
    (arb_model_key(), arb_model_stats(), any::<u64>()).prop_map(|(key, s, kb_version)| {
        dssddi_serving::ModelInfo {
            key,
            fitted: s.requests % 2 == 0,
            n_drugs: (s.errors % 100) as usize,
            n_features: (s.cache_hits % 2 == 0).then_some((s.cache_hits % 50) as usize),
            registry_digest: s.cache_misses,
            backbone: "SGCN".to_string(),
            kb_version,
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..10,
        arb_suggest_response(),
        proptest::collection::vec(arb_suggest_response(), 0..3),
        arb_report(),
        proptest::collection::vec((arb_model_key(), arb_model_stats()), 0..4),
        proptest::collection::vec(arb_model_info(), 0..4),
        arb_kb_info(),
        (
            (arb_error_code(), 0usize..40),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        ),
    )
        .prop_map(
            |(
                variant,
                response,
                responses,
                report,
                stats,
                models,
                kb_info,
                ((code, msg_len), gateway),
            )| {
                match variant {
                    0 => Response::Suggest(response),
                    1 => Response::SuggestBatch(responses),
                    2 => Response::CheckPrescription(report),
                    3 => Response::ListModels(models),
                    4 => Response::Stats(dssddi_serving::StatsReport {
                        models: stats,
                        gateway: dssddi_serving::GatewayStats {
                            connections_accepted: gateway.0,
                            connections_active: gateway.1,
                            connections_shed: gateway.2,
                            stalled_reaped: gateway.3,
                        },
                        // Half the generated reports are replicated so the
                        // optional trailer roundtrips in both states.
                        replica: (gateway.0 % 2 == 1).then(|| dssddi_serving::ReplicaStats {
                            peers: (gateway.1 % 5) as usize,
                            syncs: gateway.2,
                            bytes_shipped: gateway.3,
                            max_lag: gateway.0 % 17,
                            versions: vec![dssddi_serving::KeyVersions {
                                key: ModelKey::new("chronic").expect("valid key"),
                                model_version: gateway.2.wrapping_add(1),
                                kb_version: gateway.3.wrapping_add(1),
                            }],
                        }),
                    }),
                    5 => Response::ModelReloaded(models.into_iter().next().unwrap_or_else(|| {
                        dssddi_serving::ModelInfo {
                            key: ModelKey::new("m").expect("valid key"),
                            fitted: true,
                            n_drugs: 1,
                            n_features: None,
                            registry_digest: 0,
                            backbone: "SGCN".to_string(),
                            kb_version: 0,
                        }
                    })),
                    6 => Response::KbReloaded(kb_info),
                    7 => Response::KbInfo(kb_info),
                    8 => Response::ShuttingDown,
                    _ => Response::Error {
                        code,
                        message: "e".repeat(msg_len),
                    },
                }
            },
        )
}

// ---------------------------------------------------------------------------
// Bit-exact equality. Derived PartialEq is wrong for NaN-bearing floats, so
// requests/responses are compared through their wire bytes: the encoder is
// deterministic, so value equality (bit-level) implies byte equality.
// ---------------------------------------------------------------------------

fn request_bytes(r: &Request) -> Vec<u8> {
    encode_request(r)
}

fn response_bytes(r: &Response) -> Vec<u8> {
    encode_response(r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests survive encode→frame-validate→decode bit-exactly.
    #[test]
    fn requests_round_trip_bit_exactly(request in arb_request()) {
        let frame = encode_request(&request);
        let payload = open_wire_frame(&frame).expect("fresh frame validates");
        let back = decode_request(payload).expect("fresh payload decodes");
        prop_assert_eq!(request_bytes(&back), frame);
    }

    /// Responses survive encode→frame-validate→decode bit-exactly,
    /// including NaN/infinity scores and satisfaction values.
    #[test]
    fn responses_round_trip_bit_exactly(response in arb_response()) {
        let frame = encode_response(&response);
        let payload = open_wire_frame(&frame).expect("fresh frame validates");
        let back = decode_response(payload).expect("fresh payload decodes");
        prop_assert_eq!(response_bytes(&back), frame);
    }

    /// Any trace ID rides the version-2 extension block losslessly, and a
    /// `None` trace produces the version-1 frame bit-identically — a traced
    /// client with tracing off is indistinguishable from an old client.
    #[test]
    fn trace_ids_round_trip_through_the_frame_extension(
        request in arb_request(),
        response in arb_response(),
        trace in any::<u64>(),
    ) {
        // Requests.
        let traced = encode_request_ref_traced(request.as_request_ref(), Some(trace));
        let (got, payload) = open_wire_frame_traced(&traced).expect("traced frame validates");
        prop_assert_eq!(got, Some(trace));
        let back = decode_request(payload).expect("traced payload decodes");
        prop_assert_eq!(request_bytes(&back), request_bytes(&request));
        let untraced = encode_request_ref_traced(request.as_request_ref(), None);
        prop_assert_eq!(&untraced, &encode_request(&request));
        let (got, _) = open_wire_frame_traced(&untraced).expect("v1 frame validates");
        prop_assert_eq!(got, None);

        // Responses, same contract.
        let traced = encode_response_traced(&response, Some(trace));
        let (got, payload) = open_wire_frame_traced(&traced).expect("traced frame validates");
        prop_assert_eq!(got, Some(trace));
        let back = decode_response(payload).expect("traced payload decodes");
        prop_assert_eq!(response_bytes(&back), response_bytes(&response));
        prop_assert_eq!(
            encode_response_traced(&response, None),
            encode_response(&response)
        );
    }

    /// Truncating a traced frame anywhere yields a typed error, never a
    /// panic — the extension block is length-checked like everything else.
    #[test]
    fn truncated_traced_frames_are_typed_errors(
        response in arb_response(),
        trace in any::<u64>(),
        cut_at in any::<proptest::sample::Index>(),
    ) {
        let frame = encode_response_traced(&response, Some(trace));
        let cut = cut_at.index(frame.len());
        prop_assert!(open_wire_frame_traced(&frame[..cut]).is_err());
    }

    /// Truncating a frame anywhere yields a typed error, never a panic.
    #[test]
    fn truncated_frames_are_typed_errors(
        response in arb_response(),
        cut_at in any::<proptest::sample::Index>(),
    ) {
        let frame = encode_response(&response);
        let cut = cut_at.index(frame.len());
        prop_assert!(open_wire_frame(&frame[..cut]).is_err());
        // The streaming reader agrees with the buffer validator.
        let mut stream = std::io::Cursor::new(frame[..cut].to_vec());
        prop_assert!(dssddi_serving::wire::read_frame(&mut stream).is_err());
    }

    /// Flipping any single bit of a frame yields a typed error — the header
    /// checks catch damage before the payload, the CRC catches damage inside
    /// it. (Flips confined to the CRC trailer itself also fail, as a
    /// checksum mismatch.)
    #[test]
    fn bit_flips_are_typed_errors(
        request in arb_request(),
        byte_at in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = encode_request(&request);
        let index = byte_at.index(frame.len());
        let mut damaged = frame.clone();
        damaged[index] ^= 1 << bit;
        match open_wire_frame(&damaged) {
            Err(_) => {}
            Ok(payload) => {
                // The only survivable flip is inside the *declared length
                // high bytes*? No: any length change truncates or extends
                // and fails. A flip that still validates must decode to a
                // different message or fail decoding — accepting damaged
                // bytes as the original message is the one forbidden
                // outcome.
                let reencoded = decode_request(payload).map(|r| encode_request(&r));
                prop_assert!(
                    reencoded.map(|bytes| bytes != frame).unwrap_or(true),
                    "bit flip at byte {} bit {} was silently absorbed",
                    index,
                    bit
                );
            }
        }
    }
}

#[test]
fn error_frames_from_wire_module_decode_everywhere() {
    // The server's typed error mapping must survive the wire.
    let error = dssddi_serving::ServingError::UnknownModel {
        key: "nope".to_string(),
        available: vec!["chronic".to_string()],
    };
    let response = dssddi_serving::wire::error_response(&error);
    let frame = encode_response(&response);
    let decoded = decode_response(open_wire_frame(&frame).expect("validates")).expect("decodes");
    match decoded {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnknownModel);
            assert!(message.contains("nope") && message.contains("chronic"));
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn oversized_declared_lengths_error_before_allocation() {
    let frame = encode_request(&Request::ListModels);
    let mut bad = frame;
    bad[6..14].copy_from_slice(&(u64::MAX - 100).to_le_bytes());
    assert!(matches!(
        open_wire_frame(&bad),
        Err(WireError::Oversized { .. })
    ));
    let mut stream = std::io::Cursor::new(bad);
    assert!(matches!(
        dssddi_serving::wire::read_frame(&mut stream),
        Err(WireError::Oversized { .. })
    ));
}
