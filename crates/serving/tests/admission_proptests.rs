//! Property tests for the admission-control token bucket.
//!
//! The bucket is the load-shedding primitive of the gateway: if it ever
//! admitted above its configured rate the gateway's overload guarantees
//! would be fiction. Its core takes explicit nanosecond timestamps, so
//! these properties drive it through arbitrary (including out-of-order)
//! request schedules without wall clocks:
//!
//! 1. Over *any* window starting at the bucket's epoch, admitted tokens
//!    never exceed `burst + rate · elapsed`.
//! 2. Refill is monotone: timestamps running backwards never add tokens.
//! 3. Available tokens never exceed the capacity, and the capacity equals
//!    the (clamped) configured burst.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dssddi_serving::{RateLimit, TokenBucket};
use proptest::prelude::*;

/// A request schedule: positive nanosecond gaps and per-request token
/// demands, plus occasional zero gaps (bursts at one instant).
fn arb_schedule() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..2_000_000_000, 0.5f64..8.0), 1..64)
}

proptest! {
    #[test]
    fn admits_at_most_burst_plus_rate_times_elapsed(
        rate in 0.5f64..5_000.0,
        burst in 0.0f64..64.0,
        schedule in arb_schedule(),
    ) {
        let limit = RateLimit::new(rate, burst).expect("valid limit");
        let mut bucket = TokenBucket::new(limit, 0);
        let capacity = bucket.capacity();
        prop_assert_eq!(capacity, burst.max(1.0));

        let mut now = 0u64;
        let mut admitted = 0.0f64;
        for (gap, n) in schedule {
            now += gap;
            if bucket.try_acquire_at(n, now) {
                admitted += n;
            }
            // The window invariant, checked after every event: the bucket
            // can never have admitted more than one full burst plus what
            // the rate earned since its epoch.
            let earned = capacity + rate * now as f64 / 1e9;
            let slack = 1e-9 * earned.max(1.0);
            prop_assert!(
                admitted <= earned + slack,
                "admitted {} > burst {} + rate {} over {} ns",
                admitted, capacity, rate, now
            );
            // Available tokens are bounded by the capacity throughout.
            prop_assert!(bucket.available() <= capacity + 1e-9);
        }
    }

    #[test]
    fn refill_is_monotone_under_time_reversal(
        rate in 0.5f64..5_000.0,
        burst in 1.0f64..64.0,
        forward in 1u64..10_000_000_000,
        back in 1u64..10_000_000_000,
    ) {
        let limit = RateLimit::new(rate, burst).expect("valid limit");
        let mut bucket = TokenBucket::new(limit, forward);
        // Drain the initial burst at the epoch.
        while bucket.try_acquire_at(1.0, forward) {}
        let drained = bucket.available();
        // A timestamp before the epoch must refill nothing: acquiring zero
        // tokens "observes" the clock without debiting.
        let earlier = forward.saturating_sub(back);
        prop_assert!(bucket.try_acquire_at(0.0, earlier));
        prop_assert!(
            bucket.available() <= drained + 1e-12,
            "time running backwards refilled {} -> {}",
            drained,
            bucket.available()
        );
    }

    #[test]
    fn long_idle_refills_to_capacity_and_never_beyond(
        rate in 0.5f64..5_000.0,
        burst in 0.0f64..64.0,
    ) {
        let limit = RateLimit::new(rate, burst).expect("valid limit");
        let mut bucket = TokenBucket::new(limit, 0);
        while bucket.try_acquire_at(1.0, 0) {}
        // An hour of idle time at any tested rate overfills many times.
        prop_assert!(bucket.try_acquire_at(0.0, 3_600_000_000_000));
        prop_assert!((bucket.available() - bucket.capacity()).abs() <= 1e-9);
        // A demand above the capacity is never admissible, however long
        // the bucket idles.
        prop_assert!(!bucket.try_acquire_at(bucket.capacity() + 1.0, 7_200_000_000_000));
    }
}
