//! Load-shed-before-collapse over loopback TCP: the acceptance bar of the
//! admission-control subsystem.
//!
//! A gateway driven well past its configured capacity must
//!
//! * answer every admitted request normally, with a bounded latency,
//! * reject the excess with typed [`ErrorCode::Overloaded`] frames — never
//!   stall callers, never drop a connection, never panic,
//! * account for every shed request in `Stats` (`shed_requests` matches
//!   the rejections clients observed), and
//! * return to a quiet state afterwards (`in_flight` back to zero).

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use dssddi_core::{CheckPrescriptionRequest, DrugId};
use dssddi_serving::demo::{demo_world, DEMO_SEED};
use dssddi_serving::{
    AdmissionConfig, Client, ErrorCode, ModelCatalog, ModelKey, RateLimit, Router, Server,
    ServingError,
};

/// A support-only catalog (cheap to build, full critique surface) under the
/// key `critique`.
fn support_catalog() -> (ModelCatalog, ModelKey) {
    let world = demo_world(DEMO_SEED).expect("demo world");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support shard");
    let mut catalog = ModelCatalog::new();
    let key = ModelKey::new("critique").expect("key");
    catalog.insert(key.clone(), support).expect("insert");
    (catalog, key)
}

/// Per-thread tally of an overload run.
struct Tally {
    ok: u64,
    shed: u64,
    latencies: Vec<Duration>,
}

/// Drives `per_conn` check-prescription calls from each of `connections`
/// client threads as fast as they will go (far beyond any configured rate,
/// the open-loop "2x+ overload" of the acceptance criteria) and returns the
/// merged tally. Panics on any failure class other than a typed
/// `Overloaded` rejection — a dropped connection or protocol error fails
/// the test in the worker thread.
fn hammer(addr: std::net::SocketAddr, key: &ModelKey, connections: usize, per_conn: u64) -> Tally {
    let key = Arc::new(key.clone());
    let workers: Vec<_> = (0..connections)
        .map(|_| {
            let key = Arc::clone(&key);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect worker");
                // The same known-unsafe prescription the byte-identical
                // loopback test critiques.
                let check = CheckPrescriptionRequest::new(vec![
                    DrugId::new(61),
                    DrugId::new(59),
                    DrugId::new(10),
                    DrugId::new(5),
                ]);
                let mut tally = Tally {
                    ok: 0,
                    shed: 0,
                    latencies: Vec::with_capacity(per_conn as usize),
                };
                for _ in 0..per_conn {
                    let start = Instant::now();
                    match client.check_prescription(&key, &check) {
                        Ok(report) => {
                            tally.ok += 1;
                            tally.latencies.push(start.elapsed());
                            assert!(!report.is_safe(), "critique result must be intact");
                        }
                        Err(ServingError::Remote {
                            code: ErrorCode::Overloaded,
                            ..
                        }) => tally.shed += 1,
                        Err(other) => panic!("connection degraded under overload: {other}"),
                    }
                }
                // The connection survived the whole run: a control-plane
                // call (never shed) still works on the same socket.
                client.stats().expect("stats on the hammered connection");
                tally
            })
        })
        .collect();
    let mut merged = Tally {
        ok: 0,
        shed: 0,
        latencies: Vec::new(),
    };
    for worker in workers {
        let tally = worker.join().expect("worker must not panic");
        merged.ok += tally.ok;
        merged.shed += tally.shed;
        merged.latencies.extend(tally.latencies);
    }
    merged
}

fn p99(latencies: &mut [Duration]) -> Duration {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    latencies[(latencies.len() - 1) * 99 / 100]
}

#[test]
fn rate_limited_gateway_sheds_typed_and_answers_admitted_within_bounds() {
    let (catalog, key) = support_catalog();
    // Capacity: 20 requests/second with a 5-token burst. Four tight-loop
    // connections offer hundreds per second — way past 2x. (The 400
    // offered requests would need ~20 s of earned tokens to all be
    // admitted; the tight loops finish far sooner, so shedding is
    // guaranteed without timing the run.)
    let config = AdmissionConfig {
        default_rate: Some(RateLimit::new(20.0, 5.0).expect("limit")),
        ..AdmissionConfig::default()
    };
    let server =
        Server::bind("127.0.0.1:0", Router::with_admission(catalog, config)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let mut tally = hammer(addr, &key, 4, 100);
    assert_eq!(tally.ok + tally.shed, 400, "every request got an answer");
    assert!(
        tally.shed > 0,
        "overload must shed (ok {}, shed {})",
        tally.ok,
        tally.shed
    );
    // The burst alone guarantees admissions; refills add more.
    assert!(tally.ok >= 5, "admitted only {}", tally.ok);
    // Admitted requests stay fast *while* the gateway rejects the excess:
    // shedding is cheap, so admitted p99 stays far below collapse. The
    // bound is generous for CI noise yet far below queue-collapse figures.
    let p99 = p99(&mut tally.latencies);
    assert!(
        p99 < Duration::from_secs(1),
        "admitted p99 degraded: {p99:?}"
    );

    // The gateway's accounting matches what the clients observed.
    let mut observer = Client::connect(addr).expect("observer connect");
    let stats = observer.stats().expect("stats");
    let (_, shard) = &stats[0];
    assert_eq!(
        shard.shed_requests, tally.shed,
        "shed accounting must match client-observed rejections"
    );
    assert_eq!(shard.requests, tally.ok, "only admitted requests count");
    assert_eq!(
        shard.errors, 0,
        "sheds are not errors — they never executed"
    );
    assert_eq!(shard.in_flight, 0, "gateway is quiet again");
    observer.shutdown().expect("clean shutdown");
    handle
        .join()
        .expect("accept loop must not panic")
        .expect("accept loop exits cleanly");
}

#[test]
fn bounded_queue_sheds_contention_without_dropping_connections() {
    let (catalog, key) = support_catalog();
    // One execution slot, no queueing: concurrent arrivals shed instantly.
    let config = AdmissionConfig {
        max_in_flight: Some(1),
        max_queue_depth: 0,
        queue_wait: Duration::from_millis(50),
        ..AdmissionConfig::default()
    };
    let server =
        Server::bind("127.0.0.1:0", Router::with_admission(catalog, config)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let tally = hammer(addr, &key, 8, 200);
    assert_eq!(tally.ok + tally.shed, 1600);
    assert!(tally.ok > 0, "the single slot keeps serving");
    assert!(
        tally.shed > 0,
        "8 tight-loop connections against one slot must collide"
    );

    let mut observer = Client::connect(addr).expect("observer connect");
    let stats = observer.stats().expect("stats");
    let (_, shard) = &stats[0];
    assert_eq!(shard.shed_requests, tally.shed);
    assert_eq!(shard.requests, tally.ok);
    assert_eq!(shard.in_flight, 0, "all slots released");
    observer.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn in_flight_quota_sheds_and_releases() {
    let (catalog, key) = support_catalog();
    // Quota of 1 on the shard, with a generous queue so only the quota
    // ever sheds; contention between 8 threads trips it constantly.
    let config = AdmissionConfig {
        quotas: vec![(key.clone(), 1)],
        ..AdmissionConfig::default()
    };
    let server =
        Server::bind("127.0.0.1:0", Router::with_admission(catalog, config)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let tally = hammer(addr, &key, 8, 100);
    assert_eq!(tally.ok + tally.shed, 800);
    assert!(tally.ok > 0 && tally.shed > 0);

    let mut observer = Client::connect(addr).expect("observer connect");
    let stats = observer.stats().expect("stats");
    let (_, shard) = &stats[0];
    assert_eq!(shard.shed_requests, tally.shed);
    assert_eq!(shard.in_flight, 0, "quota slots all released");
    observer.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}
