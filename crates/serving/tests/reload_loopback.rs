//! Hot-reload coverage: a gateway shard's knowledge base and model are
//! swapped *under live concurrent traffic* with zero dropped or failed
//! requests, serving counters survive the swap, and foreign or damaged
//! reload artifacts are typed errors that leave the shard serving.
//!
//! This closes the ROADMAP's "hot model reload/swap under a live key"
//! follow-up: the loopback test below reloads mid-traffic and asserts no
//! request errors on any connection.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dssddi_core::{CheckPrescriptionRequest, DrugId, ServiceBuilder};
use dssddi_kb::{EvidenceLevel, KbFact, KnowledgeBase, Severity};
use dssddi_serving::demo::{demo_catalog, demo_requests, DemoWorld, DEMO_SEED};
use dssddi_serving::{
    Client, ErrorCode, ModelCatalog, ModelKey, Router, Server, ServingError, WireError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spawn_server(
    catalog: ModelCatalog,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), ServingError>>,
) {
    let server = Server::bind("127.0.0.1:0", Router::new(catalog)).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Trains a second fitted service over the same demo world (same formulary,
/// different training seed) — the "re-trained model" a reload ships.
fn retrained_service_bytes(world: &DemoWorld) -> Vec<u8> {
    let observed: Vec<usize> = (0..55).collect();
    let mut rng = StdRng::seed_from_u64(DEMO_SEED ^ 0xdead);
    let retrained = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(
            &world.cohort,
            &observed,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .expect("retrain");
    let dir = std::env::temp_dir().join("dssddi-reload-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("retrained-{}.dssd", std::process::id()));
    retrained.save(&path).expect("save retrained");
    let bytes = std::fs::read(&path).expect("read retrained");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn kb_and_model_hot_reload_under_concurrent_traffic() {
    let (catalog, world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let key = ModelKey::new("chronic").expect("key");
    let retrained_bytes = retrained_service_bytes(&world);

    // The updated KB an operator ships: the Fig. 8 pair becomes a
    // contraindication with a management hint.
    let mut new_kb =
        KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry).expect("kb from graph");
    new_kb
        .upsert(
            61,
            59,
            KbFact {
                severity: Severity::Contraindicated,
                evidence: EvidenceLevel::Established,
                mechanism: "nitrate potentiation".to_string(),
                management: "do not combine".to_string(),
            },
        )
        .expect("upsert");
    let new_kb_bytes = new_kb.to_container_bytes();
    let old_kb_version = 1; // graph-seeded KB

    let (addr, handle) = spawn_server(catalog);

    // Concurrent clinical traffic: every worker alternates suggestions and
    // prescription checks on its own connection until told to stop, and
    // fails the test on the first error it sees.
    let stop = Arc::new(AtomicBool::new(false));
    let requests = demo_requests(&world, 4, 3);
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let key = key.clone();
            let requests = requests.clone();
            let check = check.clone();
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    client
                        .suggest_batch(&key, &requests)
                        .map_err(|e| format!("suggest_batch during reload: {e}"))?;
                    client
                        .check_prescription(&key, &check)
                        .map_err(|e| format!("check_prescription during reload: {e}"))?;
                    served += requests.len() as u64 + 1;
                }
                Ok(served)
            })
        })
        .collect();

    let mut ops = Client::connect(addr).expect("ops client");
    // Let traffic flow before the first swap.
    std::thread::sleep(Duration::from_millis(150));
    let stats_before = ops.stats().expect("stats before reload");
    let before = &stats_before
        .iter()
        .find(|(k, _)| k == &key)
        .expect("chronic stats")
        .1;
    assert!(before.requests > 0, "traffic must be flowing before reload");

    // --- KB hot reload mid-traffic --------------------------------------
    let kb_info = ops.reload_kb(&key, &new_kb_bytes).expect("reload kb");
    assert_eq!(kb_info.version, new_kb.version());
    assert!(kb_info.version > old_kb_version);
    assert_eq!(
        kb_info.facts_by_severity[Severity::Contraindicated.to_u8() as usize],
        1
    );

    // New critiques immediately see the upgraded grade and hint.
    let graded = ops.check_prescription(&key, &check).expect("graded check");
    assert_eq!(graded.kb_version, Some(new_kb.version()));
    assert!(graded.has_contraindicated());
    assert_eq!(
        graded.antagonistic[0].management.as_deref(),
        Some("do not combine")
    );

    // --- Model hot swap mid-traffic -------------------------------------
    std::thread::sleep(Duration::from_millis(100));
    let info = ops
        .reload_model(&key, &retrained_bytes)
        .expect("reload model");
    assert!(info.fitted);
    assert_eq!(info.registry_digest, world.registry.digest());
    assert_eq!(
        info.kb_version,
        new_kb.version(),
        "the paired KB survives a model swap"
    );

    // The swapped-in model serves bit-identically to loading the same
    // artifact in-process.
    let reloaded_reference =
        dssddi_core::DecisionService::load_with_embedded_registry_bytes(&retrained_bytes)
            .expect("reference reload");
    let local = reloaded_reference
        .suggest_batch(&requests)
        .expect("local batch");
    let remote = ops.suggest_batch(&key, &requests).expect("remote batch");
    assert_eq!(local.len(), remote.len());
    for (a, b) in local.iter().zip(&remote) {
        assert_eq!(a, b, "post-swap responses differ from the artifact");
        for (da, db) in a.drugs.iter().zip(&b.drugs) {
            assert_eq!(da.score.to_bits(), db.score.to_bits());
        }
    }

    // Let the workers hammer the swapped shard a little longer, then stop.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::SeqCst);
    let mut total_served = 0u64;
    for worker in workers {
        total_served += worker
            .join()
            .expect("worker must not panic")
            .expect("zero failed requests across both reloads");
    }
    assert!(
        total_served > 0,
        "workers must actually have served traffic"
    );

    // Serving counters survived both swaps: the totals kept growing and
    // no error was recorded for the clinical traffic.
    let stats_after = ops.stats().expect("stats after reload");
    let after = &stats_after
        .iter()
        .find(|(k, _)| k == &key)
        .expect("chronic stats")
        .1;
    assert!(
        after.requests > before.requests,
        "stats reset across reload: {} -> {}",
        before.requests,
        after.requests
    );
    assert_eq!(after.errors, 0, "breakdown: {:?}", after.errors_by_code);

    ops.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn foreign_or_damaged_reload_artifacts_are_typed_errors() {
    let (catalog, world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let key = ModelKey::new("chronic").expect("key");
    let (addr, handle) = spawn_server(catalog);
    let mut client = Client::connect(addr).expect("connect");

    // Damaged DSKB bytes: typed Persistence error.
    match client.reload_kb(&key, b"not a DSKB container") {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Persistence),
        other => panic!("expected Remote Persistence, got {other:?}"),
    }
    // A KB over a foreign formulary: typed Persistence error.
    let foreign_registry =
        dssddi_data::DrugRegistry::from_names(vec!["A".to_string(), "B".to_string()])
            .expect("registry");
    let foreign_kb = KnowledgeBase::new(&foreign_registry);
    match client.reload_kb(&key, &foreign_kb.to_container_bytes()) {
        Err(ServingError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Persistence);
            assert!(message.contains("digest"), "got: {message}");
        }
        other => panic!("expected Remote Persistence, got {other:?}"),
    }
    // Damaged DSSD bytes: typed Persistence error.
    match client.reload_model(&key, b"not a DSSD container") {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Persistence),
        other => panic!("expected Remote Persistence, got {other:?}"),
    }
    // Unknown shard: typed UnknownModel error.
    match client.kb_info(&ModelKey::new("nope").expect("key")) {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected Remote UnknownModel, got {other:?}"),
    }

    // After all the rejected reloads the shard still serves, on the KB it
    // started with.
    let report = client
        .check_prescription(
            &key,
            &CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]),
        )
        .expect("shard still serves");
    assert_eq!(report.kb_version, Some(1));
    drop(world);

    client.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn in_process_replace_validates_keys_and_formularies() {
    let (catalog, world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let key = ModelKey::new("chronic").expect("key");
    let missing = ModelKey::new("missing").expect("key");

    // Unknown keys are typed errors.
    let kb = KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry).expect("kb");
    assert!(matches!(
        catalog.replace_kb(&missing, kb.clone()),
        Err(ServingError::UnknownModel { .. })
    ));
    // A foreign formulary is refused with a typed mismatch.
    let foreign_registry =
        dssddi_data::DrugRegistry::from_names(vec!["A".to_string(), "B".to_string()])
            .expect("registry");
    assert!(matches!(
        catalog.replace_kb(&key, KnowledgeBase::new(&foreign_registry)),
        Err(ServingError::FormularyMismatch { .. })
    ));
    // A matching KB swaps in (replace is `&self`: no exclusive catalog
    // access needed, which is what lets the gateway do this live).
    catalog.replace_kb(&key, kb).expect("swap kb");
    assert_eq!(catalog.kb(&key).expect("kb").version(), 1);
}

#[test]
fn client_timeouts_turn_a_hung_server_into_typed_errors() {
    // A listener that accepts connections and never answers: without
    // timeouts every call would block forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Keep accepted sockets alive (but silent) until the test ends.
        let mut streams = Vec::new();
        for stream in listener.incoming() {
            match stream {
                Ok(stream) => streams.push(stream),
                Err(_) => break,
            }
        }
    });

    let timeout = Duration::from_millis(200);
    let mut client = Client::connect_timeout(addr, timeout).expect("connects fine");
    let start = std::time::Instant::now();
    match client.list_models() {
        Err(ServingError::Wire(WireError::Timeout)) => {}
        other => panic!("expected Wire Timeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout must fire promptly, took {:?}",
        start.elapsed()
    );
    // The timed-out response may still be in flight, so the connection is
    // poisoned: the next call fails fast with a typed error instead of
    // risking a stale frame being delivered as the wrong request's answer.
    match client.stats() {
        Err(ServingError::Protocol { what }) => {
            assert!(what.contains("poisoned"), "got: {what}")
        }
        other => panic!("expected a poisoned-connection error, got {other:?}"),
    }
    drop(client);

    // A typed *remote error frame* does not poison: the stream stays
    // frame-aligned, so the connection keeps working (the gateway tests
    // exercise this continuously); only transport failures poison.
    drop(hold); // detached; the OS reclaims the listener with the process
}
