//! Client-side retry of `Overloaded` rejections, tested against a scripted
//! server: a raw `TcpListener` that answers each request frame from a
//! pre-programmed list of responses, so the test controls exactly how many
//! rejections a call sees before it succeeds.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use dssddi_serving::wire::{encode_response, read_frame, write_frame};
use dssddi_serving::{Client, ErrorCode, Response, RetryPolicy, ServingError};

/// Spawns a single-connection server that answers successive request frames
/// with `script`, in order, then closes. Returns its address and the thread
/// handle (joined for panic propagation).
fn scripted_server(script: Vec<Response>) -> (SocketAddr, std::thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted server");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut served = 0;
        for response in &script {
            if read_frame(&mut stream).is_err() {
                break; // client gave up early; that's the test's business
            }
            write_frame(&mut stream, &encode_response(response)).expect("write response");
            served += 1;
        }
        served
    });
    (addr, handle)
}

fn overloaded() -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: "per-model rate limit exhausted".to_string(),
    }
}

#[test]
fn retries_overloaded_until_success_within_budget() {
    // Two rejections, then the real answer: a 3-attempt policy succeeds.
    let script = vec![overloaded(), overloaded(), Response::ListModels(Vec::new())];
    let (addr, handle) = scripted_server(script);
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(
        Some(RetryPolicy::new(
            3,
            Duration::from_millis(2),
            Duration::from_millis(20),
        )),
        42,
    );
    let models = client.list_models().expect("third attempt succeeds");
    assert!(models.is_empty());
    assert_eq!(
        handle.join().expect("no panic"),
        3,
        "exactly 3 attempts hit the wire"
    );
}

#[test]
fn gives_up_after_max_attempts_with_the_typed_error() {
    // More rejections than the budget: the final error is the typed
    // Overloaded rejection, after exactly max_attempts wire exchanges.
    let script = vec![overloaded(), overloaded(), overloaded(), overloaded()];
    let (addr, handle) = scripted_server(script);
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(
        Some(RetryPolicy::new(
            2,
            Duration::from_millis(2),
            Duration::from_millis(20),
        )),
        7,
    );
    match client.list_models() {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Remote Overloaded, got {other:?}"),
    }
    drop(client);
    assert_eq!(
        handle.join().expect("no panic"),
        2,
        "budget caps the attempts"
    );
}

#[test]
fn without_a_policy_overloaded_fails_fast() {
    let script = vec![overloaded()];
    let (addr, handle) = scripted_server(script);
    let mut client = Client::connect(addr).expect("connect");
    match client.list_models() {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Remote Overloaded, got {other:?}"),
    }
    drop(client);
    assert_eq!(
        handle.join().expect("no panic"),
        1,
        "no retry without a policy"
    );
}

#[test]
fn non_overloaded_errors_are_never_retried() {
    // A retry policy must not mask caller bugs: UnknownModel comes straight
    // back on the first attempt.
    let script = vec![Response::Error {
        code: ErrorCode::UnknownModel,
        message: "unknown model".to_string(),
    }];
    let (addr, handle) = scripted_server(script);
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(
        Some(RetryPolicy::new(
            5,
            Duration::from_millis(2),
            Duration::from_millis(20),
        )),
        1,
    );
    match client.list_models() {
        Err(ServingError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected Remote UnknownModel, got {other:?}"),
    }
    drop(client);
    assert_eq!(handle.join().expect("no panic"), 1);
}

#[test]
fn backoff_grows_and_stays_bounded() {
    // Behavioural check on the schedule: with base 10 ms / max 40 ms and 4
    // attempts, the three backoffs (jittered into [0.5, 1.0) of 10, 20,
    // 40 ms) sum to at least 35 ms and at most 70 ms of sleeping.
    let script = vec![overloaded(), overloaded(), overloaded(), overloaded()];
    let (addr, handle) = scripted_server(script);
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(
        Some(RetryPolicy::new(
            4,
            Duration::from_millis(10),
            Duration::from_millis(40),
        )),
        99,
    );
    let start = Instant::now();
    assert!(client.list_models().is_err());
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(35),
        "backoffs too short: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "backoffs unbounded: {elapsed:?}"
    );
    drop(client);
    assert_eq!(handle.join().expect("no panic"), 4);
}
