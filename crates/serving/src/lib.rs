//! # dssddi-serving
//!
//! The multi-tenant serving gateway around [`dssddi_core::DecisionService`]:
//! the paper's decision support system is meant to sit inside a clinical
//! workflow and critique prescriptions for many patients across many chronic
//! conditions, so the real deployment surface is a *server*, not an
//! in-process struct. This crate redesigns the serving API around that
//! story:
//!
//! * [`router`] — [`ModelCatalog`] owns several fitted services keyed by a
//!   [`ModelKey`] (a disease/cohort shard), loaded from `DSSD` files;
//!   [`Router`] routes typed requests to the right shard and keeps per-model
//!   serving statistics (requests served, cache hit rate, p50/p99 latency).
//! * [`wire`] — a versioned, dependency-free binary wire protocol built on
//!   [`dssddi_tensor::serde`]'s `ByteWriter`/`ByteReader`: framed
//!   `Suggest` / `SuggestBatch` / `CheckPrescription` / `ListModels` /
//!   `Stats` request/response messages with magic bytes, protocol version,
//!   payload length and CRC-32. Malformed, truncated or version-mismatched
//!   frames produce typed errors and never panic.
//! * [`server`] — `dssddi-serve`'s engine: a `std::net::TcpListener`
//!   thread-per-connection [`Server`] over the sharded `suggest_batch`
//!   core.
//! * [`client`] — a blocking [`Client`] speaking the same wire protocol.
//! * [`telemetry`] — every hot point (admission sheds, queue wait,
//!   per-stage serving latency, severity-graded findings, replica sync,
//!   transport counters) reports into the process-wide [`dssddi_obs`]
//!   metrics registry; scrape it with `dssddi-serve --metrics-listen`.
//!   Requests carry an optional wire-propagated trace ID and the slowest
//!   recent requests land in a per-router exemplar ring, dumpable over the
//!   wire with [`Client::trace_dump`].
//!
//! The quickstart story becomes *train → save → serve → query over the
//! network*:
//!
//! ```no_run
//! use dssddi_core::{DecisionService, SuggestRequest, PatientId};
//! use dssddi_serving::{Client, ModelCatalog, ModelKey, Router, Server};
//!
//! // Serving host: load trained DSSD files into a catalog and serve them.
//! let mut catalog = ModelCatalog::new();
//! catalog.load_file(ModelKey::new("chronic")?, "chronic.dssd")?;
//! let server = Server::bind("127.0.0.1:0", Router::new(catalog))?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! // Clinical client: typed requests over the wire, typed responses back.
//! let mut client = Client::connect(addr)?;
//! for model in client.list_models()? {
//!     println!("{} (fitted: {})", model.key, model.fitted);
//! }
//! let request = SuggestRequest::new(PatientId::new(0), vec![0.0; 25], 3);
//! let response = client.suggest(&ModelKey::new("chronic")?, &request)?;
//! for drug in &response.drugs {
//!     println!("{}: {:.3}", drug.name, drug.score);
//! }
//! # Ok::<(), dssddi_serving::ServingError>(())
//! ```
//!
//! Responses are **byte-identical** to calling the fitted service
//! in-process: scores and suggestion-satisfaction values round-trip as
//! IEEE-754 bit patterns, and the integration tests assert bit-equality
//! between `Client` responses and `DecisionService::suggest_batch` for every
//! message type.

#![warn(missing_docs)]
// The serving path must degrade into typed errors, never panics: malformed
// frames, unknown models and damaged files are routine input for a
// long-lived gateway. The `unwrap_used`/`expect_used` denies are inherited
// from `[workspace.lints]`.

use std::fmt;

use dssddi_core::CoreError;
use dssddi_kb::KbError;

pub mod admission;
pub mod client;
pub mod demo;
pub mod router;
pub mod server;
pub mod telemetry;
pub mod wire;

pub use admission::{AdmissionConfig, RateLimit, TokenBucket};
pub use client::{Client, RetryPolicy};
pub use dssddi_kb::{AlertPolicy, KbInfo, KnowledgeBase, Severity};
pub use dssddi_obs::trace::TraceExemplar;
pub use router::{
    GatewayStats, KeyVersions, ModelCatalog, ModelInfo, ModelKey, ModelStats, ReplicaState,
    ReplicaStats, Router, StatsReport,
};
pub use server::{Server, ServerConfig, TransportStats};
pub use telemetry::register_metrics;
pub use wire::{ErrorCode, Request, Response, SyncArtifact, WireError};

/// The single error type of the serving gateway, covering routing, wire
/// protocol and transport failures on both ends of a connection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServingError {
    /// A model key failed validation.
    InvalidKey {
        /// Description of the offending key.
        what: String,
    },
    /// A model was registered under a key the catalog already holds.
    DuplicateModel {
        /// The contested key.
        key: String,
    },
    /// A request named a model the catalog does not hold.
    UnknownModel {
        /// The key the caller asked for.
        key: String,
        /// The keys the catalog actually serves.
        available: Vec<String>,
    },
    /// A hot-reload artifact (model or knowledge base) describes a
    /// different formulary than the live shard it would replace.
    FormularyMismatch {
        /// The shard key the reload targeted.
        key: String,
        /// Description of the mismatch.
        what: String,
    },
    /// A knowledge-base operation failed (malformed TSV, damaged `DSKB`
    /// container, foreign formulary).
    Kb(KbError),
    /// The routed service rejected the request (or failed to load).
    Core(CoreError),
    /// A wire frame could not be written, read or decoded.
    Wire(WireError),
    /// Admission control shed the request before it reached a model: the
    /// shard's token bucket or quota was exhausted, or the gateway's
    /// bounded request queue was full. The request never executed, so
    /// retrying after a backoff is safe (see [`client::RetryPolicy`]).
    Overloaded {
        /// The shard the request targeted ("*" for the global queue).
        key: String,
        /// Which limit shed the request.
        what: String,
    },
    /// A socket-level failure outside frame I/O (bind, connect, accept).
    Io {
        /// Description including the underlying error.
        what: String,
    },
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable server-side message.
        message: String,
    },
    /// The peer violated the protocol (e.g. answered a `Suggest` request
    /// with a `Stats` response).
    Protocol {
        /// Description of the violation.
        what: String,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::InvalidKey { what } => write!(f, "invalid model key: {what}"),
            ServingError::DuplicateModel { key } => {
                write!(f, "model key {key:?} is already registered in the catalog")
            }
            ServingError::UnknownModel { key, available } => write!(
                f,
                "unknown model {key:?}; this gateway serves: {}",
                if available.is_empty() {
                    "(no models)".to_string()
                } else {
                    available.join(", ")
                }
            ),
            ServingError::FormularyMismatch { key, what } => {
                write!(f, "reload rejected for model {key:?}: {what}")
            }
            ServingError::Kb(e) => write!(f, "knowledge base error: {e}"),
            ServingError::Core(e) => write!(f, "service error: {e}"),
            ServingError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServingError::Overloaded { key, what } => {
                write!(f, "overloaded: request for model {key:?} shed ({what})")
            }
            ServingError::Io { what } => write!(f, "i/o error: {what}"),
            ServingError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ServingError::Protocol { what } => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Core(e) => Some(e),
            ServingError::Wire(e) => Some(e),
            ServingError::Kb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServingError {
    fn from(e: CoreError) -> Self {
        ServingError::Core(e)
    }
}

impl From<KbError> for ServingError {
    fn from(e: KbError) -> Self {
        ServingError::Kb(e)
    }
}

impl From<WireError> for ServingError {
    fn from(e: WireError) -> Self {
        ServingError::Wire(e)
    }
}
