//! The DSSDDI serving gateway binary.
//!
//! Loads one or more trained `DSSD` model files into a [`ModelCatalog`] and
//! serves them over TCP with the versioned wire protocol — the *train →
//! save → serve → query* deployment story of the decision support system.
//!
//! ```text
//! dssddi-serve [--listen ADDR] [--demo] [--seed S] [--kb KEY=PATH.dskb ...]
//!              [KEY=PATH.dssd ...]
//!
//!   --listen ADDR   address to bind (default 127.0.0.1:7878; port 0 picks
//!                   an ephemeral port, printed on startup)
//!   --demo          train and serve the deterministic demo catalog
//!                   (shards "chronic" and "critique") instead of, or in
//!                   addition to, loading files
//!   --seed S        demo training seed (default 7)
//!   --kb KEY=PATH   load PATH (a KnowledgeBase::save DSKB file) as the
//!                   clinical knowledge base of shard KEY; repeatable.
//!                   Shards without one critique against a KB seeded from
//!                   their own DDI graph (severity defaults by sign).
//!   KEY=PATH        load PATH (a DecisionService::save file) under the
//!                   routing key KEY; repeatable
//! ```
//!
//! On startup the gateway prints exactly one line
//! `dssddi-serve listening on <addr>` to stdout, so wrappers (CI, scripts)
//! can scrape the ephemeral port. It exits cleanly when a client sends the
//! `Shutdown` message.

use std::process::ExitCode;

use dssddi_serving::demo::{demo_catalog, DEMO_SEED};
use dssddi_serving::{ModelCatalog, ModelKey, Router, Server};

struct Args {
    listen: String,
    demo: bool,
    seed: u64,
    models: Vec<(String, String)>,
    kbs: Vec<(String, String)>,
}

fn usage() -> &'static str {
    "usage: dssddi-serve [--listen ADDR] [--demo] [--seed S] \
     [--kb KEY=PATH.dskb ...] [KEY=PATH.dssd ...]\n\
     serve trained DSSD model files (or the --demo catalog) over TCP, each \
     paired with a clinical knowledge base (--kb, or seeded from the \
     shard's DDI graph)"
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        listen: "127.0.0.1:7878".to_string(),
        demo: false,
        seed: DEMO_SEED,
        models: Vec::new(),
        kbs: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                parsed.listen = args
                    .get(i)
                    .ok_or("--listen needs an address argument")?
                    .clone();
            }
            "--kb" => {
                i += 1;
                let spec = args.get(i).ok_or("--kb needs a KEY=PATH.dskb argument")?;
                let (key, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --kb {spec:?} (expected KEY=PATH.dskb)"))?;
                parsed.kbs.push((key.to_string(), path.to_string()));
            }
            "--demo" => parsed.demo = true,
            "--seed" => {
                i += 1;
                parsed.seed = args
                    .get(i)
                    .ok_or("--seed needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => {
                let (key, path) = other.split_once('=').ok_or_else(|| {
                    format!("unrecognised argument {other:?} (model files are KEY=PATH)")
                })?;
                parsed.models.push((key.to_string(), path.to_string()));
            }
        }
        i += 1;
    }
    Ok(parsed)
}

fn build_catalog(args: &Args) -> Result<ModelCatalog, String> {
    let mut catalog = if args.demo {
        eprintln!(
            "dssddi-serve: training demo catalog (seed {}) ...",
            args.seed
        );
        let (catalog, _world) =
            demo_catalog(args.seed).map_err(|e| format!("training demo catalog: {e}"))?;
        catalog
    } else {
        ModelCatalog::new()
    };
    for (key, path) in &args.models {
        let key = ModelKey::new(key.as_str()).map_err(|e| e.to_string())?;
        catalog
            .load_file(key.clone(), path)
            .map_err(|e| format!("loading {path:?} as {key}: {e}"))?;
        eprintln!("dssddi-serve: loaded {path:?} as model {key:?}");
    }
    if catalog.is_empty() {
        return Err(format!("no models to serve\n{}", usage()));
    }
    for (key, path) in &args.kbs {
        let key = ModelKey::new(key.as_str()).map_err(|e| e.to_string())?;
        catalog
            .load_kb_file(&key, path)
            .map_err(|e| format!("loading {path:?} as knowledge base of {key}: {e}"))?;
        eprintln!("dssddi-serve: loaded {path:?} as knowledge base of {key:?}");
    }
    Ok(catalog)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let catalog = match build_catalog(&args) {
        Ok(catalog) => catalog,
        Err(message) => {
            eprintln!("dssddi-serve: {message}");
            return ExitCode::from(2);
        }
    };
    let keys: Vec<String> = catalog.keys().iter().map(|k| k.to_string()).collect();
    let server = match Server::bind(args.listen.as_str(), Router::new(catalog)) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("dssddi-serve: cannot bind {}: {error}", args.listen);
            return ExitCode::from(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // The single scrape-able startup line; everything else goes to
            // stderr so wrappers can rely on stdout's shape.
            println!("dssddi-serve listening on {addr}");
            eprintln!("dssddi-serve: serving models: {}", keys.join(", "));
        }
        Err(error) => {
            eprintln!("dssddi-serve: cannot read bound address: {error}");
            return ExitCode::from(1);
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("dssddi-serve: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("dssddi-serve: server failed: {error}");
            ExitCode::from(1)
        }
    }
}
