//! Deterministic demo fixtures: a small trained gateway for examples, CI
//! smoke tests and `dssddi-serve --demo`.
//!
//! Server and client are separate processes, so they share fixtures by
//! *reconstruction*: both sides derive the same cohort from [`DEMO_SEED`],
//! which lets the client example send real held-out patient features to a
//! `--demo` server it has never exchanged training data with.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_core::{PatientId, ServiceBuilder, SuggestRequest};
use dssddi_data::{
    generate_chronic_cohort, generate_ddi_graph, ChronicCohort, ChronicConfig, DdiConfig,
    DrugRegistry,
};
use dssddi_tensor::Matrix;

use crate::router::{ModelCatalog, ModelKey};
use crate::ServingError;

/// Seed both sides of a demo derive their fixtures from.
pub const DEMO_SEED: u64 = 7;

/// Key of the fitted chronic-cohort shard in the demo catalog.
pub const DEMO_FITTED_KEY: &str = "chronic";

/// Key of the support-only (critique) shard in the demo catalog.
pub const DEMO_SUPPORT_KEY: &str = "critique";

/// Patients in the demo cohort; the tail beyond the observed split is
/// held out for querying.
const DEMO_PATIENTS: usize = 70;
const DEMO_OBSERVED: usize = 55;

/// The shared demo world: formulary, DDI graph and synthetic cohort.
pub struct DemoWorld {
    /// The standard 86-drug formulary.
    pub registry: DrugRegistry,
    /// The paper-sized signed DDI graph.
    pub ddi: dssddi_graph::SignedGraph,
    /// The synthetic chronic cohort.
    pub cohort: ChronicCohort,
    /// Random drug features standing in for the KG embeddings.
    pub drug_features: Matrix,
    /// Patients not seen in training — what the client example queries.
    pub held_out: Vec<usize>,
}

/// Builds the demo world deterministically from a seed.
pub fn demo_world(seed: u64) -> Result<DemoWorld, ServingError> {
    let registry = DrugRegistry::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng)
        .map_err(dssddi_core::CoreError::Data)?;
    let cohort = generate_chronic_cohort(
        &registry,
        &ddi,
        &ChronicConfig {
            n_patients: DEMO_PATIENTS,
            ..Default::default()
        },
        &mut rng,
    )
    .map_err(dssddi_core::CoreError::Data)?;
    let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
    Ok(DemoWorld {
        registry,
        ddi,
        cohort,
        drug_features,
        held_out: (DEMO_OBSERVED..DEMO_PATIENTS).collect(),
    })
}

/// Trains the demo catalog: a fitted `chronic` shard and a support-only
/// `critique` shard over the same DDI graph. Deterministic in `seed`.
pub fn demo_catalog(seed: u64) -> Result<(ModelCatalog, DemoWorld), ServingError> {
    let world = demo_world(seed)?;
    let observed: Vec<usize> = (0..DEMO_OBSERVED).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let fitted = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(
            &world.cohort,
            &observed,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )?;
    let support = ServiceBuilder::fast().build_support(&world.ddi)?;
    let mut catalog = ModelCatalog::new();
    catalog.insert(ModelKey::new(DEMO_FITTED_KEY)?, fitted)?;
    catalog.insert(ModelKey::new(DEMO_SUPPORT_KEY)?, support)?;
    Ok((catalog, world))
}

/// Top-`k` suggestion requests for the first `n` held-out demo patients.
pub fn demo_requests(world: &DemoWorld, n: usize, k: usize) -> Vec<SuggestRequest> {
    world
        .held_out
        .iter()
        .take(n)
        .map(|&p| {
            SuggestRequest::new(
                PatientId::new(p),
                world.cohort.features().row(p).to_vec(),
                k,
            )
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn demo_catalog_is_deterministic_and_two_sharded() {
        let (catalog, world) = demo_catalog(DEMO_SEED).unwrap();
        assert_eq!(catalog.len(), 2);
        let fitted_key = ModelKey::new(DEMO_FITTED_KEY).unwrap();
        let support_key = ModelKey::new(DEMO_SUPPORT_KEY).unwrap();
        assert!(catalog.service(&fitted_key).unwrap().is_fitted());
        assert!(!catalog.service(&support_key).unwrap().is_fitted());
        let requests = demo_requests(&world, 3, 3);
        assert_eq!(requests.len(), 3);
        // Rebuilding the world reproduces the same features bit for bit —
        // the property the out-of-process client example relies on.
        let again = demo_world(DEMO_SEED).unwrap();
        assert_eq!(
            world.cohort.features().data(),
            again.cohort.features().data()
        );
    }
}
