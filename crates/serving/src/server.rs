//! The gateway server: a thread-per-connection TCP front-end over the
//! [`Router`].
//!
//! Each accepted connection gets its own handler thread that reads framed
//! requests, dispatches them through the shared router (so per-model stats
//! aggregate across connections) and writes framed responses back. The
//! sharded `suggest_batch` core does the heavy lifting; the server adds only
//! transport.
//!
//! Failure containment is the design center: a malformed or corrupt frame
//! produces a typed [`Response::Error`] on that connection — or, when the
//! stream can no longer be trusted to be frame-aligned, closes *that*
//! connection — and never takes the gateway down. A peer that stalls
//! mid-frame (including a slow-loris trickling bytes just under the idle
//! timeout) is reaped by the per-frame deadline and counted in
//! [`TransportStats`]; a configured connection bound sheds excess
//! connections with a typed `Overloaded` frame instead of letting handler
//! threads grow without limit. Only an explicit `Shutdown` message ends
//! the accept loop, and the drain then finishes every in-flight request
//! before `run` returns.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::router::{GatewayStats, Router};
use crate::telemetry;
use crate::wire::{self, Request, WireError};
use crate::ServingError;

/// Gateway-wide transport counters, shared between the accept loop, every
/// handler thread and the router (which serves them in `Stats` responses
/// as [`GatewayStats`]). All atomics — no locks on the serving path.
#[derive(Debug, Default)]
pub struct TransportStats {
    accepted: AtomicU64,
    active: AtomicU64,
    shed: AtomicU64,
    stalled: AtomicU64,
}

impl TransportStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> GatewayStats {
        GatewayStats {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_active: self.active.load(Ordering::Relaxed),
            connections_shed: self.shed.load(Ordering::Relaxed),
            stalled_reaped: self.stalled.load(Ordering::Relaxed),
        }
    }
}

/// Tuning knobs of a [`Server`], with production defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Upper bound on concurrently served connections. At the bound, new
    /// connections are answered with one typed `Overloaded` error frame
    /// and closed (a typed shed, counted in [`GatewayStats`]) — handler
    /// threads can never grow without limit. `None` = unbounded.
    pub max_connections: Option<usize>,
    /// Wall-clock deadline for receiving one complete frame, measured from
    /// its first byte. A peer that has not completed a frame in time —
    /// stalled silent *or* trickling slow-loris bytes — is reaped with a
    /// typed timeout. Generous by default: multi-megabyte reload uploads
    /// are legitimate slow frames.
    pub frame_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: None,
            frame_deadline: FRAME_DEADLINE,
        }
    }
}

/// A bound, not-yet-running gateway server.
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    transport: Arc<TransportStats>,
    config: ServerConfig,
}

impl Server {
    /// Binds the gateway to an address with default [`ServerConfig`]. Use
    /// port `0` for an ephemeral port and read the actual one back with
    /// [`Server::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, router: Router) -> Result<Self, ServingError> {
        Self::bind_with_config(addr, router, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit limits (connection bound, per-frame
    /// deadline).
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        mut router: Router,
        config: ServerConfig,
    ) -> Result<Self, ServingError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServingError::Io {
            what: format!("binding listener: {e}"),
        })?;
        let transport = Arc::new(TransportStats::default());
        // Attach while the router is still exclusively ours, so `Stats`
        // responses report these counters without any lock.
        router.attach_transport(Arc::clone(&transport));
        Ok(Self {
            listener,
            router: Arc::new(router),
            shutdown: Arc::new(AtomicBool::new(false)),
            transport,
            config,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> Result<SocketAddr, ServingError> {
        self.listener.local_addr().map_err(|e| ServingError::Io {
            what: format!("reading local address: {e}"),
        })
    }

    /// The shared router, e.g. for inspecting stats from the serving
    /// process itself.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// A shared handle to the router, for components that outlive the
    /// borrow — a replica agent applies anti-entropy pulls through this
    /// while the server's run loop owns `self`.
    pub fn router_arc(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// Runs the accept loop until a client sends `Shutdown`, then drains:
    /// handler threads finish the request they are serving (idle
    /// connections close within one poll interval) before `run` returns.
    /// Each connection is served by its own thread; a connection-level
    /// failure never ends the loop.
    pub fn run(self) -> Result<(), ServingError> {
        let local = self.local_addr()?;
        // The address the shutdown handler pokes to wake this loop out of
        // `accept`. A wildcard bind (0.0.0.0 / ::) is not connectable on
        // every platform, so poke the same port on the matching loopback.
        let wake = if local.ip().is_unspecified() {
            let loopback: std::net::IpAddr = match local {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, local.port())
        } else {
            local
        };
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    self.transport.accepted.fetch_add(1, Ordering::Relaxed);
                    telemetry::handles().connections_accepted.inc();
                    // Reap finished handlers so the list tracks live
                    // connections, not connection history.
                    handlers.retain(|handle| !handle.is_finished());
                    // Bounded connection count: at the cap, shed with one
                    // typed error frame instead of spawning a handler. The
                    // active gauge is incremented *here*, before the spawn,
                    // so a burst of accepts cannot overshoot the bound.
                    let active = self.transport.active.fetch_add(1, Ordering::SeqCst);
                    telemetry::handles().connections_active.inc();
                    if self
                        .config
                        .max_connections
                        .is_some_and(|cap| active as usize >= cap)
                    {
                        self.transport.active.fetch_sub(1, Ordering::SeqCst);
                        self.transport.shed.fetch_add(1, Ordering::Relaxed);
                        let metrics = telemetry::handles();
                        metrics.connections_active.dec();
                        metrics.connections_shed.inc();
                        shed_connection(stream, self.config.max_connections.unwrap_or(0));
                        continue;
                    }
                    let router = Arc::clone(&self.router);
                    let shutdown = Arc::clone(&self.shutdown);
                    let transport = Arc::clone(&self.transport);
                    let deadline = self.config.frame_deadline;
                    handlers.push(std::thread::spawn(move || {
                        // Balance the increment above whatever way the
                        // handler exits.
                        let _active = ActiveGuard(&transport);
                        handle_connection(stream, &router, &shutdown, wake, &transport, deadline);
                    }));
                }
                // A failed accept with the peer gone mid-handshake is
                // routine. But accept errors can also be persistent resource
                // exhaustion (EMFILE/ENFILE when fds run out) — without a
                // pause, `continue` would turn this loop into a busy spin
                // that starves the handlers that could release those fds.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            }
        }
        // Drain: every handler observes the shutdown flag after its current
        // request, or on its next idle poll, so these joins are bounded.
        for handle in handlers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Decrements the active-connection gauge when a handler exits, however it
/// exits.
struct ActiveGuard<'a>(&'a TransportStats);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        telemetry::handles().connections_active.dec();
    }
}

/// Answers a connection shed at the bound with one typed `Overloaded`
/// frame, then closes it. Best-effort: the peer may already be gone.
fn shed_connection(mut stream: TcpStream, cap: usize) {
    let error = ServingError::Overloaded {
        key: "gateway".to_string(),
        what: format!("connection limit of {cap} reached"),
    };
    let response = wire::error_response(&error);
    let _ = wire::write_frame(&mut stream, &wire::encode_response(&response));
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("models", &self.router.catalog().keys())
            .field("config", &self.config)
            .finish()
    }
}

/// How often an idle connection wakes from its blocking read to check the
/// shutdown flag. Bounds the post-shutdown drain time of idle keep-alive
/// connections without disturbing active ones.
const IDLE_POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(250);

/// Consecutive idle-poll expiries tolerated *mid-frame* before the peer is
/// declared stalled and the connection dropped: 40 polls × 250 ms ≈ 10 s of
/// total silence. Multi-megabyte `ReloadModel`/`ReloadKb` uploads routinely
/// cross several poll intervals on real networks; one TCP retransmission
/// pause must not sever them. (This also bounds the post-shutdown drain
/// when a peer stalls mid-frame — at most the same ~10 s.)
const MID_FRAME_STALL_POLLS: u32 = 40;

/// Default wall-clock deadline for one complete frame, from its first byte
/// (see [`ServerConfig::frame_deadline`]). Matches the silent-stall bound:
/// 40 polls × 250 ms. Unlike the consecutive-stall budget, this also reaps
/// slow-loris peers whose trickle keeps resetting that counter.
const FRAME_DEADLINE: Duration = Duration::from_secs(10);

/// Serves one connection until it closes, fails, or the gateway shuts down.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
    wake: SocketAddr,
    transport: &TransportStats,
    frame_deadline: Duration,
) {
    // Frames are written in one piece; waiting for coalescing only adds
    // latency on the small request/response frames exchanged here.
    stream.set_nodelay(true).ok();
    // The read timeout makes idle waits poll the shutdown flag; a timeout
    // that fires *before any frame byte* surfaces as IdleTimeout, one that
    // fires mid-frame means the peer stalled and the connection is dropped.
    stream.set_read_timeout(Some(IDLE_POLL_INTERVAL)).ok();
    loop {
        let (trace, payload) =
            match wire::read_frame_traced(&mut stream, MID_FRAME_STALL_POLLS, Some(frame_deadline))
            {
                Ok(traced) => traced,
                Err(WireError::IdleTimeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(WireError::ConnectionClosed) => return,
                Err(WireError::Timeout) => {
                    // The peer stalled mid-frame past the deadline (silent, or
                    // a slow-loris trickle): reap the connection and count it.
                    transport.stalled.fetch_add(1, Ordering::Relaxed);
                    telemetry::handles().stalled_reaped.inc();
                    return;
                }
                Err(WireError::Io { .. }) => return,
                Err(error) => {
                    // Bad magic, version mismatch, truncation, CRC failure or an
                    // oversized length: answer with a typed error, then close —
                    // after a framing failure the stream may no longer be
                    // frame-aligned, so continuing could misparse every later
                    // byte. The *gateway* stays up; only this connection ends.
                    let response = wire::error_response(&ServingError::Wire(error));
                    let _ = wire::write_frame(&mut stream, &wire::encode_response(&response));
                    return;
                }
            };
        let decode_start = Instant::now();
        let request = match wire::decode_request(&payload) {
            Ok(request) => request,
            Err(error) => {
                // The frame itself validated (length + CRC), so the stream
                // is still aligned: report the malformed body and keep the
                // connection alive.
                let response = wire::error_response(&ServingError::Wire(WireError::Decode(error)));
                if wire::write_frame(&mut stream, &wire::encode_response(&response)).is_err() {
                    return;
                }
                continue;
            }
        };
        let decode_micros = decode_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let shutting_down = matches!(request, Request::Shutdown);
        // The router encodes the response itself so the per-model latency
        // sample covers the wire encode — the time a client actually waits.
        // The request's trace ID (if any) rides along into the router's
        // span recorder and back out on the response frame.
        let frame = router.serve_framed_traced(&request, trace, decode_micros);
        if wire::write_frame(&mut stream, &frame).is_err() {
            return;
        }
        if shutting_down {
            shutdown.store(true, Ordering::SeqCst);
            // The accept loop is parked in `accept`; poke it awake so it
            // observes the flag and exits.
            let _ = TcpStream::connect(wake);
            return;
        }
        // Drain semantics: once shutdown is requested, finish the request
        // that was already in flight (just answered above), then close
        // instead of taking new work from this connection.
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}
