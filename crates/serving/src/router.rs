//! The model catalog and router: several fitted services behind one typed
//! serving surface.
//!
//! A production deployment of the paper's system shards by disease, cohort
//! or region: each shard is one fitted [`DecisionService`] persisted to a
//! `DSSD` file. [`ModelCatalog`] owns the loaded shards keyed by
//! [`ModelKey`]; [`Router`] dispatches typed requests to the right shard
//! and keeps per-model serving statistics — requests served, error count,
//! explanation-cache hit rate, and p50/p99 latency over a sliding window —
//! surfaced locally via [`Router::stats`] and remotely via the `Stats` wire
//! message.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dssddi_core::{
    CheckPrescriptionRequest, DecisionService, InteractionReport, SuggestRequest, SuggestResponse,
};
use dssddi_data::DrugRegistry;

use crate::ServingError;

/// Maximum length of a model key, in bytes.
pub const MAX_MODEL_KEY_LEN: usize = 64;

/// Latency samples kept per model for the percentile estimates: enough for
/// stable p99 figures, small enough that a long-lived gateway's stats stay
/// O(1) per shard.
const LATENCY_WINDOW: usize = 1024;

/// Identifies one model shard in the catalog (e.g. `chronic`,
/// `mimic/icu`, `region-hk.hypertension`).
///
/// Keys are non-empty, at most [`MAX_MODEL_KEY_LEN`] bytes, and restricted
/// to ASCII alphanumerics plus `-`, `_`, `.` and `/` — a charset that
/// survives command lines, file names and log lines unescaped.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey(String);

impl ModelKey {
    /// Validates and wraps a key.
    pub fn new(key: impl Into<String>) -> Result<Self, ServingError> {
        let key = key.into();
        if key.is_empty() {
            return Err(ServingError::InvalidKey {
                what: "model keys must be non-empty".to_string(),
            });
        }
        if key.len() > MAX_MODEL_KEY_LEN {
            return Err(ServingError::InvalidKey {
                what: format!(
                    "model key is {} bytes, above the {MAX_MODEL_KEY_LEN}-byte limit",
                    key.len()
                ),
            });
        }
        if let Some(bad) = key
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '/')))
        {
            return Err(ServingError::InvalidKey {
                what: format!(
                    "model key {key:?} contains {bad:?}; allowed are ASCII alphanumerics \
                     and '-', '_', '.', '/'"
                ),
            });
        }
        Ok(ModelKey(key))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for ModelKey {
    type Err = ServingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKey::new(s)
    }
}

/// What a gateway advertises about one shard in `ListModels` responses:
/// enough for a remote caller to pick a shard and size requests for it
/// without holding the training data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The shard's routing key.
    pub key: ModelKey,
    /// True when the shard carries a trained model (suggestion works);
    /// false for support-only shards (prescription critique only).
    pub fitted: bool,
    /// Number of drugs in the shard's formulary.
    pub n_drugs: usize,
    /// Length of the feature vectors the shard's model expects
    /// (`None` for support-only shards).
    pub n_features: Option<usize>,
    /// FNV digest of the shard's DID-ordered drug names — lets a caller
    /// verify it holds the same formulary before trusting returned DIDs.
    pub registry_digest: u64,
    /// The DDIGCN backbone the shard was configured with.
    pub backbone: String,
}

/// Per-model serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Individual requests served (a batch of 16 counts 16).
    pub requests: u64,
    /// Requests that ended in an error.
    pub errors: u64,
    /// Cumulative explanation-cache hits of the shard's service.
    pub cache_hits: u64,
    /// Cumulative explanation-cache misses of the shard's service.
    pub cache_misses: u64,
    /// Median routed-call latency in milliseconds over the sliding window.
    pub p50_ms: f64,
    /// 99th-percentile routed-call latency in milliseconds over the window.
    pub p99_ms: f64,
}

impl ModelStats {
    /// Fraction of explanation lookups answered from the cache
    /// (0.0 when nothing has been looked up yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Sliding window of routed-call latencies (microseconds).
struct LatencyWindow {
    samples: Vec<u64>,
    /// Next slot to overwrite once the window is full.
    next: usize,
}

impl LatencyWindow {
    fn new() -> Self {
        Self {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
        }
    }

    fn record(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// `(p50_ms, p99_ms)` over the window (zeros before the first sample).
    fn percentiles_ms(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = |pct: f64| {
            let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)] as f64 / 1e3
        };
        (rank(50.0), rank(99.0))
    }
}

/// One shard: the service plus its serving counters.
struct ModelEntry {
    service: DecisionService,
    requests: AtomicU64,
    errors: AtomicU64,
    latencies: Mutex<LatencyWindow>,
}

impl ModelEntry {
    fn new(service: DecisionService) -> Self {
        Self {
            service,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies: Mutex::new(LatencyWindow::new()),
        }
    }

    /// Records one routed call: `n_requests` individual requests answered
    /// in `elapsed_micros`, successfully or not.
    fn record(&self, n_requests: u64, elapsed_micros: u64, ok: bool) {
        self.requests.fetch_add(n_requests, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(n_requests, Ordering::Relaxed);
        }
        // Same poisoning stance as the service's explanation cache: the
        // window only holds samples, so state left by a panicking thread is
        // still a valid window.
        let mut window = self
            .latencies
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        window.record(elapsed_micros);
    }

    fn stats(&self) -> ModelStats {
        let (p50_ms, p99_ms) = {
            let window = self
                .latencies
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            window.percentiles_ms()
        };
        let (cache_hits, cache_misses) = self.service.explanation_cache_stats();
        ModelStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: cache_hits as u64,
            cache_misses: cache_misses as u64,
            p50_ms,
            p99_ms,
        }
    }

    fn info(&self, key: &ModelKey) -> ModelInfo {
        ModelInfo {
            key: key.clone(),
            fitted: self.service.is_fitted(),
            n_drugs: self.service.registry().len(),
            n_features: self.service.n_features(),
            registry_digest: self.service.registry().digest(),
            backbone: self.service.config().ddi.backbone.name().to_string(),
        }
    }
}

/// Owns the loaded model shards of a gateway, keyed by [`ModelKey`].
#[derive(Default)]
pub struct ModelCatalog {
    models: BTreeMap<ModelKey, ModelEntry>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The registered keys, in sorted order.
    pub fn keys(&self) -> Vec<&ModelKey> {
        self.models.keys().collect()
    }

    /// The shard behind a key, when registered.
    pub fn service(&self, key: &ModelKey) -> Option<&DecisionService> {
        self.models.get(key).map(|entry| &entry.service)
    }

    /// Registers an in-process service under a key. Each key routes to
    /// exactly one shard; re-registering is a typed error (a gateway that
    /// silently swapped a model under a live key would serve two different
    /// formularies to one client).
    pub fn insert(&mut self, key: ModelKey, service: DecisionService) -> Result<(), ServingError> {
        if self.models.contains_key(&key) {
            return Err(ServingError::DuplicateModel {
                key: key.as_str().to_string(),
            });
        }
        self.models.insert(key, ModelEntry::new(service));
        Ok(())
    }

    /// Loads a `DSSD` file into the catalog, reconstructing the formulary
    /// from the registry embedded in the file
    /// ([`DecisionService::load_with_embedded_registry`]) — the usual path
    /// for a serving host that receives only trained artifacts.
    pub fn load_file(&mut self, key: ModelKey, path: impl AsRef<Path>) -> Result<(), ServingError> {
        let service = DecisionService::load_with_embedded_registry(path)?;
        self.insert(key, service)
    }

    /// Loads a `DSSD` file into the catalog, verifying it against a
    /// caller-held registry name by name ([`DecisionService::load`]).
    pub fn load_file_with_registry(
        &mut self,
        key: ModelKey,
        path: impl AsRef<Path>,
        registry: DrugRegistry,
    ) -> Result<(), ServingError> {
        let service = DecisionService::load(path, registry)?;
        self.insert(key, service)
    }
}

impl fmt::Debug for ModelCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelCatalog")
            .field("models", &self.keys())
            .finish()
    }
}

/// Routes typed requests to the right catalog shard and records per-model
/// serving statistics. The router is `Sync`: one instance serves all
/// connection threads of a gateway.
#[derive(Debug)]
pub struct Router {
    catalog: ModelCatalog,
}

impl Router {
    /// A router over a catalog.
    pub fn new(catalog: ModelCatalog) -> Self {
        Self { catalog }
    }

    /// The catalog behind the router.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.catalog
    }

    fn entry(&self, key: &ModelKey) -> Result<&ModelEntry, ServingError> {
        self.catalog
            .models
            .get(key)
            .ok_or_else(|| ServingError::UnknownModel {
                key: key.as_str().to_string(),
                available: self
                    .catalog
                    .models
                    .keys()
                    .map(|k| k.as_str().to_string())
                    .collect(),
            })
    }

    /// Runs one routed call against a shard, recording request count,
    /// latency and outcome.
    fn routed<T>(
        &self,
        key: &ModelKey,
        n_requests: u64,
        call: impl FnOnce(&DecisionService) -> Result<T, dssddi_core::CoreError>,
    ) -> Result<T, ServingError> {
        let entry = self.entry(key)?;
        let start = Instant::now();
        let result = call(&entry.service);
        let elapsed_micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        entry.record(n_requests, elapsed_micros, result.is_ok());
        result.map_err(ServingError::Core)
    }

    /// Serves one suggestion request on the shard behind `key`.
    pub fn suggest(
        &self,
        key: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        self.routed(key, 1, |service| service.suggest(request))
    }

    /// Serves a batch of suggestion requests on the shard behind `key`
    /// (one sharded prediction pass, responses in request order).
    pub fn suggest_batch(
        &self,
        key: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        self.routed(key, requests.len() as u64, |service| {
            service.suggest_batch(requests)
        })
    }

    /// Critiques a prescription against the shard behind `key`.
    pub fn check_prescription(
        &self,
        key: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        self.routed(key, 1, |service| service.check_prescription(request))
    }

    /// Advertises every shard, in key order.
    pub fn list_models(&self) -> Vec<ModelInfo> {
        self.catalog
            .models
            .iter()
            .map(|(key, entry)| entry.info(key))
            .collect()
    }

    /// Per-model serving statistics, in key order.
    pub fn stats(&self) -> Vec<(ModelKey, ModelStats)> {
        self.catalog
            .models
            .iter()
            .map(|(key, entry)| (key.clone(), entry.stats()))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn model_keys_validate_charset_and_length() {
        for good in ["chronic", "mimic/icu", "region-hk.hypertension_v2", "a"] {
            assert_eq!(ModelKey::new(good).unwrap().as_str(), good);
        }
        for bad in ["", "white space", "naïve", "semi;colon", "tab\there"] {
            assert!(matches!(
                ModelKey::new(bad),
                Err(ServingError::InvalidKey { .. })
            ));
        }
        assert!(ModelKey::new("k".repeat(MAX_MODEL_KEY_LEN)).is_ok());
        assert!(ModelKey::new("k".repeat(MAX_MODEL_KEY_LEN + 1)).is_err());
        let parsed: ModelKey = "chronic".parse().unwrap();
        assert_eq!(parsed.to_string(), "chronic");
    }

    #[test]
    fn latency_window_slides_and_ranks() {
        let mut window = LatencyWindow::new();
        assert_eq!(window.percentiles_ms(), (0.0, 0.0));
        for micros in [1000u64, 2000, 3000, 4000, 5000] {
            window.record(micros);
        }
        let (p50, p99) = window.percentiles_ms();
        assert_eq!(p50, 3.0);
        assert_eq!(p99, 5.0);
        // Overflowing the window overwrites the oldest samples.
        for _ in 0..LATENCY_WINDOW {
            window.record(7000);
        }
        let (p50, p99) = window.percentiles_ms();
        assert_eq!((p50, p99), (7.0, 7.0));
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let stats = ModelStats {
            requests: 0,
            errors: 0,
            cache_hits: 0,
            cache_misses: 0,
            p50_ms: 0.0,
            p99_ms: 0.0,
        };
        assert_eq!(stats.cache_hit_rate(), 0.0);
        let stats = ModelStats {
            cache_hits: 3,
            cache_misses: 1,
            ..stats
        };
        assert_eq!(stats.cache_hit_rate(), 0.75);
    }
}
