//! The model catalog and router: several fitted services behind one typed
//! serving surface.
//!
//! A production deployment of the paper's system shards by disease, cohort
//! or region: each shard is one fitted [`DecisionService`] persisted to a
//! `DSSD` file, *paired with* a clinical [`KnowledgeBase`] (`DSKB` file)
//! that grades its interaction findings. [`ModelCatalog`] owns the loaded
//! shards keyed by [`ModelKey`]; [`Router`] dispatches typed requests to
//! the right shard and keeps per-model serving statistics — requests
//! served, error counts broken down by [`ErrorCode`], explanation-cache
//! hit rate, and p50/p99 latency over a sliding window — surfaced locally
//! via [`Router::stats`] and remotely via the `Stats` wire message.
//!
//! ## Hot reload
//!
//! Both halves of a shard sit behind their own `RwLock<Arc<...>>`, so a
//! re-trained model ([`ModelCatalog::replace`], wire `ReloadModel`) or an
//! updated knowledge base ([`ModelCatalog::replace_kb`], wire `ReloadKb`)
//! can be swapped in *under a live key with zero dropped connections*:
//! requests in flight finish on the `Arc` they cloned, new requests pick up
//! the replacement, and the shard's serving counters survive the swap. A
//! replacement must describe the same formulary (registry digest) as the
//! shard it replaces — a gateway that silently swapped formularies under a
//! live key would resolve the same DIDs to different drugs.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dssddi_core::{
    CheckPrescriptionRequest, DecisionService, InteractionReport, SuggestRequest, SuggestResponse,
};
use dssddi_data::DrugRegistry;
use dssddi_kb::{KbInfo, KnowledgeBase};
use dssddi_obs::trace::{next_trace_id, SpanRecorder, Stage, TraceExemplar, TraceRing};

use crate::admission::{AdmissionConfig, GlobalQueue, TokenBucket};
use crate::telemetry;
use crate::wire::{self, ErrorCode, Request, Response};
use crate::ServingError;

/// Maximum length of a model key, in bytes.
pub const MAX_MODEL_KEY_LEN: usize = 64;

/// Latency samples kept per model for the percentile estimates: enough for
/// stable p99 figures, small enough that a long-lived gateway's stats stay
/// O(1) per shard.
const LATENCY_WINDOW: usize = 1024;

/// Slow-request exemplars the gateway keeps (top-K by end-to-end latency),
/// served by the `TraceDump` wire message. Small enough that the snapshot a
/// dump clones is negligible next to one model call.
const TRACE_RING_CAPACITY: usize = 64;

/// Identifies one model shard in the catalog (e.g. `chronic`,
/// `mimic/icu`, `region-hk.hypertension`).
///
/// Keys are non-empty, at most [`MAX_MODEL_KEY_LEN`] bytes, and restricted
/// to ASCII alphanumerics plus `-`, `_`, `.` and `/` — a charset that
/// survives command lines, file names and log lines unescaped.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey(String);

impl ModelKey {
    /// Validates and wraps a key.
    pub fn new(key: impl Into<String>) -> Result<Self, ServingError> {
        let key = key.into();
        if key.is_empty() {
            return Err(ServingError::InvalidKey {
                what: "model keys must be non-empty".to_string(),
            });
        }
        if key.len() > MAX_MODEL_KEY_LEN {
            return Err(ServingError::InvalidKey {
                what: format!(
                    "model key is {} bytes, above the {MAX_MODEL_KEY_LEN}-byte limit",
                    key.len()
                ),
            });
        }
        if let Some(bad) = key
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '/')))
        {
            return Err(ServingError::InvalidKey {
                what: format!(
                    "model key {key:?} contains {bad:?}; allowed are ASCII alphanumerics \
                     and '-', '_', '.', '/'"
                ),
            });
        }
        Ok(ModelKey(key))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for ModelKey {
    type Err = ServingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKey::new(s)
    }
}

/// What a gateway advertises about one shard in `ListModels` responses:
/// enough for a remote caller to pick a shard and size requests for it
/// without holding the training data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The shard's routing key.
    pub key: ModelKey,
    /// True when the shard carries a trained model (suggestion works);
    /// false for support-only shards (prescription critique only).
    pub fitted: bool,
    /// Number of drugs in the shard's formulary.
    pub n_drugs: usize,
    /// Length of the feature vectors the shard's model expects
    /// (`None` for support-only shards).
    pub n_features: Option<usize>,
    /// FNV digest of the shard's DID-ordered drug names — lets a caller
    /// verify it holds the same formulary before trusting returned DIDs.
    pub registry_digest: u64,
    /// The DDIGCN backbone the shard was configured with.
    pub backbone: String,
    /// Version of the shard's clinical knowledge base.
    pub kb_version: u64,
}

/// Per-model serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Individual requests served (a batch of 16 counts 16).
    pub requests: u64,
    /// Requests that ended in an error.
    pub errors: u64,
    /// Errors broken down by wire [`ErrorCode`], in code order; codes with
    /// no occurrence are omitted.
    pub errors_by_code: Vec<(ErrorCode, u64)>,
    /// Cumulative explanation-cache hits of the shard's service.
    pub cache_hits: u64,
    /// Cumulative explanation-cache misses of the shard's service.
    pub cache_misses: u64,
    /// Median routed-call latency in milliseconds over the sliding window.
    /// On the network path the sample covers response encoding too (the
    /// frame a client waits for), not just the model call.
    pub p50_ms: f64,
    /// 99th-percentile routed-call latency in milliseconds over the window.
    pub p99_ms: f64,
    /// Individual requests shed by admission control (rate limit, in-flight
    /// quota or full gateway queue) before reaching the model. Shed
    /// requests never executed, so they count neither as `requests` nor as
    /// `errors`.
    pub shed_requests: u64,
    /// Routed calls currently executing (or queued) against this shard — a
    /// gauge, not a counter.
    pub in_flight: u64,
    /// Most callers ever observed waiting in the gateway's bounded request
    /// queue when a call for this shard was admitted.
    pub queue_depth_hwm: u64,
    /// Latency samples ever recorded for this shard. Unlike `p50_ms`/
    /// `p99_ms` (which cover only the sliding window), this counts every
    /// sample, so a dashboard polling `Stats` can weight and diff
    /// percentile snapshots between scrapes.
    pub samples: u64,
}

impl ModelStats {
    /// Fraction of explanation lookups answered from the cache
    /// (0.0 when nothing has been looked up yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Gateway-wide transport statistics — connection-level accounting the
/// per-model counters cannot see. Served in `Stats` responses next to the
/// per-model entries; an in-process router with no network server attached
/// reports zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections the server ever accepted.
    pub connections_accepted: u64,
    /// Connections currently being served — a gauge, not a counter.
    pub connections_active: u64,
    /// Connections refused at accept because the server's connection bound
    /// was reached (each got a typed `Overloaded` error frame, then close).
    pub connections_shed: u64,
    /// Connections reaped because a peer stalled mid-frame past the
    /// server's per-frame deadline — the slow-loris defense.
    pub stalled_reaped: u64,
}

/// One shard's artifact versions, as exchanged between replicas by the
/// `PeerStatus` wire message and reported in [`ReplicaStats`]: the monotone
/// model version the gateway assigns on every swap, and the knowledge
/// base's own version (which travels inside the `DSKB` container).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyVersions {
    /// The shard's routing key.
    pub key: ModelKey,
    /// Monotone version of the shard's trained model (starts at 1; bumped
    /// on every hot reload; adopted from the source on anti-entropy sync).
    pub model_version: u64,
    /// Version of the shard's knowledge base.
    pub kb_version: u64,
}

/// Replication statistics a replicated gateway appends to its `Stats`
/// response: how many peers it gossips with, what its anti-entropy loop has
/// pulled, and the per-key versions it currently certifies. Absent
/// (`None` in [`StatsReport`]) on gateways running without a replica agent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplicaStats {
    /// Number of peer gateways in the replica group (not counting this one).
    pub peers: usize,
    /// Containers this replica's anti-entropy loop pulled from peers and
    /// applied locally.
    pub syncs: u64,
    /// Total bytes of those pulled containers.
    pub bytes_shipped: u64,
    /// Largest per-key version gap behind any peer observed by the most
    /// recent anti-entropy round, *before* that round's pulls (0 = fully
    /// converged when last polled).
    pub max_lag: u64,
    /// The per-key `(model_version, kb_version)` pairs this gateway holds,
    /// in key order.
    pub versions: Vec<KeyVersions>,
}

/// Live replication counters, shared between the replica agent (which
/// updates them after every anti-entropy round) and the router (which
/// serves them on `Stats`). Mirrors the transport-counter pattern: the
/// agent's host attaches the state via [`Router::attach_replica`] while it
/// still owns the router exclusively, then hands the same `Arc` to the
/// agent — no lock joins the serving path.
#[derive(Debug, Default)]
pub struct ReplicaState {
    peers: AtomicU64,
    syncs: AtomicU64,
    bytes_shipped: AtomicU64,
    max_lag: AtomicU64,
}

impl ReplicaState {
    /// Records the replica group's peer count (excluding the local member).
    pub fn set_peers(&self, peers: usize) {
        self.peers.store(peers as u64, Ordering::Relaxed);
        telemetry::handles().replica_peers.set(peers as u64);
    }

    /// Records one pulled-and-applied container of `bytes` bytes.
    pub fn record_sync(&self, bytes: u64) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        let metrics = telemetry::handles();
        metrics.replica_syncs.inc();
        metrics.replica_bytes.add(bytes);
    }

    /// Records the largest version gap behind any peer observed by the most
    /// recent anti-entropy round (0 when fully converged).
    pub fn set_lag(&self, lag: u64) {
        self.max_lag.store(lag, Ordering::Relaxed);
        telemetry::handles().replica_lag.set(lag);
    }

    /// The counters as a [`ReplicaStats`] skeleton (versions left empty —
    /// the router fills them from its catalog).
    fn snapshot(&self) -> ReplicaStats {
        ReplicaStats {
            peers: self.peers.load(Ordering::Relaxed) as usize,
            syncs: self.syncs.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            max_lag: self.max_lag.load(Ordering::Relaxed),
            versions: Vec::new(),
        }
    }
}

/// Everything a `Stats` request reports: per-model serving statistics plus
/// the gateway's transport-level counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Per-model statistics, in key order.
    pub models: Vec<(ModelKey, ModelStats)>,
    /// Gateway-wide transport counters (zeros for in-process routers).
    pub gateway: GatewayStats,
    /// Replication statistics (`None` on unreplicated gateways).
    pub replica: Option<ReplicaStats>,
}

/// Sliding window of routed-call latencies (microseconds).
struct LatencyWindow {
    samples: Vec<u64>,
    /// Next slot to overwrite once the window is full.
    next: usize,
    /// Samples ever recorded, including those the window has since evicted.
    recorded: u64,
}

impl LatencyWindow {
    fn new() -> Self {
        Self {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
            recorded: 0,
        }
    }

    fn record(&mut self, micros: u64) {
        self.recorded += 1;
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// `(p50_ms, p99_ms)` over the window (zeros before the first sample).
    fn percentiles_ms(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = |pct: f64| {
            let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)] as f64 / 1e3
        };
        (rank(50.0), rank(99.0))
    }
}

/// Recovers a lock from poisoning: every guarded structure here (latency
/// window, swap slots) is valid whatever state a panicking thread left it
/// in, so serving continues.
fn relock<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

// LOCK ORDER: the canonical nesting order for every lock on the serving
// path, outermost first. A lock may only be acquired while holding locks
// that appear EARLIER in this list. `dssddi-analyze` re-derives the
// acquisition graph from source and enforces this block: LOCK005 flags an
// edge against the order, LOCK003 a lock missing from the list, LOCK004 a
// stale entry. (The `GlobalQueue.freed` condvar is exempt: waiting on it
// atomically releases `GlobalQueue.state`.)
//
//   1. ModelEntry.latencies          stats() reads the window, then the service
//   2. ModelEntry.service            hot-swap slot, guards are short-lived clones
//   3. ModelEntry.kb                 hot-swap slot, taken after service in info()
//   4. DecisionService.explanations  explanation memo, leaf on the request path
//   5. ModelEntry.bucket             rate-limit check entering admission
//   6. GlobalQueue.state             global queue slots, innermost lock
//   7. Router.traces                 slow-request exemplar ring; taken with
//                                    no other serving lock held
//
/// One shard: the service, its paired knowledge base and its serving
/// counters. Service and KB each sit behind `RwLock<Arc<...>>` so hot
/// reload swaps the `Arc` while requests in flight finish on the one they
/// cloned; the counters live *outside* the locks and survive every swap.
struct ModelEntry {
    service: RwLock<Arc<DecisionService>>,
    kb: RwLock<Arc<KnowledgeBase>>,
    /// Monotone version of the shard's model: 1 on insert, bumped on every
    /// hot reload, adopted from the source replica on anti-entropy sync.
    /// (The knowledge base needs no twin — its version travels inside the
    /// `DSKB` container itself.)
    model_version: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    errors_by_code: [AtomicU64; ErrorCode::ALL.len()],
    latencies: Mutex<LatencyWindow>,
    /// Individual requests shed by admission control before execution.
    shed: AtomicU64,
    /// Routed calls currently executing (or queued) against this shard.
    in_flight: AtomicU64,
    /// High-water mark of the gateway queue depth observed by this shard's
    /// admitted calls.
    queue_hwm: AtomicU64,
    /// Token bucket of the shard's rate limit (`None` = unlimited),
    /// configured by [`Router::with_admission`].
    bucket: Mutex<Option<TokenBucket>>,
    /// In-flight quota of the shard (`None` = unlimited), configured by
    /// [`Router::with_admission`].
    quota: Option<u64>,
}

impl ModelEntry {
    fn new(service: DecisionService, kb: KnowledgeBase) -> Self {
        Self {
            service: RwLock::new(Arc::new(service)),
            kb: RwLock::new(Arc::new(kb)),
            model_version: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            errors_by_code: std::array::from_fn(|_| AtomicU64::new(0)),
            latencies: Mutex::new(LatencyWindow::new()),
            shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            bucket: Mutex::new(None),
            quota: None,
        }
    }

    /// The shard's current service (requests in flight keep the `Arc` they
    /// cloned across a concurrent swap).
    fn service(&self) -> Arc<DecisionService> {
        relock(self.service.read()).clone()
    }

    /// The shard's current knowledge base.
    fn kb(&self) -> Arc<KnowledgeBase> {
        relock(self.kb.read()).clone()
    }

    /// Records one routed call's outcome: `n_requests` individual requests,
    /// and the error class when it failed.
    fn record_outcome(&self, n_requests: u64, error: Option<ErrorCode>) {
        let metrics = telemetry::handles();
        self.requests.fetch_add(n_requests, Ordering::Relaxed);
        metrics.requests.add(n_requests);
        if let Some(code) = error {
            self.errors.fetch_add(n_requests, Ordering::Relaxed);
            self.errors_by_code[code.index()].fetch_add(n_requests, Ordering::Relaxed);
            metrics.errors.add(n_requests);
        }
    }

    /// Records one latency sample for the percentile window.
    fn record_latency(&self, elapsed_micros: u64) {
        relock(self.latencies.lock()).record(elapsed_micros);
    }

    fn stats(&self) -> ModelStats {
        let (p50_ms, p99_ms, samples) = {
            let window = relock(self.latencies.lock());
            let (p50_ms, p99_ms) = window.percentiles_ms();
            (p50_ms, p99_ms, window.recorded)
        };
        let (cache_hits, cache_misses) = self.service().explanation_cache_stats();
        let errors_by_code = ErrorCode::ALL
            .iter()
            .filter_map(|&code| {
                let count = self.errors_by_code[code.index()].load(Ordering::Relaxed);
                (count > 0).then_some((code, count))
            })
            .collect();
        ModelStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            errors_by_code,
            cache_hits: cache_hits as u64,
            cache_misses: cache_misses as u64,
            p50_ms,
            p99_ms,
            shed_requests: self.shed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_hwm.load(Ordering::Relaxed),
            samples,
        }
    }

    fn info(&self, key: &ModelKey) -> ModelInfo {
        let service = self.service();
        ModelInfo {
            key: key.clone(),
            fitted: service.is_fitted(),
            n_drugs: service.registry().len(),
            n_features: service.n_features(),
            registry_digest: service.registry().digest(),
            backbone: service.config().ddi.backbone.name().to_string(),
            kb_version: self.kb().version(),
        }
    }
}

/// Pairs a service with the knowledge base a new shard starts from: seeded
/// from the shard's own DDI graph, so every gateway critique is
/// severity-graded from the first request (antagonistic edges of unknown
/// severity default to `Moderate`).
fn default_kb(service: &DecisionService) -> Result<KnowledgeBase, ServingError> {
    KnowledgeBase::from_ddi_graph(service.ddi_graph(), service.registry()).map_err(ServingError::Kb)
}

/// Checks that a replacement (service or KB) describes the same formulary
/// as the shard it replaces.
fn check_digest(key: &ModelKey, current: u64, replacement: u64) -> Result<(), ServingError> {
    if current != replacement {
        return Err(ServingError::FormularyMismatch {
            key: key.as_str().to_string(),
            what: format!(
                "shard serves registry digest {current:#018x} but the replacement \
                 describes {replacement:#018x}"
            ),
        });
    }
    Ok(())
}

/// Owns the loaded model shards of a gateway, keyed by [`ModelKey`].
#[derive(Default)]
pub struct ModelCatalog {
    models: BTreeMap<ModelKey, ModelEntry>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The registered keys, in sorted order.
    pub fn keys(&self) -> Vec<&ModelKey> {
        self.models.keys().collect()
    }

    /// The service behind a key, when registered. The returned `Arc` is a
    /// snapshot: a concurrent [`ModelCatalog::replace`] does not change it.
    pub fn service(&self, key: &ModelKey) -> Option<Arc<DecisionService>> {
        self.models.get(key).map(ModelEntry::service)
    }

    /// The knowledge base paired with a key, when registered (snapshot
    /// semantics as for [`ModelCatalog::service`]).
    pub fn kb(&self, key: &ModelKey) -> Option<Arc<KnowledgeBase>> {
        self.models.get(key).map(ModelEntry::kb)
    }

    /// Registers an in-process service under a key, paired with a knowledge
    /// base seeded from its DDI graph. Each key routes to exactly one
    /// shard; re-registering is a typed error — replacing a live shard is
    /// an explicit [`ModelCatalog::replace`], never an accidental insert.
    pub fn insert(&mut self, key: ModelKey, service: DecisionService) -> Result<(), ServingError> {
        let kb = default_kb(&service)?;
        self.insert_with_kb(key, service, kb)
    }

    /// Registers a service under a key with an explicit knowledge base,
    /// which must grade the service's formulary.
    pub fn insert_with_kb(
        &mut self,
        key: ModelKey,
        service: DecisionService,
        kb: KnowledgeBase,
    ) -> Result<(), ServingError> {
        if self.models.contains_key(&key) {
            return Err(ServingError::DuplicateModel {
                key: key.as_str().to_string(),
            });
        }
        check_digest(&key, service.registry().digest(), kb.registry_digest())?;
        self.models.insert(key, ModelEntry::new(service, kb));
        Ok(())
    }

    /// Loads a `DSSD` file into the catalog, reconstructing the formulary
    /// from the registry embedded in the file
    /// ([`DecisionService::load_with_embedded_registry`]) — the usual path
    /// for a serving host that receives only trained artifacts.
    pub fn load_file(&mut self, key: ModelKey, path: impl AsRef<Path>) -> Result<(), ServingError> {
        let service = DecisionService::load_with_embedded_registry(path)?;
        self.insert(key, service)
    }

    /// Loads a `DSSD` file into the catalog, verifying it against a
    /// caller-held registry name by name ([`DecisionService::load`]).
    pub fn load_file_with_registry(
        &mut self,
        key: ModelKey,
        path: impl AsRef<Path>,
        registry: DrugRegistry,
    ) -> Result<(), ServingError> {
        let service = DecisionService::load(path, registry)?;
        self.insert(key, service)
    }

    /// Loads a `DSKB` file as the knowledge base of an already registered
    /// shard, replacing the seeded (or previously loaded) one.
    pub fn load_kb_file(&self, key: &ModelKey, path: impl AsRef<Path>) -> Result<(), ServingError> {
        let kb = KnowledgeBase::load(path).map_err(ServingError::Kb)?;
        self.replace_kb(key, kb)
    }

    fn entry(&self, key: &ModelKey) -> Result<&ModelEntry, ServingError> {
        self.models
            .get(key)
            .ok_or_else(|| ServingError::UnknownModel {
                key: key.as_str().to_string(),
                available: self.models.keys().map(|k| k.as_str().to_string()).collect(),
            })
    }

    /// Hot-swaps the service behind a live key. The replacement must serve
    /// the same formulary (registry digest) as the shard it replaces; its
    /// paired knowledge base and the shard's serving counters carry over.
    /// Requests in flight finish on the service they started with, new
    /// requests route to the replacement — no connection is dropped.
    pub fn replace(&self, key: &ModelKey, service: DecisionService) -> Result<(), ServingError> {
        let entry = self.entry(key)?;
        check_digest(
            key,
            entry.service().registry().digest(),
            service.registry().digest(),
        )?;
        *relock(entry.service.write()) = Arc::new(service);
        entry.model_version.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Adopts a peer replica's model for a live key at the peer's version —
    /// the anti-entropy apply path. Unlike [`ModelCatalog::replace`] (which
    /// *bumps* the local version, making the local gateway the new source
    /// of truth), a sync sets the version to the source's, so a pulled
    /// artifact never re-propagates as fresh. Versions only move forward: a
    /// stale or duplicate pull (`version` at or below the current one) is a
    /// no-op returning `false`.
    pub fn sync_model(
        &self,
        key: &ModelKey,
        service: DecisionService,
        version: u64,
    ) -> Result<bool, ServingError> {
        let entry = self.entry(key)?;
        check_digest(
            key,
            entry.service().registry().digest(),
            service.registry().digest(),
        )?;
        if entry.model_version.load(Ordering::Relaxed) >= version {
            return Ok(false);
        }
        *relock(entry.service.write()) = Arc::new(service);
        entry.model_version.store(version, Ordering::Relaxed);
        Ok(true)
    }

    /// Adopts a peer replica's knowledge base for a live key — the
    /// anti-entropy apply path. The version travels inside the `DSKB`
    /// container, so adopting the bytes adopts the version; versions only
    /// move forward (a stale or duplicate pull is a no-op returning
    /// `false`).
    pub fn sync_kb(&self, key: &ModelKey, kb: KnowledgeBase) -> Result<bool, ServingError> {
        let entry = self.entry(key)?;
        check_digest(
            key,
            entry.service().registry().digest(),
            kb.registry_digest(),
        )?;
        if entry.kb().version() >= kb.version() {
            return Ok(false);
        }
        *relock(entry.kb.write()) = Arc::new(kb);
        Ok(true)
    }

    /// The per-key `(model_version, kb_version)` pairs this catalog holds,
    /// in key order — the version vector `PeerStatus` exchanges.
    pub fn version_vector(&self) -> Vec<KeyVersions> {
        self.models
            .iter()
            .map(|(key, entry)| KeyVersions {
                key: key.clone(),
                model_version: entry.model_version.load(Ordering::Relaxed),
                kb_version: entry.kb().version(),
            })
            .collect()
    }

    /// Hot-swaps the knowledge base paired with a live key. The replacement
    /// must grade the shard's formulary.
    pub fn replace_kb(&self, key: &ModelKey, kb: KnowledgeBase) -> Result<(), ServingError> {
        let entry = self.entry(key)?;
        check_digest(
            key,
            entry.service().registry().digest(),
            kb.registry_digest(),
        )?;
        *relock(entry.kb.write()) = Arc::new(kb);
        Ok(())
    }
}

impl fmt::Debug for ModelCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelCatalog")
            .field("models", &self.keys())
            .finish()
    }
}

/// Releases a routed call's admission state when the call finishes (or the
/// calling thread unwinds): decrements the shard's in-flight gauge and
/// frees the gateway queue slot the call held.
struct AdmissionGuard<'a> {
    entry: &'a ModelEntry,
    queue: Option<&'a GlobalQueue>,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.entry.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(queue) = self.queue {
            queue.release();
        }
    }
}

/// Routes typed requests to the right catalog shard and records per-model
/// serving statistics. The router is `Sync`: one instance serves all
/// connection threads of a gateway, including the hot-reload operations.
///
/// Admission control (see [`crate::admission`]) is opt-in through
/// [`Router::with_admission`]: data-plane requests (`Suggest`,
/// `SuggestBatch`, `CheckPrescription`) pass the shard's token bucket, the
/// shard's in-flight quota and the gateway's bounded request queue before
/// they execute, and are shed with a typed
/// [`ServingError::Overloaded`] otherwise. Control-plane messages
/// (`ListModels`, `Stats`, reloads, `KbInfo`, `Shutdown`) bypass admission
/// so operators can always observe and repair an overloaded gateway.
#[derive(Debug)]
pub struct Router {
    catalog: ModelCatalog,
    /// Bounded gateway-wide request queue (`None` = unbounded).
    queue: Option<GlobalQueue>,
    /// Epoch of the token buckets' timestamps.
    origin: Instant,
    /// Transport counters of the network server fronting this router,
    /// attached by `Server::bind` before the router is shared. In-process
    /// routers have none and report zeroed [`GatewayStats`].
    transport: Option<Arc<crate::server::TransportStats>>,
    /// Replication counters of the replica agent syncing this gateway,
    /// attached by the agent's host before the router is shared.
    /// Unreplicated routers have none and omit the `Stats` replica section.
    replica: Option<Arc<ReplicaState>>,
    /// Top-K slowest-request exemplars, served by the `TraceDump` wire
    /// message. Touched once per data-plane frame, after the response is
    /// encoded and with no other serving lock held.
    traces: Mutex<TraceRing>,
}

impl Router {
    /// A router over a catalog with no admission limits (every request is
    /// admitted; the in-flight gauge is still maintained).
    pub fn new(catalog: ModelCatalog) -> Self {
        Self::with_admission(catalog, AdmissionConfig::default())
    }

    /// A router over a catalog with admission control: per-model token
    /// buckets and in-flight quotas from `config`, plus the bounded global
    /// request queue when `config.max_in_flight` is set.
    pub fn with_admission(mut catalog: ModelCatalog, config: AdmissionConfig) -> Self {
        for (key, entry) in catalog.models.iter_mut() {
            entry.bucket = Mutex::new(config.rate_for(key).map(|limit| TokenBucket::new(limit, 0)));
            entry.quota = config.quota_for(key);
        }
        let queue = config
            .max_in_flight
            .map(|slots| GlobalQueue::new(slots, config.max_queue_depth, config.queue_wait));
        Self {
            catalog,
            queue,
            origin: Instant::now(),
            transport: None,
            replica: None,
            traces: Mutex::new(TraceRing::new(TRACE_RING_CAPACITY)),
        }
    }

    /// Attaches the network server's transport counters so `Stats`
    /// responses carry them. Called by `Server::bind` while it still owns
    /// the router exclusively.
    pub(crate) fn attach_transport(&mut self, transport: Arc<crate::server::TransportStats>) {
        self.transport = Some(transport);
    }

    /// Attaches a replica agent's counters so `Stats` responses carry the
    /// replication section. Like [`Router::attach_transport`], this must
    /// happen while the caller still owns the router exclusively (before
    /// `Server::bind` shares it); the same `Arc` then goes to the agent.
    pub fn attach_replica(&mut self, replica: Arc<ReplicaState>) {
        self.replica = Some(replica);
    }

    /// The catalog behind the router.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.catalog
    }

    /// Nanoseconds since the router's construction — the timestamp domain
    /// of its token buckets.
    fn origin_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Admits (or sheds) one routed call of `n_requests` individual
    /// requests against a shard. On admission the returned guard holds the
    /// shard's in-flight slot and the gateway queue slot until dropped; on
    /// shed the shard's `shed_requests` counter grows by `n_requests` and
    /// the caller gets a typed [`ServingError::Overloaded`]. The admission
    /// decision and any queue wait are recorded into `span` (and the
    /// gateway-wide shed/queue-wait metric families).
    fn admit<'a>(
        &'a self,
        key: &ModelKey,
        entry: &'a ModelEntry,
        n_requests: u64,
        span: &mut SpanRecorder,
    ) -> Result<AdmissionGuard<'a>, ServingError> {
        let metrics = telemetry::handles();
        let admit_start = Instant::now();
        let shed = |what: &str| {
            entry.shed.fetch_add(n_requests, Ordering::Relaxed);
            Err(ServingError::Overloaded {
                key: key.as_str().to_string(),
                what: what.to_string(),
            })
        };
        if let Some(bucket) = relock(entry.bucket.lock()).as_mut() {
            if !bucket.try_acquire_at(n_requests as f64, self.origin_nanos()) {
                span.record(Stage::Admit, elapsed_micros(admit_start));
                metrics.shed_rate.add(n_requests);
                return shed("per-model rate limit exhausted");
            }
        }
        let prior = entry.in_flight.fetch_add(1, Ordering::Relaxed);
        if entry.quota.is_some_and(|quota| prior >= quota) {
            entry.in_flight.fetch_sub(1, Ordering::Relaxed);
            span.record(Stage::Admit, elapsed_micros(admit_start));
            metrics.shed_quota.add(n_requests);
            return shed("per-model in-flight quota exhausted");
        }
        span.record(Stage::Admit, elapsed_micros(admit_start));
        if let Some(queue) = &self.queue {
            let queue_start = Instant::now();
            let outcome = queue.acquire();
            let wait = elapsed_micros(queue_start);
            span.record(Stage::Queue, wait);
            metrics.queue_wait.observe(wait);
            match outcome {
                Ok(depth) => {
                    entry.queue_hwm.fetch_max(depth as u64, Ordering::Relaxed);
                }
                Err(()) => {
                    entry.in_flight.fetch_sub(1, Ordering::Relaxed);
                    metrics.shed_queue.add(n_requests);
                    return shed("gateway request queue full");
                }
            }
        }
        Ok(AdmissionGuard {
            entry,
            queue: self.queue.as_ref(),
        })
    }

    /// Runs one call against a resolved shard entry, recording request
    /// count and outcome (with its error class); the caller decides where
    /// the latency sample ends.
    fn call_entry<T>(
        entry: &ModelEntry,
        n_requests: u64,
        call: impl FnOnce(&DecisionService, &KnowledgeBase) -> Result<T, dssddi_core::CoreError>,
    ) -> Result<T, ServingError> {
        let (service, kb) = (entry.service(), entry.kb());
        let result = call(&service, &kb).map_err(ServingError::Core);
        entry.record_outcome(n_requests, result.as_ref().err().map(ErrorCode::classify));
        result
    }

    /// [`Router::call_entry`] behind a key lookup and admission control —
    /// no latency sample; the caller owns the sample point. Shed calls
    /// never reach the shard and record neither requests nor latency.
    fn routed_core<T>(
        &self,
        key: &ModelKey,
        n_requests: u64,
        span: &mut SpanRecorder,
        call: impl FnOnce(&DecisionService, &KnowledgeBase) -> Result<T, dssddi_core::CoreError>,
    ) -> Result<T, ServingError> {
        let entry = self.catalog.entry(key)?;
        let _guard = self.admit(key, entry, n_requests, span)?;
        Self::call_entry(entry, n_requests, call)
    }

    /// Runs one routed call against a shard, recording request count,
    /// latency and outcome — the in-process entry point. (The network
    /// server samples latency through [`Router::serve_framed`] instead, so
    /// the sample also covers response encoding.)
    fn routed<T>(
        &self,
        key: &ModelKey,
        n_requests: u64,
        call: impl FnOnce(&DecisionService, &KnowledgeBase) -> Result<T, dssddi_core::CoreError>,
    ) -> Result<T, ServingError> {
        let entry = self.catalog.entry(key)?;
        let mut span = SpanRecorder::new(0);
        let _guard = self.admit(key, entry, n_requests, &mut span)?;
        let start = Instant::now();
        let result = Self::call_entry(entry, n_requests, call);
        entry.record_latency(elapsed_micros(start));
        result
    }

    /// Serves one suggestion request on the shard behind `key`.
    pub fn suggest(
        &self,
        key: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        self.routed(key, 1, |service, kb| {
            service.suggest_with_kb(request, Some(kb))
        })
    }

    /// Serves a batch of suggestion requests on the shard behind `key`
    /// (one sharded prediction pass, responses in request order).
    pub fn suggest_batch(
        &self,
        key: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        self.routed(key, requests.len() as u64, |service, kb| {
            service.suggest_batch_with_kb(requests, Some(kb))
        })
    }

    /// Critiques a prescription against the shard behind `key`, graded by
    /// the shard's knowledge base and filtered by the request's alert
    /// policy.
    pub fn check_prescription(
        &self,
        key: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        self.routed(key, 1, |service, kb| {
            service.check_prescription_with_kb(request, Some(kb))
        })
    }

    /// Hot-swaps the service behind a live key (see
    /// [`ModelCatalog::replace`]) and reports the shard's new listing.
    pub fn reload_model(
        &self,
        key: &ModelKey,
        service: DecisionService,
    ) -> Result<ModelInfo, ServingError> {
        self.catalog.replace(key, service)?;
        Ok(self.catalog.entry(key)?.info(key))
    }

    /// [`Router::reload_model`] from in-memory `DSSD` container bytes — the
    /// wire `ReloadModel` entry point.
    pub fn reload_model_bytes(
        &self,
        key: &ModelKey,
        container: &[u8],
    ) -> Result<ModelInfo, ServingError> {
        let service = DecisionService::load_with_embedded_registry_bytes(container)?;
        self.reload_model(key, service)
    }

    /// Hot-swaps the knowledge base paired with a live key (see
    /// [`ModelCatalog::replace_kb`]) and reports the new KB's summary.
    pub fn reload_kb(&self, key: &ModelKey, kb: KnowledgeBase) -> Result<KbInfo, ServingError> {
        self.catalog.replace_kb(key, kb)?;
        Ok(self.catalog.entry(key)?.kb().info())
    }

    /// [`Router::reload_kb`] from in-memory `DSKB` container bytes — the
    /// wire `ReloadKb` entry point.
    pub fn reload_kb_bytes(
        &self,
        key: &ModelKey,
        container: &[u8],
    ) -> Result<KbInfo, ServingError> {
        let kb = KnowledgeBase::from_container_bytes(container).map_err(ServingError::Kb)?;
        self.reload_kb(key, kb)
    }

    /// [`ModelCatalog::sync_model`] from in-memory `DSSD` container bytes —
    /// what a replica agent applies after a `PeerSync` pull. Returns
    /// whether the shard actually moved forward.
    pub fn sync_model_bytes(
        &self,
        key: &ModelKey,
        version: u64,
        container: &[u8],
    ) -> Result<bool, ServingError> {
        let service = DecisionService::load_with_embedded_registry_bytes(container)?;
        self.catalog.sync_model(key, service, version)
    }

    /// [`ModelCatalog::sync_kb`] from in-memory `DSKB` container bytes —
    /// what a replica agent applies after a `PeerSync` pull. Returns
    /// whether the shard actually moved forward.
    pub fn sync_kb_bytes(&self, key: &ModelKey, container: &[u8]) -> Result<bool, ServingError> {
        let kb = KnowledgeBase::from_container_bytes(container).map_err(ServingError::Kb)?;
        self.catalog.sync_kb(key, kb)
    }

    /// The per-key version vector this gateway holds (see
    /// [`ModelCatalog::version_vector`]).
    pub fn version_vector(&self) -> Vec<KeyVersions> {
        self.catalog.version_vector()
    }

    /// Serves a `PeerSync` pull: one shard's complete container plus the
    /// version the bytes certify. The version is read *before* the artifact
    /// `Arc` is cloned, so a concurrent reload can only make the shipped
    /// bytes newer than the claimed version — the puller then re-pulls on
    /// its next round and still converges monotonically.
    fn peer_sync(
        &self,
        key: &ModelKey,
        artifact: wire::SyncArtifact,
    ) -> Result<Response, ServingError> {
        let entry = self.catalog.entry(key)?;
        let (version, container) = match artifact {
            wire::SyncArtifact::Model => {
                let version = entry.model_version.load(Ordering::Relaxed);
                (version, entry.service().to_container_bytes())
            }
            wire::SyncArtifact::Kb => {
                let kb = entry.kb();
                (kb.version(), kb.to_container_bytes())
            }
        };
        Ok(Response::PeerSync {
            model: key.clone(),
            artifact,
            version,
            container,
        })
    }

    /// The summary of the knowledge base paired with a shard.
    pub fn kb_info(&self, key: &ModelKey) -> Result<KbInfo, ServingError> {
        Ok(self.catalog.entry(key)?.kb().info())
    }

    /// Advertises every shard, in key order.
    pub fn list_models(&self) -> Vec<ModelInfo> {
        self.catalog
            .models
            .iter()
            .map(|(key, entry)| entry.info(key))
            .collect()
    }

    /// Per-model serving statistics, in key order.
    pub fn stats(&self) -> Vec<(ModelKey, ModelStats)> {
        self.catalog
            .models
            .iter()
            .map(|(key, entry)| (key.clone(), entry.stats()))
            .collect()
    }

    /// The gateway's transport-level counters (zeros when no network
    /// server is attached to this router).
    pub fn gateway_stats(&self) -> GatewayStats {
        self.transport
            .as_deref()
            .map(crate::server::TransportStats::snapshot)
            .unwrap_or_default()
    }

    /// The full statistics report a wire `Stats` request answers with:
    /// per-model entries plus the gateway transport counters.
    pub fn stats_report(&self) -> StatsReport {
        StatsReport {
            models: self.stats(),
            gateway: self.gateway_stats(),
            replica: self.replica.as_ref().map(|state| ReplicaStats {
                versions: self.version_vector(),
                ..state.snapshot()
            }),
        }
    }

    /// Maps one decoded request to its response, converting routing/service
    /// errors into typed error frames — request counts and error classes
    /// recorded, but *no* latency sample: the caller owns the sample point.
    /// Reload operations are control-plane calls and do not count toward a
    /// shard's request statistics.
    fn dispatch_core(&self, request: &Request) -> Response {
        let mut span = SpanRecorder::new(0);
        self.dispatch_traced(request, &mut span)
    }

    /// [`Router::dispatch_core`] with the request's span threaded through
    /// admission, so shed/queue time lands on the caller's trace.
    fn dispatch_traced(&self, request: &Request, span: &mut SpanRecorder) -> Response {
        let result = match request {
            Request::Suggest { model, request } => self
                .routed_core(model, 1, span, |service, kb| {
                    service.suggest_with_kb(request, Some(kb))
                })
                .map(Response::Suggest),
            Request::SuggestBatch { model, requests } => self
                .routed_core(model, requests.len() as u64, span, |service, kb| {
                    service.suggest_batch_with_kb(requests, Some(kb))
                })
                .map(Response::SuggestBatch),
            Request::CheckPrescription { model, request } => self
                .routed_core(model, 1, span, |service, kb| {
                    service.check_prescription_with_kb(request, Some(kb))
                })
                .map(|report| {
                    telemetry::count_report_severities(&report);
                    Response::CheckPrescription(report)
                }),
            Request::ReloadModel { model, container } => self
                .reload_model_bytes(model, container)
                .map(Response::ModelReloaded),
            Request::ReloadKb { model, container } => self
                .reload_kb_bytes(model, container)
                .map(Response::KbReloaded),
            Request::KbInfo { model } => self.kb_info(model).map(Response::KbInfo),
            Request::ListModels => Ok(Response::ListModels(self.list_models())),
            Request::Stats => Ok(Response::Stats(self.stats_report())),
            // Ping is pure control-plane liveness: it touches no shard and
            // bypasses admission, so health checks keep answering while the
            // data plane sheds load.
            Request::Ping => Ok(Response::Pong),
            // Peer messages are replication control plane: they bypass
            // admission (a loaded gateway must still converge) and count
            // toward no shard's request statistics. The requester's vector
            // is gossip — this side answers with its own and lets each
            // agent pull what it lags on.
            Request::PeerStatus { versions: _ } => Ok(Response::PeerStatus {
                versions: self.version_vector(),
            }),
            Request::PeerSync { model, artifact } => self.peer_sync(model, *artifact),
            // Trace dumps are observability control plane: they bypass
            // admission so a saturated gateway can still be inspected.
            Request::TraceDump { limit } => Ok(Response::TraceDump(
                self.trace_exemplars(usize::try_from(*limit).unwrap_or(usize::MAX)),
            )),
            Request::Shutdown => Ok(Response::ShuttingDown),
        };
        result.unwrap_or_else(|error| wire::error_response(&error))
    }

    /// The slowest recently served data-plane requests, slowest first —
    /// what a wire `TraceDump` answers with. `limit` of zero returns the
    /// whole exemplar ring.
    pub fn trace_exemplars(&self, limit: usize) -> Vec<TraceExemplar> {
        relock(self.traces.lock()).snapshot(limit)
    }

    /// Records one latency sample against the shard a data-plane request
    /// routed to (control-plane messages are not clinical serving latency).
    fn record_request_latency(&self, request: &Request, start: Instant) {
        let model = match request {
            Request::Suggest { model, .. }
            | Request::SuggestBatch { model, .. }
            | Request::CheckPrescription { model, .. } => Some(model),
            Request::ReloadModel { .. }
            | Request::ReloadKb { .. }
            | Request::KbInfo { .. }
            | Request::ListModels
            | Request::Stats
            | Request::Ping
            | Request::PeerStatus { .. }
            | Request::PeerSync { .. }
            | Request::TraceDump { .. }
            | Request::Shutdown => None,
        };
        if let Some(entry) = model.and_then(|key| self.catalog.models.get(key)) {
            entry.record_latency(elapsed_micros(start));
        }
    }

    /// Maps one decoded request to its response, converting routing/service
    /// errors into typed error frames. Data-plane requests record exactly
    /// one latency sample covering the routed call.
    pub fn serve(&self, request: &Request) -> Response {
        let start = Instant::now();
        let response = self.dispatch_core(request);
        self.record_request_latency(request, start);
        response
    }

    /// [`Router::serve`] plus response encoding, returning the sealed frame.
    ///
    /// This is the network server's entry point, and where the shard's
    /// latency sample is taken — exactly one per request, covering the
    /// routed call *and* the wire encode, so the p50/p99 a `Stats` caller
    /// sees is the time a client actually waits between frames: encoding a
    /// batch of explanation subgraphs is real serving cost, not free.
    pub fn serve_framed(&self, request: &Request) -> Vec<u8> {
        self.serve_framed_traced(request, None, 0)
    }

    /// [`Router::serve_framed`] with the request's wire trace threaded
    /// through: `trace` is the trace ID the client propagated (the gateway
    /// mints one when the client sent none, so untraced traffic still fills
    /// the exemplar ring) and `decode_micros` is the time the transport
    /// spent reading and decoding the request frame.
    ///
    /// Stage accounting is exact by construction: `infer` is the dispatch
    /// time net of admission and queueing, so the five stage values sum to
    /// the recorded end-to-end latency (up to microsecond truncation).
    pub fn serve_framed_traced(
        &self,
        request: &Request,
        trace: Option<u64>,
        decode_micros: u64,
    ) -> Vec<u8> {
        let metrics = telemetry::handles();
        let mut span = SpanRecorder::new(trace.unwrap_or_else(next_trace_id));
        span.record(Stage::Decode, decode_micros);
        let start = Instant::now();
        let response = self.dispatch_traced(request, &mut span);
        let dispatch_micros = elapsed_micros(start);
        let encode_start = Instant::now();
        let frame = wire::encode_response_traced(&response, trace);
        span.record(Stage::Encode, elapsed_micros(encode_start));
        self.record_request_latency(request, start);
        let admission = span
            .stage_micros(Stage::Admit)
            .saturating_add(span.stage_micros(Stage::Queue));
        span.record(Stage::Infer, dispatch_micros.saturating_sub(admission));
        let total = decode_micros
            .saturating_add(dispatch_micros)
            .saturating_add(span.stage_micros(Stage::Encode));
        metrics.latency.observe(total);
        for stage in Stage::ALL {
            metrics.observe_stage(stage, span.stage_micros(stage));
        }
        if let Some((model, op)) = Self::data_plane_target(request) {
            relock(self.traces.lock()).offer(span.into_exemplar(model, op.to_string(), total));
        }
        frame
    }

    /// The shard key and operation name of a data-plane request — the
    /// requests eligible for the slow-request exemplar ring.
    fn data_plane_target(request: &Request) -> Option<(String, &'static str)> {
        match request {
            Request::Suggest { model, .. } => Some((model.as_str().to_string(), "suggest")),
            Request::SuggestBatch { model, .. } => {
                Some((model.as_str().to_string(), "suggest_batch"))
            }
            Request::CheckPrescription { model, .. } => {
                Some((model.as_str().to_string(), "check_prescription"))
            }
            _ => None,
        }
    }
}

fn elapsed_micros(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn model_keys_validate_charset_and_length() {
        for good in ["chronic", "mimic/icu", "region-hk.hypertension_v2", "a"] {
            assert_eq!(ModelKey::new(good).unwrap().as_str(), good);
        }
        for bad in ["", "white space", "naïve", "semi;colon", "tab\there"] {
            assert!(matches!(
                ModelKey::new(bad),
                Err(ServingError::InvalidKey { .. })
            ));
        }
        assert!(ModelKey::new("k".repeat(MAX_MODEL_KEY_LEN)).is_ok());
        assert!(ModelKey::new("k".repeat(MAX_MODEL_KEY_LEN + 1)).is_err());
        let parsed: ModelKey = "chronic".parse().unwrap();
        assert_eq!(parsed.to_string(), "chronic");
    }

    #[test]
    fn latency_window_slides_and_ranks() {
        let mut window = LatencyWindow::new();
        assert_eq!(window.percentiles_ms(), (0.0, 0.0));
        for micros in [1000u64, 2000, 3000, 4000, 5000] {
            window.record(micros);
        }
        let (p50, p99) = window.percentiles_ms();
        assert_eq!(p50, 3.0);
        assert_eq!(p99, 5.0);
        // Overflowing the window overwrites the oldest samples.
        for _ in 0..LATENCY_WINDOW {
            window.record(7000);
        }
        let (p50, p99) = window.percentiles_ms();
        assert_eq!((p50, p99), (7.0, 7.0));
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let stats = ModelStats {
            requests: 0,
            errors: 0,
            errors_by_code: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            shed_requests: 0,
            in_flight: 0,
            queue_depth_hwm: 0,
            samples: 0,
        };
        assert_eq!(stats.cache_hit_rate(), 0.0);
        let stats = ModelStats {
            cache_hits: 3,
            cache_misses: 1,
            ..stats
        };
        assert_eq!(stats.cache_hit_rate(), 0.75);
    }
}
