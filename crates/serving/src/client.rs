//! The blocking gateway client.
//!
//! [`Client`] speaks the [`crate::wire`] protocol over one TCP connection:
//! each method writes one framed request and blocks for the framed
//! response. Responses carry exactly the bytes the server's in-process
//! `DecisionService` produced — scores and satisfaction values are
//! IEEE-754 bit-identical to a local call on the same fitted service.
//!
//! Server-side failures come back as [`ServingError::Remote`] with the
//! machine-readable [`crate::ErrorCode`], so callers can branch on the
//! failure class (`UnknownModel` vs `InvalidInput` vs `NotFitted` ...)
//! without parsing messages.
//!
//! ## Retrying shed requests
//!
//! A gateway under admission control answers excess load with typed
//! [`ErrorCode::Overloaded`] frames. Those requests never executed, so
//! retrying is safe — and because the error arrives as a well-formed frame
//! the connection stays aligned, so the retry reuses the same socket. A
//! client opts in with [`Client::set_retry_policy`]; retries back off
//! exponentially with jitter (so a fleet of rejected clients does not
//! return in lock-step) and give up after a bounded number of attempts.
//!
//! ## Retrying connection faults, and failing over
//!
//! With [`RetryPolicy::retry_connection_faults`] armed, transport-level
//! failures — a reset, a response timeout, a torn or corrupt frame — are
//! also retried, but **only for idempotent requests** (suggestions,
//! critiques, listings, stats, pings: read-only, so a duplicate execution
//! is harmless). Non-idempotent messages (`ReloadModel`, `ReloadKb`,
//! `Shutdown`) are never retried on a transport fault: the first send may
//! have executed before the connection died, and re-applying a reload is
//! not the client's call to make. The failed socket is always discarded
//! before a retry — a fresh connection can never deliver a stale response
//! to the wrong request.
//!
//! A client built with [`Client::connect_any`] holds several gateway
//! endpoints with per-endpoint health memory: an endpoint that keeps
//! failing enters an exponentially growing cooldown and reconnects prefer
//! the healthiest endpoint, so when one gateway of a replica set dies
//! mid-run, armed retries land on a live one and the caller sees nothing
//! but a slower call.
//!
//! Without connection-fault retries armed, a transport failure poisons the
//! connection (the historical behavior): a late response could answer the
//! wrong request, so every later call fails fast until the caller
//! reconnects.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use dssddi_core::{CheckPrescriptionRequest, InteractionReport, SuggestRequest, SuggestResponse};
use dssddi_kb::KbInfo;
use dssddi_obs::trace::{next_trace_id, TraceExemplar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::router::{KeyVersions, ModelInfo, ModelKey, ModelStats, StatsReport};
use crate::wire::{self, ErrorCode, RequestRef, Response, SyncArtifact, WireError};
use crate::ServingError;

/// First cooldown after an endpoint failure; doubles per consecutive
/// failure up to [`ENDPOINT_COOLDOWN_MAX`].
const ENDPOINT_COOLDOWN_BASE: Duration = Duration::from_millis(250);

/// Upper bound on an endpoint's failure cooldown.
const ENDPOINT_COOLDOWN_MAX: Duration = Duration::from_secs(8);

/// Bounded, jittered exponential backoff for retrying `Overloaded`
/// rejections — and, when [`RetryPolicy::retry_connection_faults`] is
/// armed, idempotent requests hit by connection-level faults (opt-in via
/// [`Client::set_retry_policy`]).
///
/// Attempt `k` (1-based) sleeps `min(max_delay, base_delay * 2^(k-1))`
/// scaled by a uniform jitter factor in `[0.5, 1.0)` before retrying.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` disables retrying;
    /// clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (pre-jitter).
    pub base_delay: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_delay: Duration,
    /// Whether transport-level faults (reset, timeout, short read) are
    /// retried too — idempotent requests only; see the module docs.
    pub connection_faults: bool,
}

impl RetryPolicy {
    /// A policy with the given bounds (`max_attempts` counts the first
    /// attempt and is clamped to at least 1). Retries `Overloaded`
    /// rejections only; extend to transport faults with
    /// [`RetryPolicy::retry_connection_faults`].
    pub fn new(max_attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay,
            max_delay,
            connection_faults: false,
        }
    }

    /// Extends (or restricts) this policy to also retry connection-level
    /// faults — resets, response timeouts and short reads — for idempotent
    /// requests, reconnecting (and failing over, with
    /// [`Client::connect_any`]) before each retry.
    pub fn retry_connection_faults(mut self, on: bool) -> Self {
        self.connection_faults = on;
        self
    }

    /// The jittered backoff before retry number `attempt` (1-based: the
    /// retry after the first failed attempt is `attempt == 1`).
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let uncapped = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.max_delay);
        let jitter = rng.gen_range(0.5f64..1.0);
        Duration::from_secs_f64(uncapped.as_secs_f64() * jitter)
    }
}

/// One gateway address plus its health memory.
#[derive(Debug, Clone)]
struct Endpoint {
    addr: SocketAddr,
    /// Consecutive failures since the last success on this endpoint.
    failures: u32,
    /// Reconnects avoid this endpoint until the cooldown passes (unless
    /// every endpoint is cooling down — then the least-recently-failed one
    /// is tried anyway: a client with work to do never refuses to try).
    cooldown_until: Option<Instant>,
}

impl Endpoint {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            failures: 0,
            cooldown_until: None,
        }
    }

    fn cooling_down(&self, now: Instant) -> bool {
        self.cooldown_until.is_some_and(|until| until > now)
    }

    fn note_failure(&mut self, now: Instant) {
        self.failures = self.failures.saturating_add(1);
        let exp = self.failures.saturating_sub(1).min(16);
        let cooldown = ENDPOINT_COOLDOWN_BASE
            .saturating_mul(2u32.saturating_pow(exp))
            .min(ENDPOINT_COOLDOWN_MAX);
        self.cooldown_until = Some(now + cooldown);
    }

    fn note_success(&mut self) {
        self.failures = 0;
        self.cooldown_until = None;
    }
}

/// A blocking connection to a `dssddi-serve` gateway (or, with
/// [`Client::connect_any`], to the healthiest of several).
#[derive(Debug)]
pub struct Client {
    /// The live connection; `None` after a transport fault dropped it (a
    /// later call reconnects when connection-fault retries are armed).
    stream: Option<TcpStream>,
    /// Known gateway endpoints with health memory; never empty.
    endpoints: Vec<Endpoint>,
    /// Index into `endpoints` of the connection currently (or last) held.
    current: usize,
    /// Deadline for (re)connect attempts (`None` = the OS default).
    connect_timeout: Option<Duration>,
    /// Armed response timeout, re-applied on every reconnect.
    read_timeout: Option<Duration>,
    /// Set after a transport-level failure when connection-fault retries
    /// are NOT armed. The stream may then hold a late or partial response,
    /// so reading the *next* frame could deliver a stale answer to the
    /// wrong request — every later call fails fast instead of risking
    /// that. (With retries armed the stream is dropped instead, which
    /// removes the hazard without poisoning.)
    poisoned: bool,
    /// Retry policy plus the jitter RNG (`None` = fail fast, the default).
    retry: Option<(RetryPolicy, StdRng)>,
    /// Whether requests carry a fresh wire-propagated trace ID (see
    /// [`Client::set_tracing`]); off by default — untraced frames are
    /// bit-identical to the pre-tracing protocol.
    tracing: bool,
}

impl Client {
    /// Connects to a gateway with no timeouts: connecting blocks as long as
    /// the OS allows, and a hung server blocks every call forever. Prefer
    /// [`Client::connect_timeout`] anywhere a human or a request deadline
    /// is waiting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServingError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServingError::Io {
                what: format!("resolving gateway address: {e}"),
            })?
            .collect();
        let mut client = Self::from_endpoints(&addrs, None, None)?;
        client.ensure_connected()?;
        Ok(client)
    }

    /// Connects to a gateway with an overall connect deadline (shared by
    /// every address the name resolves to — trying a dead IPv6 address
    /// first cannot multiply the wait), and arms the same duration as the
    /// per-call response timeout (tune it afterwards with
    /// [`Client::set_read_timeout`]). A server that accepts but never
    /// answers then fails the pending call with a typed
    /// [`WireError::Timeout`] instead of blocking the caller forever.
    ///
    /// The deadline covers the TCP connection attempts; name resolution
    /// itself goes through the blocking OS resolver (`std` offers no
    /// timeout there), so a hostname behind an unresponsive resolver can
    /// still stall before the deadline starts. Pass a socket address to
    /// skip resolution entirely.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServingError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServingError::Io {
                what: format!("resolving gateway address: {e}"),
            })?
            .collect();
        let mut client = Self::from_endpoints(&addrs, Some(timeout), Some(timeout))?;
        client.ensure_connected()?;
        Ok(client)
    }

    /// Connects to the first healthy endpoint of a replica set, remembering
    /// all of them: every later reconnect — including the automatic ones a
    /// connection-fault [`RetryPolicy`] performs — prefers the endpoint
    /// with the best health record, so a dead or black-holed gateway is
    /// routed around after its first failure. `timeout` bounds each
    /// connect attempt and arms the per-call response timeout, exactly as
    /// [`Client::connect_timeout`] does.
    pub fn connect_any(addrs: &[SocketAddr], timeout: Duration) -> Result<Self, ServingError> {
        let mut client = Self::from_endpoints(addrs, Some(timeout), Some(timeout))?;
        client.ensure_connected()?;
        Ok(client)
    }

    fn from_endpoints(
        addrs: &[SocketAddr],
        connect_timeout: Option<Duration>,
        read_timeout: Option<Duration>,
    ) -> Result<Self, ServingError> {
        if addrs.is_empty() {
            return Err(ServingError::Io {
                what: "gateway address resolved to no socket addresses".to_string(),
            });
        }
        Ok(Self {
            stream: None,
            endpoints: addrs.iter().copied().map(Endpoint::new).collect(),
            current: 0,
            connect_timeout,
            read_timeout,
            poisoned: false,
            retry: None,
            tracing: false,
        })
    }

    /// Turns wire-propagated request tracing on or off. A tracing client
    /// stamps every request frame with a fresh trace ID (version-2 frames;
    /// old gateways that only speak version 1 will reject them), which the
    /// gateway echoes on the response and attaches to its slow-request
    /// exemplars — correlate with [`Client::trace_dump`].
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Endpoint indices in the order a reconnect should try them: healthy
    /// endpoints first (fewest consecutive failures), then cooling-down
    /// ones by soonest cooldown expiry — a client with work to do never
    /// refuses to try every address it knows.
    fn endpoint_order(&self, now: Instant) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.endpoints.len()).collect();
        order.sort_by_key(|&i| {
            self.endpoints
                .get(i)
                .map(|e| {
                    let cooling = e.cooling_down(now);
                    let expiry = e
                        .cooldown_until
                        .map(|until| until.saturating_duration_since(now))
                        .unwrap_or(Duration::ZERO);
                    (cooling, e.failures, expiry)
                })
                .unwrap_or((true, u32::MAX, Duration::MAX))
        });
        order
    }

    /// Establishes a connection if none is held, trying endpoints in
    /// health order and recording per-endpoint outcomes.
    fn ensure_connected(&mut self) -> Result<(), ServingError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let now = Instant::now();
        let mut last_error: Option<String> = None;
        for index in self.endpoint_order(now) {
            let Some(endpoint) = self.endpoints.get(index) else {
                continue;
            };
            let addr = endpoint.addr;
            let attempt = match self.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(&addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(self.read_timeout).ok();
                    self.stream = Some(stream);
                    self.current = index;
                    return Ok(());
                }
                Err(e) => {
                    last_error = Some(format!("{addr}: {e}"));
                    if let Some(endpoint) = self.endpoints.get_mut(index) {
                        endpoint.note_failure(Instant::now());
                    }
                }
            }
        }
        Err(ServingError::Io {
            what: match last_error {
                Some(e) => format!("connecting to gateway: {e}"),
                None => "no gateway endpoint to connect to".to_string(),
            },
        })
    }

    /// The address of the endpoint currently (or most recently) connected
    /// — which gateway of a replica set answered the last call. Any
    /// reconnect (including the automatic ones connection-fault retries
    /// perform) can move it; multi-endpoint load generators use it to
    /// attribute outcomes per gateway.
    pub fn last_endpoint(&self) -> Option<SocketAddr> {
        self.endpoints.get(self.current).map(|e| e.addr)
    }

    /// Arms (or with `None` disarms) the response timeout: a call whose
    /// response does not arrive in time fails with
    /// [`WireError::Timeout`] instead of blocking forever. `Some(0)` is
    /// rejected by the OS; pass `None` to disable. The setting survives
    /// reconnects.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServingError> {
        self.read_timeout = timeout;
        match &self.stream {
            Some(stream) => stream
                .set_read_timeout(timeout)
                .map_err(|e| ServingError::Io {
                    what: format!("arming read timeout: {e}"),
                }),
            None => Ok(()),
        }
    }

    /// Arms (or with `None` disarms) retrying with jittered exponential
    /// backoff: `Overloaded` rejections always, connection-level faults
    /// too when the policy says so (see
    /// [`RetryPolicy::retry_connection_faults`]). `seed` drives the
    /// jitter: fixed in tests for reproducible schedules, distinct per
    /// client in a fleet so rejected clients do not retry in lock-step.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>, seed: u64) {
        self.retry = policy.map(|p| (p, StdRng::seed_from_u64(seed)));
    }

    /// Whether the armed policy retries transport faults.
    fn connection_faults_armed(&self) -> bool {
        self.retry
            .as_ref()
            .is_some_and(|(policy, _)| policy.connection_faults)
    }

    /// Records the current endpoint's outcome in its health memory.
    fn note_endpoint(&mut self, ok: bool) {
        if let Some(endpoint) = self.endpoints.get_mut(self.current) {
            if ok {
                endpoint.note_success();
            } else {
                endpoint.note_failure(Instant::now());
            }
        }
    }

    /// One request/response exchange; remote error frames become
    /// [`ServingError::Remote`]. The borrowed view means no request payload
    /// (feature vectors included) is ever cloned just to be encoded.
    ///
    /// Transport-fault handling depends on the armed [`RetryPolicy`]:
    ///
    /// - Policy retries connection faults: the dead socket is dropped (so
    ///   no stale response can ever be read), the endpoint's health memory
    ///   is charged, and — for idempotent requests within the attempt
    ///   budget — the call reconnects (failing over under
    ///   [`Client::connect_any`]) and retries after a jittered backoff.
    ///   Non-idempotent requests (`ReloadModel`, `ReloadKb`, `Shutdown`)
    ///   are **never** retried: the first send may have executed.
    /// - Otherwise: the connection is poisoned — a timed-out response may
    ///   still arrive later, and delivering it as the answer to the *next*
    ///   request would silently return wrong clinical results. A poisoned
    ///   client fails every call; reconnect to recover.
    ///
    /// `Overloaded` rejections are retried on the same connection whenever
    /// a policy is armed (the typed error frame kept the stream aligned
    /// and the request never executed).
    fn call(&mut self, request: RequestRef<'_>) -> Result<Response, ServingError> {
        if self.poisoned {
            return Err(ServingError::Protocol {
                what: "connection is poisoned by an earlier transport failure (a late \
                       response could answer the wrong request); reconnect"
                    .to_string(),
            });
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let (result, exchanged) = match self.ensure_connected() {
                Ok(()) => (self.exchange(request), true),
                Err(e) => (Err(e), false),
            };
            let transport_fault = matches!(
                result,
                Err(ServingError::Wire(_)) | Err(ServingError::Io { .. })
            );
            if transport_fault && exchanged {
                // Never reuse a stream a fault tore mid-exchange.
                self.stream = None;
                self.note_endpoint(false);
            } else if !transport_fault {
                // Any well-formed answer (including typed Remote errors)
                // proves the endpoint healthy.
                self.note_endpoint(true);
            }
            let overloaded = matches!(
                result,
                Err(ServingError::Remote {
                    code: ErrorCode::Overloaded,
                    ..
                })
            );
            let retry_transport =
                transport_fault && request.is_idempotent() && self.connection_faults_armed();
            match self.retry.as_mut() {
                Some((policy, rng))
                    if (overloaded || retry_transport) && attempt < policy.max_attempts =>
                {
                    let backoff = policy.backoff(attempt, rng);
                    std::thread::sleep(backoff);
                }
                _ => {
                    if transport_fault && !self.connection_faults_armed() {
                        self.poisoned = true;
                    }
                    return result;
                }
            }
        }
    }

    fn exchange(&mut self, request: RequestRef<'_>) -> Result<Response, ServingError> {
        // The armed read timeout doubles as a wall-clock deadline for the
        // whole response frame: a peer trickling bytes faster than the
        // socket timeout but never completing the frame (slow loris) must
        // still fail with a typed timeout, not block the caller forever.
        let frame_deadline = self.read_timeout;
        let trace = self.tracing.then(next_trace_id);
        let Some(stream) = self.stream.as_mut() else {
            return Err(ServingError::Io {
                what: "no gateway connection".to_string(),
            });
        };
        wire::write_frame(stream, &wire::encode_request_ref_traced(request, trace))?;
        let (_trace, payload) =
            wire::read_frame_traced(stream, 1, frame_deadline).map_err(|e| {
                match e {
                    // For a client a frame is always in flight once the
                    // request is written, so "idle" timeouts are the server
                    // failing to answer.
                    WireError::IdleTimeout => WireError::Timeout,
                    other => other,
                }
            })?;
        let response = wire::decode_response(&payload).map_err(WireError::Decode)?;
        match response {
            Response::Error { code, message } => Err(ServingError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Asks one model shard for a top-k suggestion.
    pub fn suggest(
        &mut self,
        model: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        match self.call(RequestRef::Suggest { model, request })? {
            Response::Suggest(response) => Ok(response),
            other => Err(unexpected("Suggest", &other)),
        }
    }

    /// Sends a whole batch in one frame; the server answers it with one
    /// sharded prediction pass, responses in request order.
    pub fn suggest_batch(
        &mut self,
        model: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        match self.call(RequestRef::SuggestBatch { model, requests })? {
            Response::SuggestBatch(responses) => Ok(responses),
            other => Err(unexpected("SuggestBatch", &other)),
        }
    }

    /// Critiques an existing prescription against one shard's DDI graph.
    pub fn check_prescription(
        &mut self,
        model: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        match self.call(RequestRef::CheckPrescription { model, request })? {
            Response::CheckPrescription(report) => Ok(report),
            other => Err(unexpected("CheckPrescription", &other)),
        }
    }

    /// Checks that a reload artifact fits in one wire frame *before* any
    /// byte is written: failing after a multi-megabyte upload would waste
    /// the transfer and poison the connection, and the server would reject
    /// the oversized frame anyway.
    fn check_reload_fits(model: &ModelKey, container: &[u8]) -> Result<(), ServingError> {
        // Frame overhead around the container: message tag, key, two
        // length prefixes — bounded well below this slack.
        let budget = wire::MAX_FRAME_PAYLOAD - model.as_str().len() - 64;
        if container.len() > budget {
            return Err(ServingError::Wire(WireError::Oversized {
                declared: container.len(),
                max: budget,
            }));
        }
        Ok(())
    }

    /// Ships a `DSSD` container to the gateway and hot-swaps it in under a
    /// live key (see `ModelCatalog::replace`); returns the shard's new
    /// listing. The artifact must serve the shard's formulary and fit in
    /// one wire frame ([`wire::MAX_FRAME_PAYLOAD`], 16 MiB) — larger
    /// artifacts reach the gateway as files (`dssddi-serve` arguments /
    /// `ModelCatalog::load_file`). Never retried on transport faults.
    pub fn reload_model(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<ModelInfo, ServingError> {
        Self::check_reload_fits(model, container)?;
        match self.call(RequestRef::ReloadModel { model, container })? {
            Response::ModelReloaded(info) => Ok(info),
            other => Err(unexpected("ReloadModel", &other)),
        }
    }

    /// Ships a `DSKB` container to the gateway and hot-swaps the knowledge
    /// base paired with a live key; returns the new KB's summary. The
    /// artifact must fit in one wire frame ([`wire::MAX_FRAME_PAYLOAD`],
    /// 16 MiB) — larger knowledge bases reach the gateway as files
    /// (`dssddi-serve --kb` / `ModelCatalog::load_kb_file`). Never retried
    /// on transport faults.
    pub fn reload_kb(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<KbInfo, ServingError> {
        Self::check_reload_fits(model, container)?;
        match self.call(RequestRef::ReloadKb { model, container })? {
            Response::KbReloaded(info) => Ok(info),
            other => Err(unexpected("ReloadKb", &other)),
        }
    }

    /// Fetches the summary of the knowledge base paired with one shard.
    pub fn kb_info(&mut self, model: &ModelKey) -> Result<KbInfo, ServingError> {
        match self.call(RequestRef::KbInfo { model })? {
            Response::KbInfo(info) => Ok(info),
            other => Err(unexpected("KbInfo", &other)),
        }
    }

    /// Lists the models the gateway serves.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServingError> {
        match self.call(RequestRef::ListModels)? {
            Response::ListModels(models) => Ok(models),
            other => Err(unexpected("ListModels", &other)),
        }
    }

    /// Fetches per-model serving statistics (the per-model half of
    /// [`Client::stats_report`]).
    pub fn stats(&mut self) -> Result<Vec<(ModelKey, ModelStats)>, ServingError> {
        Ok(self.stats_report()?.models)
    }

    /// Fetches the full statistics report: per-model serving statistics
    /// plus the gateway's transport counters (connections accepted /
    /// active / shed, stalled peers reaped).
    pub fn stats_report(&mut self) -> Result<StatsReport, ServingError> {
        match self.call(RequestRef::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Fetches the gateway's slow-request exemplars — the slowest recently
    /// served data-plane requests, slowest first, each with its trace ID
    /// and per-stage latency breakdown (decode / admit / queue / infer /
    /// encode, in microseconds). `limit` of zero returns the whole ring.
    /// Idempotent, and answered even by a gateway shedding load (trace
    /// dumps bypass admission).
    pub fn trace_dump(&mut self, limit: u64) -> Result<Vec<TraceExemplar>, ServingError> {
        match self.call(RequestRef::TraceDump { limit })? {
            Response::TraceDump(exemplars) => Ok(exemplars),
            other => Err(unexpected("TraceDump", &other)),
        }
    }

    /// Control-plane liveness check: sends a `Ping` frame and returns the
    /// round-trip time. Pings bypass admission control on the gateway, so
    /// health probes keep answering while the data plane sheds load.
    pub fn ping(&mut self) -> Result<Duration, ServingError> {
        let start = Instant::now();
        match self.call(RequestRef::Ping)? {
            Response::Pong => Ok(start.elapsed()),
            other => Err(unexpected("Ping", &other)),
        }
    }

    /// Replica-to-replica version exchange: reports `versions` (the
    /// caller's per-key artifact versions) and returns the peer's own
    /// vector, so one round trip tells both sides who is ahead. Idempotent
    /// — retried across transport faults when retries are armed.
    pub fn peer_status(
        &mut self,
        versions: &[KeyVersions],
    ) -> Result<Vec<KeyVersions>, ServingError> {
        match self.call(RequestRef::PeerStatus { versions })? {
            Response::PeerStatus { versions } => Ok(versions),
            other => Err(unexpected("PeerStatus", &other)),
        }
    }

    /// Replica-to-replica artifact pull: fetches one shard's complete
    /// `DSSD` or `DSKB` container from a peer that is ahead, plus the
    /// version the bytes certify. Idempotent.
    pub fn peer_sync(
        &mut self,
        model: &ModelKey,
        artifact: SyncArtifact,
    ) -> Result<(u64, Vec<u8>), ServingError> {
        match self.call(RequestRef::PeerSync { model, artifact })? {
            Response::PeerSync {
                model: got_model,
                artifact: got_artifact,
                version,
                container,
            } => {
                if &got_model != model || got_artifact != artifact {
                    return Err(ServingError::Protocol {
                        what: format!(
                            "asked to sync {artifact} of {model}, server answered with \
                             {got_artifact} of {got_model}"
                        ),
                    });
                }
                Ok((version, container))
            }
            other => Err(unexpected("PeerSync", &other)),
        }
    }

    /// Asks the gateway to shut down cleanly, consuming the client. Returns
    /// once the server has acknowledged. Never retried on transport faults.
    pub fn shutdown(mut self) -> Result<(), ServingError> {
        match self.call(RequestRef::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("Shutdown", &other)),
        }
    }
}

fn unexpected(asked: &str, got: &Response) -> ServingError {
    // Name only the variant: the payload can be large and is not the point.
    let got = match got {
        Response::Suggest(_) => "Suggest",
        Response::SuggestBatch(_) => "SuggestBatch",
        Response::CheckPrescription(_) => "CheckPrescription",
        Response::ModelReloaded(_) => "ModelReloaded",
        Response::KbReloaded(_) => "KbReloaded",
        Response::KbInfo(_) => "KbInfo",
        Response::ListModels(_) => "ListModels",
        Response::Stats(_) => "Stats",
        Response::Pong => "Pong",
        Response::PeerStatus { .. } => "PeerStatus",
        Response::PeerSync { .. } => "PeerSync",
        Response::TraceDump(_) => "TraceDump",
        Response::ShuttingDown => "ShuttingDown",
        Response::Error { .. } => "Error",
    };
    ServingError::Protocol {
        what: format!("asked for {asked}, server answered {got}"),
    }
}
