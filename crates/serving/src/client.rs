//! The blocking gateway client.
//!
//! [`Client`] speaks the [`crate::wire`] protocol over one TCP connection:
//! each method writes one framed request and blocks for the framed
//! response. Responses carry exactly the bytes the server's in-process
//! `DecisionService` produced — scores and satisfaction values are
//! IEEE-754 bit-identical to a local call on the same fitted service.
//!
//! Server-side failures come back as [`ServingError::Remote`] with the
//! machine-readable [`crate::ErrorCode`], so callers can branch on the
//! failure class (`UnknownModel` vs `InvalidInput` vs `NotFitted` ...)
//! without parsing messages.
//!
//! ## Retrying shed requests
//!
//! A gateway under admission control answers excess load with typed
//! [`ErrorCode::Overloaded`] frames. Those requests never executed, so
//! retrying is safe — and because the error arrives as a well-formed frame
//! the connection stays aligned, so the retry reuses the same socket. A
//! client opts in with [`Client::set_retry_policy`]; retries back off
//! exponentially with jitter (so a fleet of rejected clients does not
//! return in lock-step) and give up after a bounded number of attempts.
//! Only `Overloaded` is retried: every other failure class is either a
//! caller bug (`InvalidInput`), a deployment problem (`UnknownModel`) or a
//! transport failure where the request may have executed.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dssddi_core::{CheckPrescriptionRequest, InteractionReport, SuggestRequest, SuggestResponse};
use dssddi_kb::KbInfo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::router::{ModelInfo, ModelKey, ModelStats};
use crate::wire::{self, ErrorCode, RequestRef, Response, WireError};
use crate::ServingError;

/// Bounded, jittered exponential backoff for retrying `Overloaded`
/// rejections (opt-in via [`Client::set_retry_policy`]).
///
/// Attempt `k` (1-based) sleeps `min(max_delay, base_delay * 2^(k-1))`
/// scaled by a uniform jitter factor in `[0.5, 1.0)` before retrying.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` disables retrying;
    /// clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (pre-jitter).
    pub base_delay: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// A policy with the given bounds (`max_attempts` counts the first
    /// attempt and is clamped to at least 1).
    pub fn new(max_attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay,
            max_delay,
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based: the
    /// retry after the first failed attempt is `attempt == 1`).
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let uncapped = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.max_delay);
        let jitter = rng.gen_range(0.5f64..1.0);
        Duration::from_secs_f64(uncapped.as_secs_f64() * jitter)
    }
}

/// A blocking connection to a `dssddi-serve` gateway.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Set after a transport-level failure (timeout, I/O error, undecodable
    /// frame). The stream may then hold a late or partial response, so
    /// reading the *next* frame could deliver a stale answer to the wrong
    /// request — every later call fails fast instead of risking that.
    poisoned: bool,
    /// Retry policy for `Overloaded` rejections plus the jitter RNG
    /// (`None` = fail fast, the default).
    retry: Option<(RetryPolicy, StdRng)>,
}

impl Client {
    /// Connects to a gateway with no timeouts: connecting blocks as long as
    /// the OS allows, and a hung server blocks every call forever. Prefer
    /// [`Client::connect_timeout`] anywhere a human or a request deadline
    /// is waiting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServingError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServingError::Io {
            what: format!("connecting to gateway: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            poisoned: false,
            retry: None,
        })
    }

    /// Connects to a gateway with an overall connect deadline (shared by
    /// every address the name resolves to — trying a dead IPv6 address
    /// first cannot multiply the wait), and arms the same duration as the
    /// per-call response timeout (tune it afterwards with
    /// [`Client::set_read_timeout`]). A server that accepts but never
    /// answers then fails the pending call with a typed
    /// [`WireError::Timeout`] instead of blocking the caller forever.
    ///
    /// The deadline covers the TCP connection attempts; name resolution
    /// itself goes through the blocking OS resolver (`std` offers no
    /// timeout there), so a hostname behind an unresponsive resolver can
    /// still stall before the deadline starts. Pass a socket address to
    /// skip resolution entirely.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServingError> {
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| ServingError::Io {
                what: format!("resolving gateway address: {e}"),
            })?
            .collect();
        let deadline = std::time::Instant::now() + timeout;
        let mut last_error: Option<std::io::Error> = None;
        let stream = addrs
            .iter()
            .find_map(|addr| {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return None;
                }
                match TcpStream::connect_timeout(addr, remaining) {
                    Ok(stream) => Some(stream),
                    Err(e) => {
                        last_error = Some(e);
                        None
                    }
                }
            })
            .ok_or_else(|| ServingError::Io {
                what: match last_error {
                    Some(e) => format!("connecting to gateway within {timeout:?}: {e}"),
                    None => "gateway address resolved to no socket addresses".to_string(),
                },
            })?;
        stream.set_nodelay(true).ok();
        let client = Self {
            stream,
            poisoned: false,
            retry: None,
        };
        client.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Arms (or with `None` disarms) the response timeout: a call whose
    /// response does not arrive in time fails with
    /// [`WireError::Timeout`] instead of blocking forever. `Some(0)` is
    /// rejected by the OS; pass `None` to disable.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServingError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ServingError::Io {
                what: format!("arming read timeout: {e}"),
            })
    }

    /// Arms (or with `None` disarms) retrying of `Overloaded` rejections
    /// with jittered exponential backoff. `seed` drives the jitter: fixed
    /// in tests for reproducible schedules, distinct per client in a fleet
    /// so rejected clients do not retry in lock-step.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>, seed: u64) {
        self.retry = policy.map(|p| (p, StdRng::seed_from_u64(seed)));
    }

    /// One request/response exchange; remote error frames become
    /// [`ServingError::Remote`]. The borrowed view means no request payload
    /// (feature vectors included) is ever cloned just to be encoded.
    ///
    /// Any transport-level failure poisons the connection: a timed-out
    /// response may still arrive later, and delivering it as the answer to
    /// the *next* request would silently return wrong clinical results.
    /// (Typed `Remote` error frames keep the stream aligned and do not
    /// poison.) A poisoned client fails every call; reconnect to recover.
    ///
    /// With a [`RetryPolicy`] armed, `Overloaded` rejections are retried
    /// on the same connection (the error frame kept the stream aligned and
    /// the request never executed) up to the policy's attempt budget.
    fn call(&mut self, request: RequestRef<'_>) -> Result<Response, ServingError> {
        if self.poisoned {
            return Err(ServingError::Protocol {
                what: "connection is poisoned by an earlier transport failure (a late \
                       response could answer the wrong request); reconnect"
                    .to_string(),
            });
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self.exchange(request);
            if matches!(
                result,
                Err(ServingError::Wire(_)) | Err(ServingError::Io { .. })
            ) {
                self.poisoned = true;
            }
            let overloaded = matches!(
                result,
                Err(ServingError::Remote {
                    code: ErrorCode::Overloaded,
                    ..
                })
            );
            match self.retry.as_mut() {
                Some((policy, rng)) if overloaded && attempt < policy.max_attempts => {
                    let backoff = policy.backoff(attempt, rng);
                    std::thread::sleep(backoff);
                }
                _ => return result,
            }
        }
    }

    fn exchange(&mut self, request: RequestRef<'_>) -> Result<Response, ServingError> {
        wire::write_frame(&mut self.stream, &wire::encode_request_ref(request))?;
        let payload = wire::read_frame(&mut self.stream).map_err(|e| match e {
            // For a client a frame is always in flight once the request is
            // written, so "idle" timeouts are the server failing to answer.
            WireError::IdleTimeout => WireError::Timeout,
            other => other,
        })?;
        let response = wire::decode_response(&payload).map_err(WireError::Decode)?;
        match response {
            Response::Error { code, message } => Err(ServingError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Asks one model shard for a top-k suggestion.
    pub fn suggest(
        &mut self,
        model: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        match self.call(RequestRef::Suggest { model, request })? {
            Response::Suggest(response) => Ok(response),
            other => Err(unexpected("Suggest", &other)),
        }
    }

    /// Sends a whole batch in one frame; the server answers it with one
    /// sharded prediction pass, responses in request order.
    pub fn suggest_batch(
        &mut self,
        model: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        match self.call(RequestRef::SuggestBatch { model, requests })? {
            Response::SuggestBatch(responses) => Ok(responses),
            other => Err(unexpected("SuggestBatch", &other)),
        }
    }

    /// Critiques an existing prescription against one shard's DDI graph.
    pub fn check_prescription(
        &mut self,
        model: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        match self.call(RequestRef::CheckPrescription { model, request })? {
            Response::CheckPrescription(report) => Ok(report),
            other => Err(unexpected("CheckPrescription", &other)),
        }
    }

    /// Checks that a reload artifact fits in one wire frame *before* any
    /// byte is written: failing after a multi-megabyte upload would waste
    /// the transfer and poison the connection, and the server would reject
    /// the oversized frame anyway.
    fn check_reload_fits(model: &ModelKey, container: &[u8]) -> Result<(), ServingError> {
        // Frame overhead around the container: message tag, key, two
        // length prefixes — bounded well below this slack.
        let budget = wire::MAX_FRAME_PAYLOAD - model.as_str().len() - 64;
        if container.len() > budget {
            return Err(ServingError::Wire(WireError::Oversized {
                declared: container.len(),
                max: budget,
            }));
        }
        Ok(())
    }

    /// Ships a `DSSD` container to the gateway and hot-swaps it in under a
    /// live key (see `ModelCatalog::replace`); returns the shard's new
    /// listing. The artifact must serve the shard's formulary and fit in
    /// one wire frame ([`wire::MAX_FRAME_PAYLOAD`], 16 MiB) — larger
    /// artifacts reach the gateway as files (`dssddi-serve` arguments /
    /// `ModelCatalog::load_file`).
    pub fn reload_model(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<ModelInfo, ServingError> {
        Self::check_reload_fits(model, container)?;
        match self.call(RequestRef::ReloadModel { model, container })? {
            Response::ModelReloaded(info) => Ok(info),
            other => Err(unexpected("ReloadModel", &other)),
        }
    }

    /// Ships a `DSKB` container to the gateway and hot-swaps the knowledge
    /// base paired with a live key; returns the new KB's summary. The
    /// artifact must fit in one wire frame ([`wire::MAX_FRAME_PAYLOAD`],
    /// 16 MiB) — larger knowledge bases reach the gateway as files
    /// (`dssddi-serve --kb` / `ModelCatalog::load_kb_file`).
    pub fn reload_kb(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<KbInfo, ServingError> {
        Self::check_reload_fits(model, container)?;
        match self.call(RequestRef::ReloadKb { model, container })? {
            Response::KbReloaded(info) => Ok(info),
            other => Err(unexpected("ReloadKb", &other)),
        }
    }

    /// Fetches the summary of the knowledge base paired with one shard.
    pub fn kb_info(&mut self, model: &ModelKey) -> Result<KbInfo, ServingError> {
        match self.call(RequestRef::KbInfo { model })? {
            Response::KbInfo(info) => Ok(info),
            other => Err(unexpected("KbInfo", &other)),
        }
    }

    /// Lists the models the gateway serves.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServingError> {
        match self.call(RequestRef::ListModels)? {
            Response::ListModels(models) => Ok(models),
            other => Err(unexpected("ListModels", &other)),
        }
    }

    /// Fetches per-model serving statistics.
    pub fn stats(&mut self) -> Result<Vec<(ModelKey, ModelStats)>, ServingError> {
        match self.call(RequestRef::Stats)? {
            Response::Stats(entries) => Ok(entries),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the gateway to shut down cleanly, consuming the client. Returns
    /// once the server has acknowledged.
    pub fn shutdown(mut self) -> Result<(), ServingError> {
        match self.call(RequestRef::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("Shutdown", &other)),
        }
    }
}

fn unexpected(asked: &str, got: &Response) -> ServingError {
    // Name only the variant: the payload can be large and is not the point.
    let got = match got {
        Response::Suggest(_) => "Suggest",
        Response::SuggestBatch(_) => "SuggestBatch",
        Response::CheckPrescription(_) => "CheckPrescription",
        Response::ModelReloaded(_) => "ModelReloaded",
        Response::KbReloaded(_) => "KbReloaded",
        Response::KbInfo(_) => "KbInfo",
        Response::ListModels(_) => "ListModels",
        Response::Stats(_) => "Stats",
        Response::ShuttingDown => "ShuttingDown",
        Response::Error { .. } => "Error",
    };
    ServingError::Protocol {
        what: format!("asked for {asked}, server answered {got}"),
    }
}
