//! The blocking gateway client.
//!
//! [`Client`] speaks the [`crate::wire`] protocol over one TCP connection:
//! each method writes one framed request and blocks for the framed
//! response. Responses carry exactly the bytes the server's in-process
//! `DecisionService` produced — scores and satisfaction values are
//! IEEE-754 bit-identical to a local call on the same fitted service.
//!
//! Server-side failures come back as [`ServingError::Remote`] with the
//! machine-readable [`crate::ErrorCode`], so callers can branch on the
//! failure class (`UnknownModel` vs `InvalidInput` vs `NotFitted` ...)
//! without parsing messages.

use std::net::{TcpStream, ToSocketAddrs};

use dssddi_core::{CheckPrescriptionRequest, InteractionReport, SuggestRequest, SuggestResponse};

use crate::router::{ModelInfo, ModelKey, ModelStats};
use crate::wire::{self, RequestRef, Response, WireError};
use crate::ServingError;

/// A blocking connection to a `dssddi-serve` gateway.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a gateway.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServingError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServingError::Io {
            what: format!("connecting to gateway: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// One request/response exchange; remote error frames become
    /// [`ServingError::Remote`]. The borrowed view means no request payload
    /// (feature vectors included) is ever cloned just to be encoded.
    fn call(&mut self, request: RequestRef<'_>) -> Result<Response, ServingError> {
        wire::write_frame(&mut self.stream, &wire::encode_request_ref(request))?;
        let payload = wire::read_frame(&mut self.stream)?;
        let response = wire::decode_response(&payload).map_err(WireError::Decode)?;
        match response {
            Response::Error { code, message } => Err(ServingError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Asks one model shard for a top-k suggestion.
    pub fn suggest(
        &mut self,
        model: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        match self.call(RequestRef::Suggest { model, request })? {
            Response::Suggest(response) => Ok(response),
            other => Err(unexpected("Suggest", &other)),
        }
    }

    /// Sends a whole batch in one frame; the server answers it with one
    /// sharded prediction pass, responses in request order.
    pub fn suggest_batch(
        &mut self,
        model: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        match self.call(RequestRef::SuggestBatch { model, requests })? {
            Response::SuggestBatch(responses) => Ok(responses),
            other => Err(unexpected("SuggestBatch", &other)),
        }
    }

    /// Critiques an existing prescription against one shard's DDI graph.
    pub fn check_prescription(
        &mut self,
        model: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        match self.call(RequestRef::CheckPrescription { model, request })? {
            Response::CheckPrescription(report) => Ok(report),
            other => Err(unexpected("CheckPrescription", &other)),
        }
    }

    /// Lists the models the gateway serves.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServingError> {
        match self.call(RequestRef::ListModels)? {
            Response::ListModels(models) => Ok(models),
            other => Err(unexpected("ListModels", &other)),
        }
    }

    /// Fetches per-model serving statistics.
    pub fn stats(&mut self) -> Result<Vec<(ModelKey, ModelStats)>, ServingError> {
        match self.call(RequestRef::Stats)? {
            Response::Stats(entries) => Ok(entries),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the gateway to shut down cleanly, consuming the client. Returns
    /// once the server has acknowledged.
    pub fn shutdown(mut self) -> Result<(), ServingError> {
        match self.call(RequestRef::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("Shutdown", &other)),
        }
    }
}

fn unexpected(asked: &str, got: &Response) -> ServingError {
    // Name only the variant: the payload can be large and is not the point.
    let got = match got {
        Response::Suggest(_) => "Suggest",
        Response::SuggestBatch(_) => "SuggestBatch",
        Response::CheckPrescription(_) => "CheckPrescription",
        Response::ListModels(_) => "ListModels",
        Response::Stats(_) => "Stats",
        Response::ShuttingDown => "ShuttingDown",
        Response::Error { .. } => "Error",
    };
    ServingError::Protocol {
        what: format!("asked for {asked}, server answered {got}"),
    }
}
