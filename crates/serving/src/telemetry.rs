//! Serving-path metrics: every hot point of the gateway reports into the
//! process-wide [`dssddi_obs`] registry.
//!
//! Families follow the `dssddi_<subsystem>_<name>` convention, counters
//! suffixed `_total`, durations in microseconds:
//!
//! * `dssddi_serving_requests_total` / `dssddi_serving_errors_total` —
//!   individual requests served / failed (a batch of 16 counts 16).
//! * `dssddi_serving_latency_micros` — end-to-end per-frame latency
//!   (decode through encode), as a quantile summary.
//! * `dssddi_serving_stage_micros{stage=...}` — the same latency broken
//!   down per pipeline [`Stage`] (decode, admit, queue, infer, encode).
//! * `dssddi_admission_shed_total{reason=...}` — requests shed before
//!   execution, by which limit fired (`rate_limit`, `quota`, `queue_full`).
//! * `dssddi_admission_queue_wait_micros` — time admitted calls spent in
//!   the bounded gateway queue.
//! * `dssddi_kb_severity_total{grade=...}` — severity-graded interaction
//!   findings served in prescription critiques, per [`Severity`] grade.
//! * `dssddi_replica_*` — anti-entropy sync rounds, bytes shipped,
//!   peer count and version lag (see [`crate::ReplicaState`]).
//! * `dssddi_gateway_connections_*` — transport counters mirrored from
//!   [`crate::TransportStats`].
//!
//! Handles are resolved once into a process-wide table ([`handles`]); the
//! hot path pays one relaxed atomic per increment. Call
//! [`register_metrics`] at startup so a scrape sees every family at zero
//! before the first request arrives.

use std::sync::OnceLock;

use dssddi_core::InteractionReport;
use dssddi_kb::Severity;
use dssddi_obs::trace::{Stage, STAGE_COUNT};
use dssddi_obs::{global, Counter, Gauge, HistogramHandle};

/// Every serving-path metric handle, resolved once against the global
/// registry.
pub(crate) struct Metrics {
    /// `dssddi_serving_requests_total`.
    pub(crate) requests: Counter,
    /// `dssddi_serving_errors_total`.
    pub(crate) errors: Counter,
    /// `dssddi_serving_latency_micros`.
    pub(crate) latency: HistogramHandle,
    /// `dssddi_serving_stage_micros{stage=...}`, indexed by [`Stage::index`].
    stages: [HistogramHandle; STAGE_COUNT],
    /// `dssddi_admission_shed_total{reason="rate_limit"}`.
    pub(crate) shed_rate: Counter,
    /// `dssddi_admission_shed_total{reason="quota"}`.
    pub(crate) shed_quota: Counter,
    /// `dssddi_admission_shed_total{reason="queue_full"}`.
    pub(crate) shed_queue: Counter,
    /// `dssddi_admission_queue_wait_micros`.
    pub(crate) queue_wait: HistogramHandle,
    /// `dssddi_kb_severity_total{grade=...}`, indexed by [`Severity::to_u8`].
    severities: [Counter; Severity::ALL.len()],
    /// `dssddi_replica_syncs_total`.
    pub(crate) replica_syncs: Counter,
    /// `dssddi_replica_sync_bytes_total`.
    pub(crate) replica_bytes: Counter,
    /// `dssddi_replica_max_lag`.
    pub(crate) replica_lag: Gauge,
    /// `dssddi_replica_peers`.
    pub(crate) replica_peers: Gauge,
    /// `dssddi_gateway_connections_total`.
    pub(crate) connections_accepted: Counter,
    /// `dssddi_gateway_connections_active`.
    pub(crate) connections_active: Gauge,
    /// `dssddi_gateway_connections_shed_total`.
    pub(crate) connections_shed: Counter,
    /// `dssddi_gateway_stalled_reaped_total`.
    pub(crate) stalled_reaped: Counter,
}

impl Metrics {
    /// Records one sample into the per-stage latency family.
    pub(crate) fn observe_stage(&self, stage: Stage, micros: u64) {
        if let Some(histogram) = self.stages.get(stage.index()) {
            histogram.observe(micros);
        }
    }

    /// Counts `n` severity-graded findings of one grade.
    pub(crate) fn count_severity(&self, severity: Severity, n: u64) {
        if let Some(counter) = self.severities.get(usize::from(severity.to_u8())) {
            counter.add(n);
        }
    }
}

/// The process-wide handle table, registering every family on first use.
pub(crate) fn handles() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = global();
        Metrics {
            requests: registry.counter(
                "dssddi_serving_requests_total",
                "Individual requests served (a batch of 16 counts 16)",
            ),
            errors: registry.counter(
                "dssddi_serving_errors_total",
                "Individual requests that ended in an error",
            ),
            latency: registry.histogram(
                "dssddi_serving_latency_micros",
                "End-to-end per-frame serving latency in microseconds",
            ),
            stages: Stage::ALL.map(|stage| {
                registry.histogram_with(
                    "dssddi_serving_stage_micros",
                    "Per-frame serving latency broken down by pipeline stage",
                    &[("stage", stage.as_str())],
                )
            }),
            shed_rate: registry.counter_with(
                "dssddi_admission_shed_total",
                "Requests shed by admission control, by which limit fired",
                &[("reason", "rate_limit")],
            ),
            shed_quota: registry.counter_with(
                "dssddi_admission_shed_total",
                "Requests shed by admission control, by which limit fired",
                &[("reason", "quota")],
            ),
            shed_queue: registry.counter_with(
                "dssddi_admission_shed_total",
                "Requests shed by admission control, by which limit fired",
                &[("reason", "queue_full")],
            ),
            queue_wait: registry.histogram(
                "dssddi_admission_queue_wait_micros",
                "Time admitted calls spent waiting in the bounded gateway queue",
            ),
            severities: Severity::ALL.map(|severity| {
                registry.counter_with(
                    "dssddi_kb_severity_total",
                    "Severity-graded interaction findings served in critiques",
                    &[("grade", severity.name())],
                )
            }),
            replica_syncs: registry.counter(
                "dssddi_replica_syncs_total",
                "Containers pulled from peers and applied by anti-entropy",
            ),
            replica_bytes: registry.counter(
                "dssddi_replica_sync_bytes_total",
                "Total bytes of containers pulled from peers",
            ),
            replica_lag: registry.gauge(
                "dssddi_replica_max_lag",
                "Largest per-key version gap behind any peer at the last round",
            ),
            replica_peers: registry.gauge(
                "dssddi_replica_peers",
                "Peer gateways in the replica group (excluding this one)",
            ),
            connections_accepted: registry.counter(
                "dssddi_gateway_connections_total",
                "Connections the gateway server ever accepted",
            ),
            connections_active: registry.gauge(
                "dssddi_gateway_connections_active",
                "Connections currently being served",
            ),
            connections_shed: registry.counter(
                "dssddi_gateway_connections_shed_total",
                "Connections refused at accept because the bound was reached",
            ),
            stalled_reaped: registry.counter(
                "dssddi_gateway_stalled_reaped_total",
                "Connections reaped because a peer stalled mid-frame",
            ),
        }
    })
}

/// Eagerly registers every serving-path metric family with the global
/// registry, so a `GET /metrics` scrape lists them (at zero) before the
/// first request arrives. Idempotent; `dssddi-serve` calls this at startup.
pub fn register_metrics() {
    let _ = handles();
}

/// Counts the severity-graded findings of one served critique into
/// `dssddi_kb_severity_total{grade=...}`.
pub(crate) fn count_report_severities(report: &InteractionReport) {
    let metrics = handles();
    for finding in report.antagonistic.iter().chain(&report.synergistic) {
        metrics.count_severity(finding.severity, 1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_families_render() {
        register_metrics();
        register_metrics();
        let metrics = handles();
        metrics.observe_stage(Stage::Infer, 120);
        metrics.count_severity(Severity::Contraindicated, 2);
        let text = global().render();
        for family in [
            "dssddi_serving_requests_total",
            "dssddi_serving_stage_micros",
            "dssddi_admission_shed_total",
            "dssddi_kb_severity_total",
            "dssddi_replica_syncs_total",
            "dssddi_gateway_connections_total",
        ] {
            assert!(text.contains(family), "missing family {family}: {text}");
        }
        // All four severity grades render even before any finding fired.
        for grade in Severity::ALL {
            assert!(text.contains(&format!("grade=\"{}\"", grade.name())));
        }
    }
}
