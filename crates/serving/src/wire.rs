//! The versioned binary wire protocol of the serving gateway.
//!
//! Every message travels in a *frame* with the same shape as the `DSSD`
//! container (see [`dssddi_tensor::serde`]), under its own magic bytes and
//! version so a model file can never be confused with a network frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic bytes "DSWR"
//! 4       2     protocol version (little-endian u16, currently 1)
//! 6       8     payload length in bytes (little-endian u64)
//! 14      n     payload (tagged message body)
//! 14+n    4     CRC-32 (IEEE) of the payload (little-endian u32)
//! ```
//!
//! The payload opens with a one-byte message tag followed by the message
//! body, encoded with the same bounds-checked `ByteWriter`/`ByteReader`
//! primitives the model container uses. `f32`/`f64` values travel as their
//! IEEE-754 bit patterns, so scores and suggestion-satisfaction values are
//! **bit-identical** after a round trip — a remote client sees exactly the
//! numbers an in-process caller would.
//!
//! The knowledge-base subsystem extended the protocol *within* version 1:
//! new message tags — `ReloadModel` (8), `ReloadKb` (9) and `KbInfo` (10)
//! requests with matching responses — plus appended fields in existing
//! bodies (alert policy on `CheckPrescription` requests; severity grades,
//! management hints and the KB version on reports; `kb_version` on model
//! listings; the error breakdown on stats). The tag space grew backwards-
//! compatibly, but the grown bodies did not: a pre-KB peer exchanging those
//! messages with a current one sees `Malformed` decode errors, not a
//! version mismatch — both ends of a deployment must ship the same build,
//! which is how this workspace's server, client and binary are always
//! built. A future change that wants true mixed-version interop should
//! bump `WIRE_VERSION` instead of growing bodies again. Reload requests
//! ship the complete `DSSD`/`DSKB` container in the frame, so the artifact
//! the gateway validates is exactly the artifact the operator built.
//!
//! The admission-control subsystem extended the protocol the same way:
//! a new error code `Overloaded` (8) — the typed load-shed reply a gateway
//! under its configured rate limits, quotas or queue bound sends instead of
//! stalling or dropping the connection (the request was never executed, so
//! a backoff-and-retry is always safe) — and three appended fields in the
//! `Stats` body (`shed_requests`, `in_flight`, `queue_depth_hwm`). The
//! same single-build compatibility caveat applies.
//!
//! The resilience subsystem extended the protocol once more: a `Ping` (11)
//! request with a matching `Pong` (11) response — the control-plane health
//! check behind `Client::ping`, which bypasses admission control so
//! liveness probes answer even while the data plane sheds load — plus the
//! gateway transport counters appended to the `Stats` body (connections
//! accepted/active/shed and mid-frame stall reaps). Mid-frame timeout
//! semantics also hardened: a server read deadline now applies *per frame*
//! ([`read_frame_with_limits`]), so a slow-loris peer trickling bytes just
//! under the idle timeout is reaped with a typed [`WireError::Timeout`]
//! once the whole frame overstays its deadline, instead of holding a
//! handler thread forever. The same single-build caveat applies.
//!
//! The replication subsystem extended the protocol once more: a
//! `PeerStatus` (12) request/response pair exchanging per-key
//! `(model_version, kb_version)` version vectors between replicas (the
//! requester sends its own vector, the responder answers with its — one
//! round trip doubles as a gossip exchange), and a `PeerSync` (13)
//! request/response pair through which a lagging replica pulls one shard's
//! complete `DSSD` or `DSKB` container, tagged with the version it
//! certifies, from a peer that is ahead. Both are idempotent reads: the
//! anti-entropy loop may retry them freely across connection faults. The
//! `Stats` body also grew an optional replica section (peer count, sync and
//! byte counters, per-key versions, observed lag) appended after the
//! gateway transport counters. The same single-build caveat applies.
//!
//! The observability subsystem extended the protocol with the first real
//! version bump: **traced frames**. An untraced frame still seals exactly
//! as version 1 above — byte-identical, so old peers interoperate with
//! clients that never enable tracing. A frame carrying a trace seals as
//! version 2 ([`WIRE_VERSION_TRACED`]), whose payload opens with an
//! *extension block* before the tagged message:
//!
//! ```text
//! offset  size  field
//! 0       1     extension count (u8)
//! —  per extension, repeated `count` times —
//! +0      1     extension type (u8)
//! +1      1     extension value length in bytes (u8)
//! +2      len   extension value
//! ```
//!
//! Unknown extension types are skipped on decode, so the block can grow
//! without another version bump. The only type assigned so far is
//! `TraceId` (1): an 8-byte little-endian u64 request trace ID, minted at
//! the client edge (or by the gateway when absent) and threaded through
//! the serving pipeline into per-stage [`SpanRecorder`] breakdowns. A new
//! `TraceDump` (14) request/response pair dumps the gateway's ring of
//! slowest-request exemplars so operators can ask a live deployment where
//! its tail latency lives.
//!
//! [`SpanRecorder`]: dssddi_obs::SpanRecorder
//!
//! ## Tag registry
//!
//! The complete message-tag space of protocol version 1, by direction.
//! Tags are assigned once and never reused: a value dropped from either
//! direction's registry moves to `analysis/baseline.toml`'s
//! `[retired.wire]` list, which `dssddi-analyze`'s wire pass enforces
//! against the constants in this module.
//!
//! | Tag | Request             | Response            |
//! |----:|---------------------|---------------------|
//! |   0 | —                   | `Error`             |
//! |   1 | `Suggest`           | `Suggest`           |
//! |   2 | `SuggestBatch`      | `SuggestBatch`      |
//! |   3 | `CheckPrescription` | `CheckPrescription` |
//! |   4 | `ListModels`        | `ListModels`        |
//! |   5 | `Stats`             | `Stats`             |
//! |   6 | `Shutdown`          | —                   |
//! |   7 | *retired*           | `ShuttingDown`      |
//! |   8 | `ReloadModel`       | `ModelReloaded`     |
//! |   9 | `ReloadKb`          | `KbReloaded`        |
//! |  10 | `KbInfo`            | `KbInfo`            |
//! |  11 | `Ping`              | `Pong`              |
//! |  12 | `PeerStatus`        | `PeerStatus`        |
//! |  13 | `PeerSync`          | `PeerSync`          |
//! |  14 | `TraceDump`         | `TraceDump`         |
//!
//! Decoding is fully defensive: truncated frames, flipped bits (caught by
//! the CRC), foreign magic bytes, future protocol versions, unknown message
//! tags and oversized declared lengths all produce typed [`WireError`]s —
//! never a panic, and never an allocation sized from an unvalidated length.

use std::fmt;
use std::io::{Read, Write};

use dssddi_core::{
    CheckPrescriptionRequest, DrugId, Explanation, InteractionReport, PairInteraction, PatientId,
    ScoredDrug, SignedEdge, SuggestFilters, SuggestRequest, SuggestResponse,
};
use dssddi_graph::{Community, Interaction};
use dssddi_kb::{AlertPolicy, KbInfo, Severity};
use dssddi_obs::trace::{TraceExemplar, STAGE_COUNT};
use dssddi_tensor::serde::{
    open_frame_versions, parse_frame_header_versions, seal_frame, ByteReader, ByteWriter,
    SerdeError, FRAME_HEADER_LEN,
};

use crate::router::{
    GatewayStats, KeyVersions, ModelInfo, ModelKey, ModelStats, ReplicaStats, StatsReport,
};
use crate::ServingError;

/// Magic bytes opening every wire frame ("DSsddi WiRe").
pub const WIRE_MAGIC: [u8; 4] = *b"DSWR";

/// Current wire protocol version. Untraced frames — the default — always
/// seal under this version, bit-identical to every build since the
/// protocol shipped.
pub const WIRE_VERSION: u16 = 1;

/// Wire protocol version of *traced* frames: the payload opens with the
/// extension block (carrying the request trace ID) before the tagged
/// message. Both versions are accepted on decode; old peers that only
/// speak version 1 interoperate with any peer that leaves tracing off.
pub const WIRE_VERSION_TRACED: u16 = 2;

/// Every protocol version this build decodes.
const WIRE_SUPPORTED_VERSIONS: [u16; 2] = [WIRE_VERSION, WIRE_VERSION_TRACED];

/// Frame-extension type carrying the 8-byte little-endian u64 request
/// trace ID in a version-2 frame's extension block.
pub const EXT_TRACE_ID: u8 = 1;

/// Upper bound on a frame's declared payload length. A 64-request batch
/// with wide feature vectors is a few hundred kilobytes; 16 MiB leaves two
/// orders of magnitude of headroom while keeping a malicious length prefix
/// from turning into a giant allocation.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Errors produced while reading, writing or decoding wire frames.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame or its payload failed validation (bad magic, version
    /// mismatch, truncation, CRC mismatch, unknown tag, corrupt field).
    Decode(SerdeError),
    /// The frame header declared a payload larger than [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// Length the header declared.
        declared: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The peer closed the connection cleanly between frames.
    ConnectionClosed,
    /// A read timeout fired before any byte of a frame arrived — the
    /// connection is idle, not broken. Only produced when the caller has
    /// set a read timeout on the stream; servers use it to poll their
    /// shutdown flag between requests.
    IdleTimeout,
    /// A read timeout fired *mid-frame*, or while a client was waiting for
    /// the response to a request it had already sent: the peer stalled.
    /// Only produced when the caller has set a read timeout on the stream
    /// (see `Client::connect_timeout` / `Client::set_read_timeout`).
    Timeout,
    /// A socket read or write failed mid-frame.
    Io {
        /// Description including the underlying error.
        what: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Decode(e) => write!(f, "frame decode error: {e}"),
            WireError::Oversized { declared, max } => write!(
                f,
                "frame declares a {declared}-byte payload, above the {max}-byte limit"
            ),
            WireError::ConnectionClosed => write!(f, "connection closed by peer"),
            WireError::IdleTimeout => write!(f, "read timed out with no frame in flight"),
            WireError::Timeout => write!(f, "peer did not complete a frame within the timeout"),
            WireError::Io { what } => write!(f, "frame i/o error: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SerdeError> for WireError {
    fn from(e: SerdeError) -> Self {
        WireError::Decode(e)
    }
}

/// Machine-readable classification of a server-side failure, carried in
/// [`Response::Error`] frames so remote callers can branch on the failure
/// class without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request frame or payload could not be decoded.
    Malformed,
    /// The request named a model the gateway does not serve.
    UnknownModel,
    /// A drug reference fell outside the routed model's formulary.
    UnknownDrug,
    /// The routed service rejected the request's content.
    InvalidInput,
    /// The request needs a fitted model and the routed shard has none.
    NotFitted,
    /// A persisted artifact (`DSSD` model or `DSKB` knowledge base) was
    /// damaged, version-mismatched or described the wrong formulary — the
    /// reload failure class.
    Persistence,
    /// Admission control shed the request: the gateway (or the routed
    /// shard) is at its configured rate limit, quota or queue bound. The
    /// request was never executed — retrying after a backoff is safe and is
    /// what `Client`'s opt-in retry policy does.
    Overloaded,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    /// Every error code, in tag order — the stats breakdown iterates this.
    /// (`Persistence` and `Overloaded` were added after `Internal` and keep
    /// earlier tag values stable, so they sort last.)
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::Malformed,
        ErrorCode::UnknownModel,
        ErrorCode::UnknownDrug,
        ErrorCode::InvalidInput,
        ErrorCode::NotFitted,
        ErrorCode::Internal,
        ErrorCode::Persistence,
        ErrorCode::Overloaded,
    ];

    /// Position of this code in [`ErrorCode::ALL`] (dense counter index).
    pub(crate) fn index(self) -> usize {
        self.to_u8() as usize - 1
    }

    /// The error class a [`ServingError`] reports as — what `Error` frames
    /// carry and what the per-model error breakdown counts.
    pub fn classify(error: &ServingError) -> ErrorCode {
        use dssddi_core::CoreError;
        match error {
            ServingError::UnknownModel { .. } => ErrorCode::UnknownModel,
            ServingError::Wire(_) | ServingError::Protocol { .. } => ErrorCode::Malformed,
            ServingError::Kb(_) | ServingError::FormularyMismatch { .. } => ErrorCode::Persistence,
            ServingError::Overloaded { .. } => ErrorCode::Overloaded,
            ServingError::Core(CoreError::UnknownDrug { .. }) => ErrorCode::UnknownDrug,
            ServingError::Core(CoreError::NotFitted { .. }) => ErrorCode::NotFitted,
            ServingError::Core(CoreError::Persistence { .. }) => ErrorCode::Persistence,
            ServingError::Core(CoreError::InvalidInput { .. })
            | ServingError::Core(CoreError::InvalidConfig { .. }) => ErrorCode::InvalidInput,
            _ => ErrorCode::Internal,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownModel => 2,
            ErrorCode::UnknownDrug => 3,
            ErrorCode::InvalidInput => 4,
            ErrorCode::NotFitted => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Persistence => 7,
            ErrorCode::Overloaded => 8,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, SerdeError> {
        Ok(match tag {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownModel,
            3 => ErrorCode::UnknownDrug,
            4 => ErrorCode::InvalidInput,
            5 => ErrorCode::NotFitted,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Persistence,
            8 => ErrorCode::Overloaded,
            other => {
                return Err(SerdeError::Corrupt {
                    what: format!("unknown error code {other}"),
                })
            }
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::UnknownDrug => "unknown-drug",
            ErrorCode::InvalidInput => "invalid-input",
            ErrorCode::NotFitted => "not-fitted",
            ErrorCode::Persistence => "persistence",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// Which replicated artifact a [`Request::PeerSync`] pull targets: the
/// trained model (`DSSD` container) or the knowledge base (`DSKB`
/// container) behind a shard key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncArtifact {
    /// The shard's trained model, shipped as a complete `DSSD` container.
    Model,
    /// The shard's knowledge base, shipped as a complete `DSKB` container.
    Kb,
}

impl SyncArtifact {
    fn to_u8(self) -> u8 {
        match self {
            SyncArtifact::Model => 0,
            SyncArtifact::Kb => 1,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, SerdeError> {
        Ok(match tag {
            0 => SyncArtifact::Model,
            1 => SyncArtifact::Kb,
            other => {
                return Err(SerdeError::Corrupt {
                    what: format!("unknown sync artifact {other}"),
                })
            }
        })
    }
}

impl fmt::Display for SyncArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncArtifact::Model => "model",
            SyncArtifact::Kb => "kb",
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Top-k medication suggestion for one patient on one model shard.
    Suggest {
        /// The shard to route to.
        model: ModelKey,
        /// The typed suggestion request.
        request: SuggestRequest,
    },
    /// A batch of suggestion requests served by one model shard in a single
    /// sharded prediction pass.
    SuggestBatch {
        /// The shard to route to.
        model: ModelKey,
        /// The typed suggestion requests.
        requests: Vec<SuggestRequest>,
    },
    /// Critique of an existing prescription against one shard's DDI graph.
    CheckPrescription {
        /// The shard to route to.
        model: ModelKey,
        /// The typed prescription-check request.
        request: CheckPrescriptionRequest,
    },
    /// Hot-swap the model behind a live key with a re-trained `DSSD`
    /// container shipped in the frame. The replacement must serve the same
    /// formulary; in-flight requests finish on the old model.
    ReloadModel {
        /// The shard to swap.
        model: ModelKey,
        /// A complete `DSSD` container (as produced by
        /// `DecisionService::save`).
        container: Vec<u8>,
    },
    /// Hot-swap the knowledge base paired with a live key with a `DSKB`
    /// container shipped in the frame.
    ReloadKb {
        /// The shard whose KB to swap.
        model: ModelKey,
        /// A complete `DSKB` container (as produced by
        /// `KnowledgeBase::save`).
        container: Vec<u8>,
    },
    /// Summary of the knowledge base paired with one shard.
    KbInfo {
        /// The shard to describe.
        model: ModelKey,
    },
    /// Enumerate the models the gateway serves.
    ListModels,
    /// Per-model serving statistics.
    Stats,
    /// Control-plane liveness check: answered with [`Response::Pong`]
    /// without touching any shard and without passing admission control.
    Ping,
    /// Replica-to-replica version-vector exchange: the requester reports
    /// the per-key `(model_version, kb_version)` pairs it holds and the
    /// responder answers with its own, so one round trip tells both sides
    /// who is ahead (gossip-style anti-entropy probe).
    PeerStatus {
        /// The requester's per-key artifact versions.
        versions: Vec<KeyVersions>,
    },
    /// Replica-to-replica artifact pull: ask a peer that is ahead for one
    /// shard's complete container, answered with
    /// [`Response::PeerSync`] carrying the bytes and the version they
    /// certify. Idempotent — pulling twice converges to the same state.
    PeerSync {
        /// The shard to pull.
        model: ModelKey,
        /// Which artifact (model or knowledge base) to ship.
        artifact: SyncArtifact,
    },
    /// Dump the gateway's ring of slowest-request trace exemplars
    /// (control-plane: answered without passing admission control, like
    /// `Stats`).
    TraceDump {
        /// Maximum exemplars to return (`0` means all retained).
        limit: u64,
    },
    /// Ask the server to stop accepting connections and exit its run loop.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Answer to [`Request::Suggest`].
    Suggest(SuggestResponse),
    /// Answer to [`Request::SuggestBatch`], in request order.
    SuggestBatch(Vec<SuggestResponse>),
    /// Answer to [`Request::CheckPrescription`].
    CheckPrescription(InteractionReport),
    /// Answer to [`Request::ReloadModel`]: the swapped shard's new listing.
    ModelReloaded(ModelInfo),
    /// Answer to [`Request::ReloadKb`]: the new knowledge base's summary.
    KbReloaded(KbInfo),
    /// Answer to [`Request::KbInfo`].
    KbInfo(KbInfo),
    /// Answer to [`Request::ListModels`].
    ListModels(Vec<ModelInfo>),
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::PeerStatus`]: the responder's own per-key
    /// version vector.
    PeerStatus {
        /// The responder's per-key artifact versions.
        versions: Vec<KeyVersions>,
    },
    /// Answer to [`Request::PeerSync`]: one shard's complete artifact
    /// container plus the version the bytes certify.
    PeerSync {
        /// The shard the container belongs to.
        model: ModelKey,
        /// Which artifact the container holds.
        artifact: SyncArtifact,
        /// The version the shipped container certifies; the puller adopts
        /// it for the key after applying the container.
        version: u64,
        /// The complete `DSSD` or `DSKB` container bytes.
        container: Vec<u8>,
    },
    /// Answer to [`Request::TraceDump`]: the slowest-request exemplars
    /// retained by the gateway, slowest first.
    TraceDump(Vec<TraceExemplar>),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// A typed server-side failure.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Field codecs. Every `take_*` below reads through the bounds-checked
// `ByteReader`, so a truncated or corrupt body surfaces as a typed
// `SerdeError` from the primitive it failed in.
// ---------------------------------------------------------------------------

fn put_interaction(w: &mut ByteWriter, i: Interaction) {
    w.put_u8(match i {
        Interaction::None => 0,
        Interaction::Synergistic => 1,
        Interaction::Antagonistic => 2,
    });
}

fn take_interaction(r: &mut ByteReader<'_>) -> Result<Interaction, SerdeError> {
    Ok(match r.take_u8("interaction")? {
        0 => Interaction::None,
        1 => Interaction::Synergistic,
        2 => Interaction::Antagonistic,
        other => {
            return Err(SerdeError::Corrupt {
                what: format!("unknown interaction sign {other}"),
            })
        }
    })
}

fn put_severity(w: &mut ByteWriter, severity: Severity) {
    w.put_u8(severity.to_u8());
}

fn take_severity(r: &mut ByteReader<'_>) -> Result<Severity, SerdeError> {
    let tag = r.take_u8("severity")?;
    Severity::from_u8(tag).ok_or_else(|| SerdeError::Corrupt {
        what: format!("unknown severity byte {tag}"),
    })
}

fn put_alert_policy(w: &mut ByteWriter, policy: &AlertPolicy) {
    put_severity(w, policy.min_severity);
    w.put_bool(policy.contraindicated_always_fires);
}

fn take_alert_policy(r: &mut ByteReader<'_>) -> Result<AlertPolicy, SerdeError> {
    Ok(AlertPolicy {
        min_severity: take_severity(r)?,
        contraindicated_always_fires: r.take_bool("policy.contraindicated_always_fires")?,
    })
}

fn put_opt_str(w: &mut ByteWriter, value: Option<&str>) {
    match value {
        Some(s) => {
            w.put_bool(true);
            w.put_str(s);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_str(r: &mut ByteReader<'_>, what: &'static str) -> Result<Option<String>, SerdeError> {
    if r.take_bool(what)? {
        Ok(Some(r.take_str(what)?))
    } else {
        Ok(None)
    }
}

fn put_opt_u64(w: &mut ByteWriter, value: Option<u64>) {
    match value {
        Some(v) => {
            w.put_bool(true);
            w.put_u64(v);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_u64(r: &mut ByteReader<'_>, what: &'static str) -> Result<Option<u64>, SerdeError> {
    if r.take_bool(what)? {
        Ok(Some(r.take_u64(what)?))
    } else {
        Ok(None)
    }
}

fn put_kb_info(w: &mut ByteWriter, info: &KbInfo) {
    w.put_u64(info.version);
    w.put_usize(info.n_facts);
    for count in info.facts_by_severity {
        w.put_usize(count);
    }
    w.put_u64(info.registry_digest);
    w.put_usize(info.n_drugs);
}

fn take_kb_info(r: &mut ByteReader<'_>) -> Result<KbInfo, SerdeError> {
    let version = r.take_u64("kb_info.version")?;
    let n_facts = r.take_usize("kb_info.n_facts")?;
    let mut facts_by_severity = [0usize; 4];
    for count in &mut facts_by_severity {
        *count = r.take_usize("kb_info.facts_by_severity")?;
    }
    Ok(KbInfo {
        version,
        n_facts,
        facts_by_severity,
        registry_digest: r.take_u64("kb_info.registry_digest")?,
        n_drugs: r.take_usize("kb_info.n_drugs")?,
    })
}

fn put_model_key(w: &mut ByteWriter, key: &ModelKey) {
    w.put_str(key.as_str());
}

fn take_model_key(r: &mut ByteReader<'_>) -> Result<ModelKey, SerdeError> {
    let raw = r.take_str("model_key")?;
    ModelKey::new(&raw).map_err(|e| SerdeError::Corrupt {
        what: format!("invalid model key on the wire: {e}"),
    })
}

fn put_suggest_filters(w: &mut ByteWriter, filters: &SuggestFilters) {
    let exclude: Vec<usize> = filters.exclude.iter().map(|d| d.index()).collect();
    let avoid: Vec<usize> = filters
        .avoid_antagonists_of
        .iter()
        .map(|d| d.index())
        .collect();
    let contraindicated: Vec<usize> = filters
        .exclude_contraindicated_with
        .iter()
        .map(|d| d.index())
        .collect();
    w.put_usize_slice(&exclude);
    w.put_usize_slice(&avoid);
    w.put_usize_slice(&contraindicated);
}

fn take_suggest_filters(r: &mut ByteReader<'_>) -> Result<SuggestFilters, SerdeError> {
    let exclude = r.take_usize_vec("filters.exclude")?;
    let avoid = r.take_usize_vec("filters.avoid_antagonists_of")?;
    let contraindicated = r.take_usize_vec("filters.exclude_contraindicated_with")?;
    Ok(SuggestFilters {
        exclude: exclude.into_iter().map(DrugId::new).collect(),
        avoid_antagonists_of: avoid.into_iter().map(DrugId::new).collect(),
        exclude_contraindicated_with: contraindicated.into_iter().map(DrugId::new).collect(),
    })
}

fn put_suggest_request(w: &mut ByteWriter, request: &SuggestRequest) {
    w.put_usize(request.patient.index());
    w.put_f32_slice(&request.features);
    w.put_usize(request.k);
    put_suggest_filters(w, &request.filters);
}

fn take_suggest_request(r: &mut ByteReader<'_>) -> Result<SuggestRequest, SerdeError> {
    let patient = PatientId::new(r.take_usize("request.patient")?);
    let features = r.take_f32_vec("request.features")?;
    let k = r.take_usize("request.k")?;
    let filters = take_suggest_filters(r)?;
    Ok(SuggestRequest::new(patient, features, k).with_filters(filters))
}

fn put_scored_drug(w: &mut ByteWriter, drug: &ScoredDrug) {
    w.put_usize(drug.id.index());
    w.put_str(&drug.name);
    w.put_f32(drug.score);
}

fn take_scored_drug(r: &mut ByteReader<'_>) -> Result<ScoredDrug, SerdeError> {
    Ok(ScoredDrug {
        id: DrugId::new(r.take_usize("drug.id")?),
        name: r.take_str("drug.name")?,
        score: r.take_f32("drug.score")?,
    })
}

fn put_scored_drugs(w: &mut ByteWriter, drugs: &[ScoredDrug]) {
    w.put_usize(drugs.len());
    for drug in drugs {
        put_scored_drug(w, drug);
    }
}

fn take_scored_drugs(r: &mut ByteReader<'_>) -> Result<Vec<ScoredDrug>, SerdeError> {
    let len = r.take_usize("drugs.len")?;
    let mut drugs = Vec::new();
    for _ in 0..len {
        drugs.push(take_scored_drug(r)?);
    }
    Ok(drugs)
}

fn put_community(w: &mut ByteWriter, community: &Community) {
    let nodes: Vec<usize> = community.nodes.iter().copied().collect();
    w.put_usize_slice(&nodes);
    w.put_usize(community.edges.len());
    for &(u, v) in &community.edges {
        w.put_usize(u);
        w.put_usize(v);
    }
    w.put_usize(community.trussness);
    w.put_usize(community.diameter);
}

fn take_community(r: &mut ByteReader<'_>) -> Result<Community, SerdeError> {
    let nodes = r.take_usize_vec("community.nodes")?;
    let n_edges = r.take_usize("community.edges.len")?;
    let mut edges = Vec::new();
    for _ in 0..n_edges {
        let u = r.take_usize("community.edge.u")?;
        let v = r.take_usize("community.edge.v")?;
        edges.push((u, v));
    }
    Ok(Community {
        nodes: nodes.into_iter().collect(),
        edges,
        trussness: r.take_usize("community.trussness")?,
        diameter: r.take_usize("community.diameter")?,
    })
}

fn put_explanation(w: &mut ByteWriter, explanation: &Explanation) {
    w.put_usize_slice(&explanation.suggested);
    put_community(w, &explanation.community);
    w.put_usize(explanation.edges.len());
    for edge in &explanation.edges {
        w.put_usize(edge.u);
        w.put_usize(edge.v);
        put_interaction(w, edge.interaction);
    }
    w.put_usize(explanation.internal_synergy);
    w.put_usize(explanation.internal_antagonism);
    w.put_usize(explanation.external_antagonism);
    w.put_f64(explanation.suggestion_satisfaction);
}

fn take_explanation(r: &mut ByteReader<'_>) -> Result<Explanation, SerdeError> {
    let suggested = r.take_usize_vec("explanation.suggested")?;
    let community = take_community(r)?;
    let n_edges = r.take_usize("explanation.edges.len")?;
    let mut edges = Vec::new();
    for _ in 0..n_edges {
        edges.push(SignedEdge {
            u: r.take_usize("explanation.edge.u")?,
            v: r.take_usize("explanation.edge.v")?,
            interaction: take_interaction(r)?,
        });
    }
    Ok(Explanation {
        suggested,
        community,
        edges,
        internal_synergy: r.take_usize("explanation.internal_synergy")?,
        internal_antagonism: r.take_usize("explanation.internal_antagonism")?,
        external_antagonism: r.take_usize("explanation.external_antagonism")?,
        suggestion_satisfaction: r.take_f64("explanation.ss")?,
    })
}

fn put_suggest_response(w: &mut ByteWriter, response: &SuggestResponse) {
    w.put_usize(response.patient.index());
    put_scored_drugs(w, &response.drugs);
    put_explanation(w, &response.explanation);
    w.put_f64(response.suggestion_satisfaction);
}

fn take_suggest_response(r: &mut ByteReader<'_>) -> Result<SuggestResponse, SerdeError> {
    Ok(SuggestResponse {
        patient: PatientId::new(r.take_usize("response.patient")?),
        drugs: take_scored_drugs(r)?,
        explanation: take_explanation(r)?,
        suggestion_satisfaction: r.take_f64("response.ss")?,
    })
}

fn put_opt_patient(w: &mut ByteWriter, patient: Option<PatientId>) {
    match patient {
        Some(p) => {
            w.put_bool(true);
            w.put_usize(p.index());
        }
        None => w.put_bool(false),
    }
}

fn take_opt_patient(r: &mut ByteReader<'_>) -> Result<Option<PatientId>, SerdeError> {
    if r.take_bool("patient.present")? {
        Ok(Some(PatientId::new(r.take_usize("patient.id")?)))
    } else {
        Ok(None)
    }
}

fn put_check_request(w: &mut ByteWriter, request: &CheckPrescriptionRequest) {
    put_opt_patient(w, request.patient);
    let drugs: Vec<usize> = request.drugs.iter().map(|d| d.index()).collect();
    w.put_usize_slice(&drugs);
    put_alert_policy(w, &request.policy);
}

fn take_check_request(r: &mut ByteReader<'_>) -> Result<CheckPrescriptionRequest, SerdeError> {
    let patient = take_opt_patient(r)?;
    let drugs = r.take_usize_vec("check.drugs")?;
    let policy = take_alert_policy(r)?;
    let mut request = CheckPrescriptionRequest::new(drugs.into_iter().map(DrugId::new).collect())
        .with_policy(policy);
    if let Some(p) = patient {
        request = request.for_patient(p);
    }
    Ok(request)
}

fn put_pair(w: &mut ByteWriter, pair: &PairInteraction) {
    w.put_usize(pair.a.index());
    w.put_str(&pair.a_name);
    w.put_usize(pair.b.index());
    w.put_str(&pair.b_name);
    put_interaction(w, pair.interaction);
    put_severity(w, pair.severity);
    put_opt_str(w, pair.management.as_deref());
}

fn take_pair(r: &mut ByteReader<'_>) -> Result<PairInteraction, SerdeError> {
    Ok(PairInteraction {
        a: DrugId::new(r.take_usize("pair.a")?),
        a_name: r.take_str("pair.a_name")?,
        b: DrugId::new(r.take_usize("pair.b")?),
        b_name: r.take_str("pair.b_name")?,
        interaction: take_interaction(r)?,
        severity: take_severity(r)?,
        management: take_opt_str(r, "pair.management")?,
    })
}

fn put_pairs(w: &mut ByteWriter, pairs: &[PairInteraction]) {
    w.put_usize(pairs.len());
    for pair in pairs {
        put_pair(w, pair);
    }
}

fn take_pairs(r: &mut ByteReader<'_>) -> Result<Vec<PairInteraction>, SerdeError> {
    let len = r.take_usize("pairs.len")?;
    let mut pairs = Vec::new();
    for _ in 0..len {
        pairs.push(take_pair(r)?);
    }
    Ok(pairs)
}

fn put_report(w: &mut ByteWriter, report: &InteractionReport) {
    put_opt_patient(w, report.patient);
    put_scored_drugs(w, &report.drugs);
    put_pairs(w, &report.antagonistic);
    put_pairs(w, &report.synergistic);
    put_explanation(w, &report.explanation);
    w.put_f64(report.suggestion_satisfaction);
    put_opt_u64(w, report.kb_version);
}

fn take_report(r: &mut ByteReader<'_>) -> Result<InteractionReport, SerdeError> {
    Ok(InteractionReport {
        patient: take_opt_patient(r)?,
        drugs: take_scored_drugs(r)?,
        antagonistic: take_pairs(r)?,
        synergistic: take_pairs(r)?,
        explanation: take_explanation(r)?,
        suggestion_satisfaction: r.take_f64("report.ss")?,
        kb_version: take_opt_u64(r, "report.kb_version")?,
    })
}

fn put_model_info(w: &mut ByteWriter, info: &ModelInfo) {
    put_model_key(w, &info.key);
    w.put_bool(info.fitted);
    w.put_usize(info.n_drugs);
    match info.n_features {
        Some(n) => {
            w.put_bool(true);
            w.put_usize(n);
        }
        None => w.put_bool(false),
    }
    w.put_u64(info.registry_digest);
    w.put_str(&info.backbone);
    w.put_u64(info.kb_version);
}

fn take_model_info(r: &mut ByteReader<'_>) -> Result<ModelInfo, SerdeError> {
    let key = take_model_key(r)?;
    let fitted = r.take_bool("model.fitted")?;
    let n_drugs = r.take_usize("model.n_drugs")?;
    let n_features = if r.take_bool("model.n_features.present")? {
        Some(r.take_usize("model.n_features")?)
    } else {
        None
    };
    Ok(ModelInfo {
        key,
        fitted,
        n_drugs,
        n_features,
        registry_digest: r.take_u64("model.registry_digest")?,
        backbone: r.take_str("model.backbone")?,
        kb_version: r.take_u64("model.kb_version")?,
    })
}

fn put_model_stats(w: &mut ByteWriter, stats: &ModelStats) {
    w.put_u64(stats.requests);
    w.put_u64(stats.errors);
    w.put_usize(stats.errors_by_code.len());
    for &(code, count) in &stats.errors_by_code {
        w.put_u8(code.to_u8());
        w.put_u64(count);
    }
    w.put_u64(stats.cache_hits);
    w.put_u64(stats.cache_misses);
    w.put_f64(stats.p50_ms);
    w.put_f64(stats.p99_ms);
    w.put_u64(stats.shed_requests);
    w.put_u64(stats.in_flight);
    w.put_u64(stats.queue_depth_hwm);
    // Appended by the observability work: how many latency samples back
    // the percentiles, so dashboards can tell "no traffic" from "fast
    // traffic" (both report p50/p99 of zero when the window is empty).
    w.put_u64(stats.samples);
}

fn take_model_stats(r: &mut ByteReader<'_>) -> Result<ModelStats, SerdeError> {
    let requests = r.take_u64("stats.requests")?;
    let errors = r.take_u64("stats.errors")?;
    let n_codes = r.take_usize("stats.errors_by_code.len")?;
    let mut errors_by_code = Vec::new();
    for _ in 0..n_codes {
        let code = ErrorCode::from_u8(r.take_u8("stats.error_code")?)?;
        let count = r.take_u64("stats.error_count")?;
        errors_by_code.push((code, count));
    }
    Ok(ModelStats {
        requests,
        errors,
        errors_by_code,
        cache_hits: r.take_u64("stats.cache_hits")?,
        cache_misses: r.take_u64("stats.cache_misses")?,
        p50_ms: r.take_f64("stats.p50_ms")?,
        p99_ms: r.take_f64("stats.p99_ms")?,
        shed_requests: r.take_u64("stats.shed_requests")?,
        in_flight: r.take_u64("stats.in_flight")?,
        queue_depth_hwm: r.take_u64("stats.queue_depth_hwm")?,
        samples: r.take_u64("stats.samples")?,
    })
}

fn put_trace_exemplar(w: &mut ByteWriter, exemplar: &TraceExemplar) {
    w.put_u64(exemplar.trace_id);
    w.put_str(&exemplar.model);
    w.put_str(&exemplar.op);
    w.put_u64(exemplar.total_micros);
    for &micros in &exemplar.stage_micros {
        w.put_u64(micros);
    }
}

fn take_trace_exemplar(r: &mut ByteReader<'_>) -> Result<TraceExemplar, SerdeError> {
    let trace_id = r.take_u64("trace.id")?;
    let model = r.take_str("trace.model")?;
    let op = r.take_str("trace.op")?;
    let total_micros = r.take_u64("trace.total_micros")?;
    let mut stage_micros = [0u64; STAGE_COUNT];
    for micros in &mut stage_micros {
        *micros = r.take_u64("trace.stage_micros")?;
    }
    Ok(TraceExemplar {
        trace_id,
        model,
        op,
        total_micros,
        stage_micros,
    })
}

fn put_gateway_stats(w: &mut ByteWriter, gateway: &GatewayStats) {
    w.put_u64(gateway.connections_accepted);
    w.put_u64(gateway.connections_active);
    w.put_u64(gateway.connections_shed);
    w.put_u64(gateway.stalled_reaped);
}

fn take_gateway_stats(r: &mut ByteReader<'_>) -> Result<GatewayStats, SerdeError> {
    Ok(GatewayStats {
        connections_accepted: r.take_u64("gateway.connections_accepted")?,
        connections_active: r.take_u64("gateway.connections_active")?,
        connections_shed: r.take_u64("gateway.connections_shed")?,
        stalled_reaped: r.take_u64("gateway.stalled_reaped")?,
    })
}

fn put_key_versions(w: &mut ByteWriter, versions: &[KeyVersions]) {
    w.put_usize(versions.len());
    for entry in versions {
        put_model_key(w, &entry.key);
        w.put_u64(entry.model_version);
        w.put_u64(entry.kb_version);
    }
}

fn take_key_versions(r: &mut ByteReader<'_>) -> Result<Vec<KeyVersions>, SerdeError> {
    let len = r.take_usize("versions.len")?;
    let mut versions = Vec::new();
    for _ in 0..len {
        versions.push(KeyVersions {
            key: take_model_key(r)?,
            model_version: r.take_u64("versions.model_version")?,
            kb_version: r.take_u64("versions.kb_version")?,
        });
    }
    Ok(versions)
}

fn put_replica_stats(w: &mut ByteWriter, replica: &ReplicaStats) {
    w.put_usize(replica.peers);
    w.put_u64(replica.syncs);
    w.put_u64(replica.bytes_shipped);
    w.put_u64(replica.max_lag);
    put_key_versions(w, &replica.versions);
}

fn take_replica_stats(r: &mut ByteReader<'_>) -> Result<ReplicaStats, SerdeError> {
    Ok(ReplicaStats {
        peers: r.take_usize("replica.peers")?,
        syncs: r.take_u64("replica.syncs")?,
        bytes_shipped: r.take_u64("replica.bytes_shipped")?,
        max_lag: r.take_u64("replica.max_lag")?,
        versions: take_key_versions(r)?,
    })
}

// ---------------------------------------------------------------------------
// Message codecs.
// ---------------------------------------------------------------------------

const TAG_SUGGEST: u8 = 1;
const TAG_SUGGEST_BATCH: u8 = 2;
const TAG_CHECK_PRESCRIPTION: u8 = 3;
const TAG_LIST_MODELS: u8 = 4;
const TAG_STATS: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_SHUTTING_DOWN: u8 = 7;
// Knowledge-base and hot-reload messages, added after protocol version 1
// shipped: new tags extend the tag space without renumbering the existing
// messages. (Several existing bodies also grew appended fields — see the
// module docs for the compatibility caveat.)
const TAG_RELOAD_MODEL: u8 = 8;
const TAG_RELOAD_KB: u8 = 9;
const TAG_KB_INFO: u8 = 10;
const TAG_MODEL_RELOADED: u8 = 8;
const TAG_KB_RELOADED: u8 = 9;
const TAG_KB_INFO_RESPONSE: u8 = 10;
// Resilience messages: the control-plane liveness check (request and
// response share tag 11, like every paired message above).
const TAG_PING: u8 = 11;
const TAG_PONG: u8 = 11;
// Replication messages: the peer-to-peer version-vector exchange and the
// artifact pull (request and response share a tag, like Ping/Pong).
const TAG_PEER_STATUS: u8 = 12;
const TAG_PEER_SYNC: u8 = 13;
// Observability: the slow-request exemplar dump (request and response
// share tag 14, like every paired message above).
const TAG_TRACE_DUMP: u8 = 14;
const TAG_ERROR: u8 = 0;

/// A borrowed view of a [`Request`], so callers holding the pieces (a key,
/// a slice of requests) can encode a frame without cloning them into an
/// owned message first — the client's hot path.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum RequestRef<'a> {
    /// Borrowed [`Request::Suggest`].
    Suggest {
        /// The shard to route to.
        model: &'a ModelKey,
        /// The typed suggestion request.
        request: &'a SuggestRequest,
    },
    /// Borrowed [`Request::SuggestBatch`].
    SuggestBatch {
        /// The shard to route to.
        model: &'a ModelKey,
        /// The typed suggestion requests.
        requests: &'a [SuggestRequest],
    },
    /// Borrowed [`Request::CheckPrescription`].
    CheckPrescription {
        /// The shard to route to.
        model: &'a ModelKey,
        /// The typed prescription-check request.
        request: &'a CheckPrescriptionRequest,
    },
    /// Borrowed [`Request::ReloadModel`].
    ReloadModel {
        /// The shard to swap.
        model: &'a ModelKey,
        /// The `DSSD` container bytes.
        container: &'a [u8],
    },
    /// Borrowed [`Request::ReloadKb`].
    ReloadKb {
        /// The shard whose KB to swap.
        model: &'a ModelKey,
        /// The `DSKB` container bytes.
        container: &'a [u8],
    },
    /// Borrowed [`Request::KbInfo`].
    KbInfo {
        /// The shard to describe.
        model: &'a ModelKey,
    },
    /// Borrowed [`Request::ListModels`].
    ListModels,
    /// Borrowed [`Request::Stats`].
    Stats,
    /// Borrowed [`Request::Ping`].
    Ping,
    /// Borrowed [`Request::PeerStatus`].
    PeerStatus {
        /// The requester's per-key artifact versions.
        versions: &'a [KeyVersions],
    },
    /// Borrowed [`Request::PeerSync`].
    PeerSync {
        /// The shard to pull.
        model: &'a ModelKey,
        /// Which artifact to ship.
        artifact: SyncArtifact,
    },
    /// Borrowed [`Request::TraceDump`].
    TraceDump {
        /// Maximum exemplars to return (`0` means all retained).
        limit: u64,
    },
    /// Borrowed [`Request::Shutdown`].
    Shutdown,
}

impl RequestRef<'_> {
    /// Whether re-sending this request after a transport fault is safe:
    /// read-only requests never change gateway state, so a duplicate
    /// execution is harmless. Reloads swap live artifacts and `Shutdown`
    /// stops the gateway — a client must never retry those on its own,
    /// because the first send may have executed before the fault.
    pub fn is_idempotent(&self) -> bool {
        match self {
            RequestRef::Suggest { .. }
            | RequestRef::SuggestBatch { .. }
            | RequestRef::CheckPrescription { .. }
            | RequestRef::KbInfo { .. }
            | RequestRef::ListModels
            | RequestRef::Stats
            | RequestRef::Ping
            // Peer messages are reads: a status exchange reports versions
            // and a sync pull ships a container without mutating the
            // responder, so the anti-entropy loop may retry them freely.
            | RequestRef::PeerStatus { .. }
            | RequestRef::PeerSync { .. }
            // Dumping trace exemplars reads a ring without mutating it.
            | RequestRef::TraceDump { .. } => true,
            RequestRef::ReloadModel { .. } | RequestRef::ReloadKb { .. } | RequestRef::Shutdown => {
                false
            }
        }
    }
}

impl Request {
    /// The borrowed view of this request.
    pub fn as_request_ref(&self) -> RequestRef<'_> {
        match self {
            Request::Suggest { model, request } => RequestRef::Suggest { model, request },
            Request::SuggestBatch { model, requests } => {
                RequestRef::SuggestBatch { model, requests }
            }
            Request::CheckPrescription { model, request } => {
                RequestRef::CheckPrescription { model, request }
            }
            Request::ReloadModel { model, container } => {
                RequestRef::ReloadModel { model, container }
            }
            Request::ReloadKb { model, container } => RequestRef::ReloadKb { model, container },
            Request::KbInfo { model } => RequestRef::KbInfo { model },
            Request::ListModels => RequestRef::ListModels,
            Request::Stats => RequestRef::Stats,
            Request::Ping => RequestRef::Ping,
            Request::PeerStatus { versions } => RequestRef::PeerStatus { versions },
            Request::PeerSync { model, artifact } => RequestRef::PeerSync {
                model,
                artifact: *artifact,
            },
            Request::TraceDump { limit } => RequestRef::TraceDump { limit: *limit },
            Request::Shutdown => RequestRef::Shutdown,
        }
    }
}

/// Encodes a borrowed request view into a complete, sealed wire frame.
pub fn encode_request_ref(request: RequestRef<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match request {
        RequestRef::Suggest { model, request } => {
            w.put_u8(TAG_SUGGEST);
            put_model_key(&mut w, model);
            put_suggest_request(&mut w, request);
        }
        RequestRef::SuggestBatch { model, requests } => {
            w.put_u8(TAG_SUGGEST_BATCH);
            put_model_key(&mut w, model);
            w.put_usize(requests.len());
            for request in requests {
                put_suggest_request(&mut w, request);
            }
        }
        RequestRef::CheckPrescription { model, request } => {
            w.put_u8(TAG_CHECK_PRESCRIPTION);
            put_model_key(&mut w, model);
            put_check_request(&mut w, request);
        }
        RequestRef::ReloadModel { model, container } => {
            w.put_u8(TAG_RELOAD_MODEL);
            put_model_key(&mut w, model);
            w.put_u8_slice(container);
        }
        RequestRef::ReloadKb { model, container } => {
            w.put_u8(TAG_RELOAD_KB);
            put_model_key(&mut w, model);
            w.put_u8_slice(container);
        }
        RequestRef::KbInfo { model } => {
            w.put_u8(TAG_KB_INFO);
            put_model_key(&mut w, model);
        }
        RequestRef::ListModels => w.put_u8(TAG_LIST_MODELS),
        RequestRef::Stats => w.put_u8(TAG_STATS),
        RequestRef::Ping => w.put_u8(TAG_PING),
        RequestRef::PeerStatus { versions } => {
            w.put_u8(TAG_PEER_STATUS);
            put_key_versions(&mut w, versions);
        }
        RequestRef::PeerSync { model, artifact } => {
            w.put_u8(TAG_PEER_SYNC);
            put_model_key(&mut w, model);
            w.put_u8(artifact.to_u8());
        }
        RequestRef::TraceDump { limit } => {
            w.put_u8(TAG_TRACE_DUMP);
            w.put_u64(limit);
        }
        RequestRef::Shutdown => w.put_u8(TAG_SHUTDOWN),
    }
    seal_frame(WIRE_MAGIC, WIRE_VERSION, w.as_bytes())
}

/// [`encode_request_ref`] with an optional trace ID. `None` produces the
/// version-1 frame unchanged (bit-identical to [`encode_request_ref`], so
/// untraced clients interoperate with old peers); `Some` re-seals the same
/// payload as a version-2 frame whose extension block carries the ID.
pub fn encode_request_ref_traced(request: RequestRef<'_>, trace: Option<u64>) -> Vec<u8> {
    let frame = encode_request_ref(request);
    match trace {
        None => frame,
        Some(id) => reseal_traced(&frame, id),
    }
}

/// Encodes a request into a complete, sealed wire frame.
pub fn encode_request(request: &Request) -> Vec<u8> {
    encode_request_ref(request.as_request_ref())
}

/// Decodes a request from a validated frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, SerdeError> {
    let mut r = ByteReader::new(payload);
    let request = match r.take_u8("request.tag")? {
        TAG_SUGGEST => Request::Suggest {
            model: take_model_key(&mut r)?,
            request: take_suggest_request(&mut r)?,
        },
        TAG_SUGGEST_BATCH => {
            let model = take_model_key(&mut r)?;
            let len = r.take_usize("batch.len")?;
            let mut requests = Vec::new();
            for _ in 0..len {
                requests.push(take_suggest_request(&mut r)?);
            }
            Request::SuggestBatch { model, requests }
        }
        TAG_CHECK_PRESCRIPTION => Request::CheckPrescription {
            model: take_model_key(&mut r)?,
            request: take_check_request(&mut r)?,
        },
        TAG_RELOAD_MODEL => Request::ReloadModel {
            model: take_model_key(&mut r)?,
            container: r.take_u8_vec("reload.container")?,
        },
        TAG_RELOAD_KB => Request::ReloadKb {
            model: take_model_key(&mut r)?,
            container: r.take_u8_vec("reload.container")?,
        },
        TAG_KB_INFO => Request::KbInfo {
            model: take_model_key(&mut r)?,
        },
        TAG_LIST_MODELS => Request::ListModels,
        TAG_STATS => Request::Stats,
        TAG_PING => Request::Ping,
        TAG_PEER_STATUS => Request::PeerStatus {
            versions: take_key_versions(&mut r)?,
        },
        TAG_PEER_SYNC => Request::PeerSync {
            model: take_model_key(&mut r)?,
            artifact: SyncArtifact::from_u8(r.take_u8("sync.artifact")?)?,
        },
        TAG_TRACE_DUMP => Request::TraceDump {
            limit: r.take_u64("trace.limit")?,
        },
        TAG_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(SerdeError::Corrupt {
                what: format!("unknown request tag {other}"),
            })
        }
    };
    if !r.is_exhausted() {
        return Err(SerdeError::Corrupt {
            what: format!("{} trailing bytes after the request body", r.remaining()),
        });
    }
    Ok(request)
}

/// Encodes a response into a complete, sealed wire frame.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match response {
        Response::Suggest(response) => {
            w.put_u8(TAG_SUGGEST);
            put_suggest_response(&mut w, response);
        }
        Response::SuggestBatch(responses) => {
            w.put_u8(TAG_SUGGEST_BATCH);
            w.put_usize(responses.len());
            for response in responses {
                put_suggest_response(&mut w, response);
            }
        }
        Response::CheckPrescription(report) => {
            w.put_u8(TAG_CHECK_PRESCRIPTION);
            put_report(&mut w, report);
        }
        Response::ListModels(models) => {
            w.put_u8(TAG_LIST_MODELS);
            w.put_usize(models.len());
            for info in models {
                put_model_info(&mut w, info);
            }
        }
        Response::Stats(report) => {
            w.put_u8(TAG_STATS);
            w.put_usize(report.models.len());
            for (key, stats) in &report.models {
                put_model_key(&mut w, key);
                put_model_stats(&mut w, stats);
            }
            // Gateway transport counters, appended after the per-model
            // entries when the resilience work landed (same single-build
            // compatibility caveat as every other grown body).
            put_gateway_stats(&mut w, &report.gateway);
            // Replica section, appended behind a presence flag when the
            // replication work landed: absent on gateways that run without
            // a replica agent.
            match &report.replica {
                Some(replica) => {
                    w.put_bool(true);
                    put_replica_stats(&mut w, replica);
                }
                None => w.put_bool(false),
            }
        }
        Response::ModelReloaded(info) => {
            w.put_u8(TAG_MODEL_RELOADED);
            put_model_info(&mut w, info);
        }
        Response::KbReloaded(info) => {
            w.put_u8(TAG_KB_RELOADED);
            put_kb_info(&mut w, info);
        }
        Response::KbInfo(info) => {
            w.put_u8(TAG_KB_INFO_RESPONSE);
            put_kb_info(&mut w, info);
        }
        Response::Pong => w.put_u8(TAG_PONG),
        Response::PeerStatus { versions } => {
            w.put_u8(TAG_PEER_STATUS);
            put_key_versions(&mut w, versions);
        }
        Response::PeerSync {
            model,
            artifact,
            version,
            container,
        } => {
            w.put_u8(TAG_PEER_SYNC);
            put_model_key(&mut w, model);
            w.put_u8(artifact.to_u8());
            w.put_u64(*version);
            w.put_u8_slice(container);
        }
        Response::TraceDump(exemplars) => {
            w.put_u8(TAG_TRACE_DUMP);
            w.put_usize(exemplars.len());
            for exemplar in exemplars {
                put_trace_exemplar(&mut w, exemplar);
            }
        }
        Response::ShuttingDown => w.put_u8(TAG_SHUTTING_DOWN),
        Response::Error { code, message } => {
            w.put_u8(TAG_ERROR);
            w.put_u8(code.to_u8());
            w.put_str(message);
        }
    }
    seal_frame(WIRE_MAGIC, WIRE_VERSION, w.as_bytes())
}

/// [`encode_response`] with an optional trace ID, mirroring
/// [`encode_request_ref_traced`]: `None` is the version-1 frame unchanged,
/// `Some` re-seals as a version-2 traced frame.
pub fn encode_response_traced(response: &Response, trace: Option<u64>) -> Vec<u8> {
    let frame = encode_response(response);
    match trace {
        None => frame,
        Some(id) => reseal_traced(&frame, id),
    }
}

/// Re-seals a version-1 frame produced in this module as a version-2
/// traced frame: the same tagged payload, prefixed with an extension block
/// carrying `trace_id`.
fn reseal_traced(frame: &[u8], trace_id: u64) -> Vec<u8> {
    // The frame was just sealed by `seal_frame`, so the payload sits
    // between the fixed header and the 4-byte CRC trailer.
    let payload = frame
        .get(FRAME_HEADER_LEN..frame.len().saturating_sub(4))
        .unwrap_or(&[]);
    let mut traced = Vec::with_capacity(payload.len() + 11);
    traced.push(1); // extension count
    traced.push(EXT_TRACE_ID);
    traced.push(8); // extension value length
    traced.extend_from_slice(&trace_id.to_le_bytes());
    traced.extend_from_slice(payload);
    seal_frame(WIRE_MAGIC, WIRE_VERSION_TRACED, &traced)
}

/// Splits a version-2 payload into its trace ID (if the block carries one)
/// and the tagged message that follows. Unknown extension types — and
/// known types with unexpected lengths — are skipped, so the block can
/// grow without another version bump.
fn strip_extensions(payload: &[u8]) -> Result<(Option<u64>, &[u8]), SerdeError> {
    fn take_byte(payload: &[u8], pos: &mut usize) -> Result<u8, SerdeError> {
        let byte = payload.get(*pos).copied().ok_or(SerdeError::Truncated {
            what: "frame extension block",
        })?;
        *pos += 1;
        Ok(byte)
    }
    let mut pos = 0usize;
    let count = take_byte(payload, &mut pos)?;
    let mut trace = None;
    for _ in 0..count {
        let ext_type = take_byte(payload, &mut pos)?;
        let len = take_byte(payload, &mut pos)? as usize;
        let end = pos.checked_add(len).ok_or(SerdeError::Truncated {
            what: "frame extension value",
        })?;
        let value = payload.get(pos..end).ok_or(SerdeError::Truncated {
            what: "frame extension value",
        })?;
        pos = end;
        if ext_type == EXT_TRACE_ID && len == 8 {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(value);
            let id = u64::from_le_bytes(bytes);
            if id != 0 {
                trace = Some(id);
            }
        }
    }
    let rest = payload.get(pos..).ok_or(SerdeError::Truncated {
        what: "frame extension block",
    })?;
    Ok((trace, rest))
}

/// Decodes a response from a validated frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, SerdeError> {
    let mut r = ByteReader::new(payload);
    let response = match r.take_u8("response.tag")? {
        TAG_SUGGEST => Response::Suggest(take_suggest_response(&mut r)?),
        TAG_SUGGEST_BATCH => {
            let len = r.take_usize("batch.len")?;
            let mut responses = Vec::new();
            for _ in 0..len {
                responses.push(take_suggest_response(&mut r)?);
            }
            Response::SuggestBatch(responses)
        }
        TAG_CHECK_PRESCRIPTION => Response::CheckPrescription(take_report(&mut r)?),
        TAG_LIST_MODELS => {
            let len = r.take_usize("models.len")?;
            let mut models = Vec::new();
            for _ in 0..len {
                models.push(take_model_info(&mut r)?);
            }
            Response::ListModels(models)
        }
        TAG_STATS => {
            let len = r.take_usize("stats.len")?;
            let mut models = Vec::new();
            for _ in 0..len {
                let key = take_model_key(&mut r)?;
                let stats = take_model_stats(&mut r)?;
                models.push((key, stats));
            }
            let gateway = take_gateway_stats(&mut r)?;
            let replica = if r.take_bool("stats.replica.present")? {
                Some(take_replica_stats(&mut r)?)
            } else {
                None
            };
            Response::Stats(StatsReport {
                models,
                gateway,
                replica,
            })
        }
        TAG_MODEL_RELOADED => Response::ModelReloaded(take_model_info(&mut r)?),
        TAG_KB_RELOADED => Response::KbReloaded(take_kb_info(&mut r)?),
        TAG_KB_INFO_RESPONSE => Response::KbInfo(take_kb_info(&mut r)?),
        TAG_PONG => Response::Pong,
        TAG_PEER_STATUS => Response::PeerStatus {
            versions: take_key_versions(&mut r)?,
        },
        TAG_PEER_SYNC => Response::PeerSync {
            model: take_model_key(&mut r)?,
            artifact: SyncArtifact::from_u8(r.take_u8("sync.artifact")?)?,
            version: r.take_u64("sync.version")?,
            container: r.take_u8_vec("sync.container")?,
        },
        TAG_TRACE_DUMP => {
            let len = r.take_usize("trace.len")?;
            let mut exemplars = Vec::new();
            for _ in 0..len {
                exemplars.push(take_trace_exemplar(&mut r)?);
            }
            Response::TraceDump(exemplars)
        }
        TAG_SHUTTING_DOWN => Response::ShuttingDown,
        TAG_ERROR => Response::Error {
            code: ErrorCode::from_u8(r.take_u8("error.code")?)?,
            message: r.take_str("error.message")?,
        },
        other => {
            return Err(SerdeError::Corrupt {
                what: format!("unknown response tag {other}"),
            })
        }
    };
    if !r.is_exhausted() {
        return Err(SerdeError::Corrupt {
            what: format!("{} trailing bytes after the response body", r.remaining()),
        });
    }
    Ok(response)
}

/// Validates a complete frame (as produced by [`encode_request`] /
/// [`encode_response`]) and returns its payload, discarding any trace ID.
/// This is the non-streaming entry point used by tests and benchmarks;
/// sockets go through [`read_frame`].
pub fn open_wire_frame(frame: &[u8]) -> Result<&[u8], WireError> {
    open_wire_frame_traced(frame).map(|(_, payload)| payload)
}

/// [`open_wire_frame`] keeping the trace ID a version-2 frame carries
/// (`None` for version-1 frames and traced frames without a trace ID).
pub fn open_wire_frame_traced(frame: &[u8]) -> Result<(Option<u64>, &[u8]), WireError> {
    let (_, declared) = parse_frame_header_versions(WIRE_MAGIC, &WIRE_SUPPORTED_VERSIONS, frame)?;
    if declared > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized {
            declared,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let (version, payload) = open_frame_versions(WIRE_MAGIC, &WIRE_SUPPORTED_VERSIONS, frame)?;
    if version == WIRE_VERSION_TRACED {
        Ok(strip_extensions(payload)?)
    } else {
        Ok((None, payload))
    }
}

/// Writes a sealed frame to a stream.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), WireError> {
    stream.write_all(frame).map_err(|e| WireError::Io {
        what: format!("writing frame: {e}"),
    })?;
    stream.flush().map_err(|e| WireError::Io {
        what: format!("flushing frame: {e}"),
    })
}

/// Reads one frame from a stream and returns its validated payload.
///
/// A clean end-of-stream *between* frames is [`WireError::ConnectionClosed`];
/// end-of-stream *inside* a frame is a truncation error. The declared
/// payload length is checked against [`MAX_FRAME_PAYLOAD`] before any
/// allocation. The first read-timeout expiry mid-frame is a typed
/// [`WireError::Timeout`] — the semantics a client wants, where the armed
/// timeout *is* the response deadline; servers reading multi-megabyte
/// reload frames over short idle-poll timeouts pass a larger stall budget
/// via [`read_frame_with_stall_budget`].
pub fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, WireError> {
    read_frame_with_stall_budget(stream, 1)
}

/// [`read_frame`] tolerating up to `max_stalls` *consecutive* read-timeout
/// expiries while a frame is mid-flight (the counter resets whenever bytes
/// arrive). A timeout before the first frame byte is always
/// [`WireError::IdleTimeout`] and never counts: idle polling stays cheap.
///
/// This exists for servers whose read timeout doubles as a shutdown-poll
/// interval: a 250 ms poll must not sever a peer mid-way through a
/// multi-megabyte `ReloadModel` upload just because TCP stalled for one
/// round of retransmission. `max_stalls` is clamped to at least 1.
///
/// The consecutive-stall budget alone cannot stop a slow-loris peer that
/// trickles one byte per poll interval — every arrival resets the counter,
/// so the frame never completes and the reader never times out. Servers
/// therefore layer a wall-clock per-frame deadline on top via
/// [`read_frame_with_limits`].
pub fn read_frame_with_stall_budget(
    stream: &mut impl Read,
    max_stalls: u32,
) -> Result<Vec<u8>, WireError> {
    read_frame_with_limits(stream, max_stalls, None)
}

/// [`read_frame_with_stall_budget`] plus an optional wall-clock *per-frame
/// deadline*: the clock starts when the first header byte arrives, and a
/// frame still incomplete when the deadline passes fails with a typed
/// [`WireError::Timeout`] — even if bytes are still trickling in. This is
/// the slow-loris defense: progress that never finishes a frame is not
/// progress. Idle waits before the first byte are unaffected and still
/// surface as [`WireError::IdleTimeout`].
pub fn read_frame_with_limits(
    stream: &mut impl Read,
    max_stalls: u32,
    frame_deadline: Option<std::time::Duration>,
) -> Result<Vec<u8>, WireError> {
    read_frame_traced(stream, max_stalls, frame_deadline).map(|(_, payload)| payload)
}

/// [`read_frame_with_limits`] keeping the trace ID a version-2 frame
/// carries (`None` for version-1 frames). This is the server's read path:
/// the gateway threads the trace ID into the request's span breakdown.
pub fn read_frame_traced(
    stream: &mut impl Read,
    max_stalls: u32,
    frame_deadline: Option<std::time::Duration>,
) -> Result<(Option<u64>, Vec<u8>), WireError> {
    let max_stalls = max_stalls.max(1);
    let mut stalls = 0u32;
    let mut deadline: Option<std::time::Instant> = None;
    let check_deadline = |deadline: &Option<std::time::Instant>| -> Result<(), WireError> {
        match deadline {
            Some(at) if std::time::Instant::now() >= *at => Err(WireError::Timeout),
            _ => Ok(()),
        }
    };
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::ConnectionClosed),
            Ok(0) => {
                return Err(WireError::Decode(SerdeError::Truncated {
                    what: "frame header",
                }))
            }
            Ok(n) => {
                if filled == 0 {
                    deadline = frame_deadline.map(|d| std::time::Instant::now() + d);
                }
                filled += n;
                stalls = 0;
                if filled < header.len() {
                    check_deadline(&deadline)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A read timeout before the first frame byte means the
            // connection is merely idle (WouldBlock on Unix SO_RCVTIMEO,
            // TimedOut on Windows); a timeout mid-frame means the peer
            // stalled, tolerated up to the stall budget.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 {
                    return Err(WireError::IdleTimeout);
                }
                check_deadline(&deadline)?;
                stalls += 1;
                if stalls >= max_stalls {
                    return Err(WireError::Timeout);
                }
            }
            Err(e) => {
                return Err(WireError::Io {
                    what: format!("reading frame header: {e}"),
                })
            }
        }
    }
    let (_, declared) = parse_frame_header_versions(WIRE_MAGIC, &WIRE_SUPPORTED_VERSIONS, &header)?;
    if declared > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized {
            declared,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    // Reassemble the full frame so validation (length + CRC) is exactly the
    // container code path.
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + declared + 4);
    frame.extend_from_slice(&header);
    frame.resize(FRAME_HEADER_LEN + declared + 4, 0);
    let mut pos = FRAME_HEADER_LEN;
    while pos < frame.len() {
        match stream.read(&mut frame[pos..]) {
            Ok(0) => {
                return Err(WireError::Decode(SerdeError::Truncated {
                    what: "frame payload",
                }))
            }
            Ok(n) => {
                pos += n;
                stalls = 0;
                if pos < frame.len() {
                    check_deadline(&deadline)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                check_deadline(&deadline)?;
                stalls += 1;
                if stalls >= max_stalls {
                    return Err(WireError::Timeout);
                }
            }
            Err(e) => {
                return Err(WireError::Io {
                    what: format!("reading frame payload: {e}"),
                })
            }
        }
    }
    let (version, payload) = open_frame_versions(WIRE_MAGIC, &WIRE_SUPPORTED_VERSIONS, &frame)?;
    if version == WIRE_VERSION_TRACED {
        let (trace, rest) = strip_extensions(payload)?;
        Ok((trace, rest.to_vec()))
    } else {
        Ok((None, payload.to_vec()))
    }
}

/// Maps a routing/service error to the typed error frame the server sends
/// back, so remote callers see the same failure classes in-process callers
/// match on.
pub fn error_response(error: &ServingError) -> Response {
    Response::Error {
        code: ErrorCode::classify(error),
        message: error.to_string(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::Suggest {
            model: ModelKey::new("chronic").unwrap(),
            request: SuggestRequest::new(PatientId::new(3), vec![0.5, -1.25, f32::NAN], 4)
                .with_filters(SuggestFilters {
                    exclude: vec![DrugId::new(1)],
                    avoid_antagonists_of: vec![DrugId::new(59)],
                    exclude_contraindicated_with: vec![DrugId::new(61)],
                }),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        let request = sample_request();
        let frame = encode_request(&request);
        let payload = open_wire_frame(&frame).unwrap();
        let back = decode_request(payload).unwrap();
        // NaN features break derived equality; compare the pieces.
        match (&request, &back) {
            (
                Request::Suggest {
                    model: m1,
                    request: r1,
                },
                Request::Suggest {
                    model: m2,
                    request: r2,
                },
            ) => {
                assert_eq!(m1, m2);
                assert_eq!(r1.patient, r2.patient);
                assert_eq!(r1.k, r2.k);
                assert_eq!(r1.filters, r2.filters);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&r1.features), bits(&r2.features));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip() {
        let versions = vec![
            KeyVersions {
                key: ModelKey::new("chronic").unwrap(),
                model_version: 3,
                kb_version: 7,
            },
            KeyVersions {
                key: ModelKey::new("critique").unwrap(),
                model_version: 1,
                kb_version: 1,
            },
        ];
        for request in [
            Request::ListModels,
            Request::Stats,
            Request::Ping,
            Request::PeerStatus {
                versions: versions.clone(),
            },
            Request::PeerSync {
                model: ModelKey::new("chronic").unwrap(),
                artifact: SyncArtifact::Kb,
            },
            Request::Shutdown,
        ] {
            let frame = encode_request(&request);
            let payload = open_wire_frame(&frame).unwrap();
            assert_eq!(decode_request(payload).unwrap(), request);
        }
        let replicated = StatsReport {
            replica: Some(ReplicaStats {
                peers: 2,
                syncs: 5,
                bytes_shipped: 40_960,
                max_lag: 1,
                versions: versions.clone(),
            }),
            ..StatsReport::default()
        };
        for response in [
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::UnknownModel,
                message: "no such shard".into(),
            },
            Response::ListModels(vec![]),
            Response::Stats(StatsReport::default()),
            Response::Stats(replicated),
            Response::Pong,
            Response::PeerStatus { versions },
            Response::PeerSync {
                model: ModelKey::new("chronic").unwrap(),
                artifact: SyncArtifact::Model,
                version: 4,
                container: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
        ] {
            let frame = encode_response(&response);
            let payload = open_wire_frame(&frame).unwrap();
            assert_eq!(decode_response(payload).unwrap(), response);
        }
    }

    #[test]
    fn foreign_and_future_frames_are_typed_errors() {
        let frame = encode_request(&Request::ListModels);
        // Foreign magic: a DSSD model file is not a wire frame.
        let mut bad = frame.clone();
        bad[..4].copy_from_slice(b"DSSD");
        assert!(matches!(
            open_wire_frame(&bad),
            Err(WireError::Decode(SerdeError::BadMagic))
        ));
        // Future protocol version (one past the traced version, which is
        // the highest this build decodes).
        let mut bad = frame.clone();
        bad[4..6].copy_from_slice(&3u16.to_le_bytes());
        assert!(matches!(
            open_wire_frame(&bad),
            Err(WireError::Decode(SerdeError::UnsupportedVersion {
                found: 3,
                supported: WIRE_VERSION_TRACED,
            }))
        ));
        // Oversized declared payload is rejected before allocation.
        let mut bad = frame.clone();
        bad[6..14].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            open_wire_frame(&bad),
            Err(WireError::Oversized { .. })
        ));
        // Flipped payload bit: CRC catches it.
        let mut bad = frame.clone();
        let payload_byte = FRAME_HEADER_LEN;
        bad[payload_byte] ^= 0x10;
        assert!(matches!(
            open_wire_frame(&bad),
            Err(WireError::Decode(SerdeError::ChecksumMismatch { .. }))
        ));
        // Truncation anywhere is an error, never a panic.
        for cut in 0..frame.len() {
            assert!(open_wire_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        assert!(matches!(
            decode_request(&[0xEE]),
            Err(SerdeError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_response(&[0xEE]),
            Err(SerdeError::Corrupt { .. })
        ));
        // Trailing bytes after a well-formed body are rejected.
        let mut w = ByteWriter::new();
        w.put_u8(TAG_LIST_MODELS);
        w.put_u8(0);
        assert!(matches!(
            decode_request(w.as_bytes()),
            Err(SerdeError::Corrupt { .. })
        ));
    }

    #[test]
    fn timeouts_are_idle_only_before_the_first_frame_byte() {
        // A reader that yields `prefix` and then times out, like a socket
        // with SO_RCVTIMEO on an idle (or stalled) peer.
        struct StallAfter {
            prefix: Vec<u8>,
            pos: usize,
        }
        impl Read for StallAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.prefix.len() {
                    let n = buf.len().min(self.prefix.len() - self.pos);
                    buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
                }
            }
        }
        // No bytes at all: the connection is idle.
        let mut idle = StallAfter {
            prefix: vec![],
            pos: 0,
        };
        assert!(matches!(read_frame(&mut idle), Err(WireError::IdleTimeout)));
        // A stall mid-frame is a stalled peer, not idleness: typed Timeout.
        let frame = encode_request(&Request::ListModels);
        let mut stalled = StallAfter {
            prefix: frame[..7].to_vec(),
            pos: 0,
        };
        assert!(matches!(read_frame(&mut stalled), Err(WireError::Timeout)));
        // A stall inside the payload (header complete) is a Timeout too.
        let mut stalled = StallAfter {
            prefix: frame[..FRAME_HEADER_LEN + 1].to_vec(),
            pos: 0,
        };
        assert!(matches!(read_frame(&mut stalled), Err(WireError::Timeout)));
        // A stall budget tolerates consecutive expiries mid-frame but still
        // terminates; before the first byte it is always IdleTimeout.
        let mut stalled = StallAfter {
            prefix: frame[..7].to_vec(),
            pos: 0,
        };
        assert!(matches!(
            read_frame_with_stall_budget(&mut stalled, 5),
            Err(WireError::Timeout)
        ));
        let mut idle = StallAfter {
            prefix: vec![],
            pos: 0,
        };
        assert!(matches!(
            read_frame_with_stall_budget(&mut idle, 5),
            Err(WireError::IdleTimeout)
        ));
    }

    #[test]
    fn traced_frames_round_trip_and_untraced_frames_are_bit_identical() {
        let request = sample_request();
        // No trace: the traced encoder is byte-for-byte the v1 encoder.
        assert_eq!(
            encode_request_ref_traced(request.as_request_ref(), None),
            encode_request_ref(request.as_request_ref()),
        );
        let response = Response::Pong;
        assert_eq!(
            encode_response_traced(&response, None),
            encode_response(&response),
        );
        // With a trace: a v2 frame whose payload decodes identically and
        // whose trace ID survives both open paths.
        let traced = encode_request_ref_traced(request.as_request_ref(), Some(0xDEAD_BEEF));
        let (trace, payload) = open_wire_frame_traced(&traced).unwrap();
        assert_eq!(trace, Some(0xDEAD_BEEF));
        assert!(matches!(
            decode_request(payload).unwrap(),
            Request::Suggest { .. }
        ));
        // The trace-discarding entry point still opens the same frame.
        assert_eq!(open_wire_frame(&traced).unwrap(), payload);
        let mut stream = std::io::Cursor::new(traced.clone());
        let (trace, streamed) = read_frame_traced(&mut stream, 1, None).unwrap();
        assert_eq!(trace, Some(0xDEAD_BEEF));
        assert_eq!(streamed, payload);
        // Traced responses too.
        let exemplars = vec![TraceExemplar {
            trace_id: 7,
            model: "chronic".into(),
            op: "suggest".into(),
            total_micros: 1_234,
            stage_micros: [10, 2, 0, 1_200, 22],
        }];
        let frame = encode_response_traced(&Response::TraceDump(exemplars.clone()), Some(7));
        let (trace, payload) = open_wire_frame_traced(&frame).unwrap();
        assert_eq!(trace, Some(7));
        assert_eq!(
            decode_response(payload).unwrap(),
            Response::TraceDump(exemplars)
        );
    }

    #[test]
    fn unknown_extensions_are_skipped_and_torn_blocks_are_typed_errors() {
        let payload_v1 = {
            let frame = encode_request(&Request::ListModels);
            open_wire_frame(&frame).unwrap().to_vec()
        };
        // Three extensions: an unknown type, a trace ID, and an unknown
        // type with a weird length. Only the trace ID is interpreted.
        let mut ext = vec![3u8];
        ext.extend_from_slice(&[0xEE, 2, 0xAA, 0xBB]); // unknown type 0xEE
        ext.push(EXT_TRACE_ID);
        ext.push(8);
        ext.extend_from_slice(&99u64.to_le_bytes());
        ext.extend_from_slice(&[0x7F, 1, 0x00]); // unknown type 0x7F
        ext.extend_from_slice(&payload_v1);
        let frame = seal_frame(WIRE_MAGIC, WIRE_VERSION_TRACED, &ext);
        let (trace, payload) = open_wire_frame_traced(&frame).unwrap();
        assert_eq!(trace, Some(99));
        assert_eq!(decode_request(payload).unwrap(), Request::ListModels);
        // A v2 frame whose extension block runs past the payload is a
        // typed truncation, never a panic.
        let torn = seal_frame(WIRE_MAGIC, WIRE_VERSION_TRACED, &[5u8, EXT_TRACE_ID, 200]);
        assert!(matches!(
            open_wire_frame_traced(&torn),
            Err(WireError::Decode(SerdeError::Truncated { .. }))
        ));
        // A trace extension with the wrong length is skipped, not trusted.
        let mut short = vec![1u8, EXT_TRACE_ID, 4, 1, 2, 3, 4];
        short.extend_from_slice(&payload_v1);
        let frame = seal_frame(WIRE_MAGIC, WIRE_VERSION_TRACED, &short);
        let (trace, payload) = open_wire_frame_traced(&frame).unwrap();
        assert_eq!(trace, None);
        assert_eq!(decode_request(payload).unwrap(), Request::ListModels);
    }

    #[test]
    fn trace_dump_messages_round_trip() {
        let request = Request::TraceDump { limit: 16 };
        let frame = encode_request(&request);
        assert_eq!(
            decode_request(open_wire_frame(&frame).unwrap()).unwrap(),
            request
        );
        let response = Response::TraceDump(vec![
            TraceExemplar {
                trace_id: 1,
                model: "chronic".into(),
                op: "suggest".into(),
                total_micros: 900,
                stage_micros: [1, 2, 3, 890, 4],
            },
            TraceExemplar {
                trace_id: 2,
                model: String::new(),
                op: "stats".into(),
                total_micros: 10,
                stage_micros: [10, 0, 0, 0, 0],
            },
        ]);
        let frame = encode_response(&response);
        assert_eq!(
            decode_response(open_wire_frame(&frame).unwrap()).unwrap(),
            response
        );
    }

    #[test]
    fn borrowed_and_owned_request_encodings_are_identical() {
        let request = sample_request();
        let (model, suggest) = match &request {
            Request::Suggest { model, request } => (model, request),
            other => panic!("sample changed: {other:?}"),
        };
        assert_eq!(
            encode_request(&request),
            encode_request_ref(RequestRef::Suggest {
                model,
                request: suggest
            })
        );
        assert_eq!(
            encode_request(&Request::Stats),
            encode_request_ref(RequestRef::Stats)
        );
    }

    #[test]
    fn streamed_frames_round_trip_through_read_frame() {
        let request = sample_request();
        let frame = encode_request(&request);
        let mut stream = std::io::Cursor::new(frame.clone());
        let payload = read_frame(&mut stream).unwrap();
        assert_eq!(payload, open_wire_frame(&frame).unwrap());
        // A clean EOF between frames is ConnectionClosed ...
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(Vec::<u8>::new())),
            Err(WireError::ConnectionClosed)
        ));
        // ... but EOF inside a frame is a truncation error.
        let mut cut = std::io::Cursor::new(frame[..frame.len() - 2].to_vec());
        assert!(matches!(
            read_frame(&mut cut),
            Err(WireError::Decode(SerdeError::Truncated { .. }))
        ));
    }
}
