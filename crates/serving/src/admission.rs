//! Admission control: load-shed-before-collapse for the gateway.
//!
//! A clinical gateway under overload must keep answering the requests it
//! admits within a bounded latency and reject the excess with a typed
//! [`crate::ErrorCode::Overloaded`] error — never stall every caller behind
//! an unbounded backlog, and never fall over. Three mechanisms compose:
//!
//! 1. **Per-model token buckets** ([`TokenBucket`]): each shard admits at
//!    most `rate_per_sec` individual requests per second with a burst
//!    allowance of `burst` (a `SuggestBatch` of 16 charges 16 tokens).
//! 2. **Per-model in-flight quotas**: a hard cap on the routed calls a
//!    single shard may have executing at once, so one hot shard cannot
//!    monopolise every worker.
//! 3. **A bounded global request queue**: at most `max_in_flight` routed
//!    calls execute concurrently across the whole gateway; when every slot
//!    is busy a call may wait — but only while fewer than `max_queue_depth`
//!    callers are already waiting and never longer than `queue_wait` — and
//!    is shed otherwise. The queue is the *only* place admission blocks,
//!    and both its depth and its wait are bounded, which is what turns
//!    overload into fast typed rejections instead of collapse.
//!
//! Shed requests are counted per shard (`shed_requests` in
//! [`crate::ModelStats`]) and are *not* counted as served requests or
//! errors: they never reached the model. The deterministic
//! [`TokenBucket::try_acquire_at`] core takes explicit nanosecond
//! timestamps so its invariants are property-testable without wall clocks.

use std::time::{Duration, Instant};

use crate::router::ModelKey;
use crate::ServingError;

/// A per-model admission rate: sustained requests per second plus a burst
/// allowance (the bucket capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate in individual requests per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may be admitted instantaneously
    /// after an idle period. Clamped to at least 1 token so a conforming
    /// single request is always admissible.
    pub burst: f64,
}

impl RateLimit {
    /// Validates and builds a rate limit. Rates must be positive and
    /// finite; the burst is clamped to at least one token.
    pub fn new(rate_per_sec: f64, burst: f64) -> Result<Self, ServingError> {
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return Err(ServingError::InvalidKey {
                what: format!("rate limit must be a positive finite rate, got {rate_per_sec}"),
            });
        }
        if !burst.is_finite() || burst < 0.0 {
            return Err(ServingError::InvalidKey {
                what: format!("rate-limit burst must be finite and non-negative, got {burst}"),
            });
        }
        Ok(Self {
            rate_per_sec,
            burst: burst.max(1.0),
        })
    }
}

/// A deterministic token bucket over explicit nanosecond timestamps.
///
/// The bucket starts full (`tokens == capacity`). Refill is *monotone*: a
/// timestamp earlier than one already observed refills nothing (time never
/// runs backwards inside the bucket), and available tokens never exceed the
/// capacity. Over any interval `[t0, t1]` the bucket admits at most
/// `capacity + rate_per_sec · (t1 - t0)` tokens — the invariant the
/// property tests pin down.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_nano: f64,
    capacity: f64,
    tokens: f64,
    last_nanos: u64,
}

impl TokenBucket {
    /// A full bucket with the given limit, with `now_nanos` as its epoch.
    pub fn new(limit: RateLimit, now_nanos: u64) -> Self {
        Self {
            rate_per_nano: limit.rate_per_sec / 1e9,
            capacity: limit.burst,
            tokens: limit.burst,
            last_nanos: now_nanos,
        }
    }

    /// The bucket's capacity (maximum burst).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Tokens available at the last observed timestamp (no refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// Refills for the time elapsed since the last observed timestamp.
    /// Monotone: an out-of-order (earlier) timestamp refills nothing.
    fn refill(&mut self, now_nanos: u64) {
        if now_nanos > self.last_nanos {
            let elapsed = (now_nanos - self.last_nanos) as f64;
            self.tokens = (self.tokens + elapsed * self.rate_per_nano).min(self.capacity);
            self.last_nanos = now_nanos;
        }
    }

    /// Tries to admit `n` tokens at `now_nanos`: refills, then either
    /// debits and admits, or rejects leaving the bucket unchanged (beyond
    /// the refill). `n` larger than the capacity can never be admitted.
    pub fn try_acquire_at(&mut self, n: f64, now_nanos: u64) -> bool {
        self.refill(now_nanos);
        if n <= self.tokens {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

/// Configuration of the gateway's admission control. The default
/// configuration admits everything — each limit opts in separately.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Maximum routed calls executing concurrently across the gateway
    /// (`None` = unbounded).
    pub max_in_flight: Option<usize>,
    /// Callers allowed to wait for a free slot when all `max_in_flight`
    /// slots are busy; arrivals beyond this are shed immediately.
    pub max_queue_depth: usize,
    /// Longest a queued caller waits for a slot before it is shed.
    pub queue_wait: Duration,
    /// Rate limit applied to every model without an explicit entry in
    /// [`AdmissionConfig::rates`] (`None` = unlimited).
    pub default_rate: Option<RateLimit>,
    /// Per-model rate limits, overriding `default_rate`.
    pub rates: Vec<(ModelKey, RateLimit)>,
    /// Per-model in-flight quotas: the most routed calls one shard may have
    /// executing at once.
    pub quotas: Vec<(ModelKey, u64)>,
}

impl AdmissionConfig {
    /// The rate limit that applies to `key` (explicit entry, else default).
    pub(crate) fn rate_for(&self, key: &ModelKey) -> Option<RateLimit> {
        self.rates
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, limit)| limit)
            .or(self.default_rate)
    }

    /// The in-flight quota that applies to `key`.
    pub(crate) fn quota_for(&self, key: &ModelKey) -> Option<u64> {
        self.quotas
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, quota)| quota)
    }

    /// True when every limit is disabled (the default): the router then
    /// skips admission entirely.
    pub fn is_unlimited(&self) -> bool {
        self.max_in_flight.is_none() && self.default_rate.is_none() && self.rates.is_empty() && {
            self.quotas.is_empty()
        }
    }
}

/// State of the bounded global request queue.
#[derive(Debug)]
struct QueueState {
    in_flight: usize,
    waiting: usize,
}

/// The gateway-wide half of admission control: the bounded request queue.
/// Per-model buckets and quotas live on the catalog entries so their
/// counters surface in per-model stats.
#[derive(Debug)]
pub(crate) struct GlobalQueue {
    state: std::sync::Mutex<QueueState>,
    freed: std::sync::Condvar,
    max_in_flight: usize,
    max_queue_depth: usize,
    queue_wait: Duration,
}

/// Recovers a poisoned queue lock: the guarded counters are valid whatever
/// state a panicking thread left them in.
fn requeue<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl GlobalQueue {
    pub(crate) fn new(max_in_flight: usize, max_queue_depth: usize, queue_wait: Duration) -> Self {
        Self {
            state: std::sync::Mutex::new(QueueState {
                in_flight: 0,
                waiting: 0,
            }),
            freed: std::sync::Condvar::new(),
            max_in_flight: max_in_flight.max(1),
            max_queue_depth,
            queue_wait,
        }
    }

    /// Acquires one execution slot, waiting (bounded in depth and time)
    /// when all slots are busy. Returns the queue depth observed on entry
    /// (for the high-water mark) or `Err(())` when the call must be shed.
    pub(crate) fn acquire(&self) -> Result<usize, ()> {
        let mut state = requeue(self.state.lock());
        if state.in_flight < self.max_in_flight {
            state.in_flight += 1;
            return Ok(state.waiting);
        }
        if state.waiting >= self.max_queue_depth {
            return Err(());
        }
        state.waiting += 1;
        let depth = state.waiting;
        let deadline = Instant::now() + self.queue_wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                state.waiting -= 1;
                return Err(());
            }
            let (next, timeout) = self
                .freed
                .wait_timeout(state, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
            if state.in_flight < self.max_in_flight {
                state.waiting -= 1;
                state.in_flight += 1;
                return Ok(depth);
            }
            if timeout.timed_out() {
                state.waiting -= 1;
                return Err(());
            }
        }
    }

    /// Releases one execution slot and wakes one queued caller.
    pub(crate) fn release(&self) {
        let mut state = requeue(self.state.lock());
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.freed.notify_one();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn rate_limits_validate() {
        assert!(RateLimit::new(0.0, 1.0).is_err());
        assert!(RateLimit::new(f64::NAN, 1.0).is_err());
        assert!(RateLimit::new(10.0, f64::INFINITY).is_err());
        assert!(RateLimit::new(10.0, -1.0).is_err());
        // Burst clamps up to one token.
        assert_eq!(RateLimit::new(10.0, 0.0).unwrap().burst, 1.0);
    }

    #[test]
    fn token_bucket_admits_burst_then_refills_at_rate() {
        // 1000 req/s, burst 4.
        let limit = RateLimit::new(1000.0, 4.0).unwrap();
        let mut bucket = TokenBucket::new(limit, 0);
        for _ in 0..4 {
            assert!(bucket.try_acquire_at(1.0, 0));
        }
        assert!(!bucket.try_acquire_at(1.0, 0), "burst exhausted");
        // 1 ms at 1000 req/s refills one token.
        assert!(bucket.try_acquire_at(1.0, 1_000_000));
        assert!(!bucket.try_acquire_at(1.0, 1_000_000));
        // Time running backwards refills nothing.
        assert!(!bucket.try_acquire_at(1.0, 500_000));
        // A long idle period refills to capacity, never beyond.
        assert!(!bucket.try_acquire_at(5.0, u64::MAX / 2), "n > capacity");
        assert!((bucket.available() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn global_queue_sheds_beyond_depth_and_wait() {
        let queue = GlobalQueue::new(1, 0, Duration::from_millis(1));
        assert!(queue.acquire().is_ok());
        // Slot busy, zero queue depth: immediate shed.
        assert!(queue.acquire().is_err());
        queue.release();
        assert!(queue.acquire().is_ok());
        queue.release();

        // With queue depth 1, a waiter times out after queue_wait.
        let queue = GlobalQueue::new(1, 1, Duration::from_millis(10));
        assert!(queue.acquire().is_ok());
        let start = Instant::now();
        assert!(queue.acquire().is_err(), "no slot freed within the wait");
        assert!(start.elapsed() >= Duration::from_millis(10));
        // ... but is admitted when a slot frees in time.
        let queue = std::sync::Arc::new(GlobalQueue::new(1, 1, Duration::from_secs(5)));
        assert!(queue.acquire().is_ok());
        let waiter = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.acquire())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.release();
        assert!(waiter.join().unwrap().is_ok(), "freed slot reaches waiter");
    }
}
