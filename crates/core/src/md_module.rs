//! The Medical Decision module (Section IV-B): MDGCN with counterfactual
//! link augmentation.
//!
//! The encoder maps patient features and drug features into a shared hidden
//! space with two fully connected layers (Eq. 9–10), propagates them over
//! the observed patient–drug bipartite graph with LightGCN-style weighted
//! sums (Eq. 11–13), and adds the DDI relation embeddings learned by the DDI
//! module to the final drug representations. The decoder predicts medication
//! use from `[h_i ⊙ h'_v, T_iv]` (Eq. 14–15). Training optimises the
//! factual cross-entropy plus δ times the counterfactual cross-entropy
//! (Eq. 16–18). Crucially, the *pre-propagation* patient representation is
//! used in the decoder, which avoids the over-smoothing the paper observes
//! in LightGCN (Fig. 7).

use std::rc::Rc;

use rand::Rng;

use dssddi_gnn::{sample_link_batch, Activation, Mlp};
use dssddi_graph::{BipartiteGraph, SignedGraph};
use dssddi_ml::fit_kmeans;
use dssddi_ml::KMeans;
use dssddi_tensor::serde::{ByteReader, ByteWriter, SerdeError};
use dssddi_tensor::{
    fused_linear_into, init, stable_sigmoid, ActivationKind, Adam, Binder, CsrMatrix, Matrix,
    Optimizer, ParamId, ParamSet, ScratchPool, Tape, Var,
};

use crate::config::MdModuleConfig;
use crate::counterfactual::{CounterfactualIndex, TreatmentMatrix};
use crate::persist::{self, section};
use crate::CoreError;

/// A fitted Medical Decision module.
pub struct MdModule {
    params: ParamSet,
    patient_w: ParamId,
    patient_b: ParamId,
    decoder: Mlp,
    config: MdModuleConfig,
    drug_features: Matrix,
    ddi_embeddings: Option<Matrix>,
    ddi_graph: SignedGraph,
    kmeans: KMeans,
    clusters: Vec<usize>,
    treatment: TreatmentMatrix,
    drug_repr: Matrix,
    losses: Vec<f32>,
    counterfactual_match_rate: f64,
}

/// The two bipartite propagation operators: patients→drugs and drugs→patients.
struct BipartiteOperators {
    patient_from_drug: Rc<CsrMatrix>,
    drug_from_patient: Rc<CsrMatrix>,
}

fn bipartite_operators(graph: &BipartiteGraph) -> Result<BipartiteOperators, CoreError> {
    let m = graph.left_count();
    let n = graph.right_count();
    let mut pd = Vec::new();
    let mut dp = Vec::new();
    for (p, d) in graph.edges() {
        let norm = 1.0
            / ((graph.left_degree(p).max(1) as f32).sqrt()
                * (graph.right_degree(d).max(1) as f32).sqrt());
        pd.push((p, d, norm));
        dp.push((d, p, norm));
    }
    Ok(BipartiteOperators {
        patient_from_drug: Rc::new(CsrMatrix::from_triplets(m, n, &pd)?),
        drug_from_patient: Rc::new(CsrMatrix::from_triplets(n, m, &dp)?),
    })
}

/// Layer-combination weights β_t = 1/(t+2) (Section V-A3).
fn layer_betas(layers: usize) -> Vec<f32> {
    (0..=layers).map(|t| 1.0 / (t as f32 + 2.0)).collect()
}

impl MdModule {
    /// Trains MDGCN on the observed patients.
    ///
    /// * `train_features` — features of the observed patients (`m x d1`),
    /// * `train_graph` — their medication use as a bipartite graph,
    /// * `drug_features` — original drug features (`n x d2`; KG embeddings
    ///   or one-hot identities depending on the ablation),
    /// * `ddi_graph` — the signed DDI graph (used for treatment propagation),
    /// * `ddi_embeddings` — drug relation embeddings from the DDI module
    ///   (`n x hidden_dim`), required unless
    ///   [`MdModuleConfig::use_ddi_embeddings`] is false.
    pub fn fit(
        train_features: &Matrix,
        train_graph: &BipartiteGraph,
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        ddi_embeddings: Option<&Matrix>,
        config: &MdModuleConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        let m = train_graph.left_count();
        let n = train_graph.right_count();
        if m == 0 || n == 0 {
            return Err(CoreError::invalid_input(
                "training graph has no patients or drugs",
            ));
        }
        if train_features.rows() != m {
            return Err(CoreError::invalid_input(
                "train_features rows must equal the number of observed patients",
            ));
        }
        if drug_features.rows() != n {
            return Err(CoreError::invalid_input(
                "drug_features rows must equal the number of drugs",
            ));
        }
        if config.hidden_dim == 0 || config.epochs == 0 {
            return Err(CoreError::invalid_config(
                "MDGCN needs a positive hidden dimension and at least one epoch",
            ));
        }
        let ddi_embeddings = if config.use_ddi_embeddings {
            let emb = ddi_embeddings.ok_or_else(|| {
                CoreError::invalid_input(
                    "use_ddi_embeddings is enabled but no DDI embeddings were provided",
                )
            })?;
            if emb.shape() != (n, config.hidden_dim) {
                return Err(CoreError::invalid_input(
                    "DDI embeddings must have shape (n_drugs, hidden_dim)",
                ));
            }
            Some(emb.clone())
        } else {
            None
        };

        // Parameters.
        let mut params = ParamSet::new();
        let h = config.hidden_dim;
        let patient_w = params.add(
            "md.patient_w",
            init::xavier_uniform(train_features.cols(), h, rng),
        );
        let patient_b = params.add("md.patient_b", init::zeros(1, h));
        let drug_w = params.add(
            "md.drug_w",
            init::xavier_uniform(drug_features.cols(), h, rng),
        );
        let drug_b = params.add("md.drug_b", init::zeros(1, h));
        let decoder = Mlp::new(
            "md.decoder",
            &[h + 1, h, 1],
            Activation::LeakyRelu,
            Activation::Identity,
            &mut params,
            rng,
        );

        // Treatment matrix: K-means clusters + observed links + DDI synergy.
        let n_clusters = config.n_clusters.max(1).min(m);
        let kmeans = fit_kmeans(train_features, n_clusters, 50, rng)?;
        let clusters = kmeans.assignments().to_vec();
        let treatment = TreatmentMatrix::build(train_graph, &clusters, ddi_graph)?;
        let labels = Matrix::from_fn(
            m,
            n,
            |p, d| if train_graph.has_edge(p, d) { 1.0 } else { 0.0 },
        );
        let cf_index = if config.use_counterfactual {
            Some(CounterfactualIndex::build(
                train_features,
                drug_features,
                config.gamma_patient,
                config.gamma_drug,
                16,
            ))
        } else {
            None
        };

        let operators = bipartite_operators(train_graph)?;
        let betas = layer_betas(config.propagation_layers);

        // The encoder re-feeds the same feature matrices every epoch; share
        // them with the tapes through `Rc` so no epoch pays a full copy.
        let patient_features_rc = Rc::new(train_features.clone());
        let drug_features_rc = Rc::new(drug_features.clone());
        let ddi_embeddings_rc = ddi_embeddings.as_ref().map(|m| Rc::new(m.clone()));

        let mut optimizer = Adam::new(config.learning_rate);
        let mut losses = Vec::with_capacity(config.epochs);
        let mut matched = 0usize;
        let mut total_cf = 0usize;

        for _ in 0..config.epochs {
            let batch = sample_link_batch(train_graph, config.negatives_per_positive, rng);
            if batch.is_empty() {
                return Err(CoreError::invalid_input("training graph has no links"));
            }
            let factual_t: Vec<f32> = batch
                .patients
                .iter()
                .zip(batch.drugs.iter())
                .map(|(&p, &d)| treatment.get(p, d))
                .collect();
            let counterfactual = cf_index
                .as_ref()
                .map(|idx| idx.find_links(&batch.patients, &batch.drugs, &treatment, &labels));
            if let Some(cf) = &counterfactual {
                matched += cf.matched;
                total_cf += cf.treatments.len();
            }

            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let (hp, hd) = encoder_forward(
                &mut tape,
                &params,
                &mut binder,
                patient_w,
                patient_b,
                drug_w,
                drug_b,
                &patient_features_rc,
                &drug_features_rc,
                &operators,
                &betas,
                ddi_embeddings_rc.as_ref(),
            )?;

            let targets = Matrix::from_vec(batch.targets.len(), 1, batch.targets.clone())?;
            let factual_logits = decode_pairs(
                &mut tape,
                &params,
                &mut binder,
                &decoder,
                hp,
                hd,
                &batch.patients,
                &batch.drugs,
                &factual_t,
            )?;
            let factual_loss = tape.bce_with_logits(factual_logits, &targets)?;

            let loss = if let Some(cf) = &counterfactual {
                let cf_targets = Matrix::from_vec(cf.outcomes.len(), 1, cf.outcomes.clone())?;
                let cf_logits = decode_pairs(
                    &mut tape,
                    &params,
                    &mut binder,
                    &decoder,
                    hp,
                    hd,
                    &batch.patients,
                    &batch.drugs,
                    &cf.treatments,
                )?;
                let cf_loss = tape.bce_with_logits(cf_logits, &cf_targets)?;
                let weighted = tape.scale(cf_loss, config.delta);
                tape.add(factual_loss, weighted)?
            } else {
                factual_loss
            };

            tape.backward(loss)?;
            let grads = binder.grads(&tape, &params);
            optimizer.step(&mut params, &grads)?;
            losses.push(tape.value(loss).get(0, 0));
        }

        // Cache the final drug representations for inference.
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let (_, hd) = encoder_forward(
            &mut tape,
            &params,
            &mut binder,
            patient_w,
            patient_b,
            drug_w,
            drug_b,
            &patient_features_rc,
            &drug_features_rc,
            &operators,
            &betas,
            ddi_embeddings_rc.as_ref(),
        )?;
        let drug_repr = tape.value(hd).clone();
        let counterfactual_match_rate = if total_cf == 0 {
            0.0
        } else {
            matched as f64 / total_cf as f64
        };

        Ok(Self {
            params,
            patient_w,
            patient_b,
            decoder,
            config: config.clone(),
            drug_features: drug_features.clone(),
            ddi_embeddings,
            ddi_graph: ddi_graph.clone(),
            kmeans,
            clusters,
            treatment,
            drug_repr,
            losses,
            counterfactual_match_rate,
        })
    }

    /// Serializes the fitted module: the full parameter set, the decoder
    /// structure, the treatment machinery (k-means, clusters, treatment
    /// matrix) and the cached drug representations — everything
    /// [`MdModule::predict_scores`] touches.
    pub(crate) fn write_into(&self, w: &mut ByteWriter) {
        persist::put_section(w, section::MD_MODULE);
        w.put_param_set(&self.params);
        w.put_param_id(self.patient_w);
        w.put_param_id(self.patient_b);
        self.decoder.write_into(w);
        persist::write_md_config(w, &self.config);
        w.put_matrix(&self.drug_features);
        w.put_opt_matrix(self.ddi_embeddings.as_ref());
        persist::write_signed_graph(w, &self.ddi_graph);
        persist::write_kmeans(w, &self.kmeans);
        w.put_usize_slice(&self.clusters);
        w.put_matrix(self.treatment.matrix());
        w.put_matrix(&self.drug_repr);
        w.put_f32_slice(&self.losses);
        w.put_f64(self.counterfactual_match_rate);
    }

    /// Reconstructs a fitted module written by [`MdModule::write_into`],
    /// validating the cross-field consistency the serving path relies on so
    /// a decoded module can never panic inside `predict_scores`.
    pub(crate) fn read_from(r: &mut ByteReader<'_>) -> Result<Self, SerdeError> {
        persist::expect_section(r, section::MD_MODULE, "md_module")?;
        let params = r.take_param_set("md_module.params")?;
        let patient_w = r.take_param_id(&params, "md_module.patient_w")?;
        let patient_b = r.take_param_id(&params, "md_module.patient_b")?;
        let decoder = Mlp::read_from(r, &params)?;
        let config = persist::read_md_config(r)?;
        let drug_features = r.take_matrix("md_module.drug_features")?;
        let ddi_embeddings = r.take_opt_matrix("md_module.ddi_embeddings")?;
        let ddi_graph = persist::read_signed_graph(r)?;
        let kmeans = persist::read_kmeans(r)?;
        let clusters = r.take_usize_vec("md_module.clusters")?;
        let treatment = r.take_matrix("md_module.treatment")?;
        let drug_repr = r.take_matrix("md_module.drug_repr")?;
        let losses = r.take_f32_vec("md_module.losses")?;
        let counterfactual_match_rate = r.take_f64("md_module.counterfactual_match_rate")?;

        let corrupt = |what: String| SerdeError::Corrupt { what };
        let n_drugs = drug_repr.rows();
        if treatment.cols() != n_drugs {
            return Err(corrupt(format!(
                "treatment matrix covers {} drugs but {} drug representations were persisted",
                treatment.cols(),
                n_drugs
            )));
        }
        if treatment.rows() != clusters.len() {
            return Err(corrupt(format!(
                "treatment matrix has {} patient rows but {} cluster assignments",
                treatment.rows(),
                clusters.len()
            )));
        }
        if clusters.iter().any(|&c| c >= kmeans.k()) {
            return Err(corrupt(
                "a persisted cluster assignment exceeds the k-means cluster count".into(),
            ));
        }
        let patient_hidden = params.get(patient_w).cols();
        if params.get(patient_b).shape() != (1, patient_hidden) {
            return Err(corrupt(
                "patient bias shape disagrees with the patient projection".into(),
            ));
        }
        if decoder.input_dim() != patient_hidden + 1 {
            return Err(corrupt(format!(
                "decoder expects {} inputs but the encoder produces {} (+1 treatment)",
                decoder.input_dim(),
                patient_hidden
            )));
        }
        if decoder.output_dim() != 1 {
            return Err(corrupt(format!(
                "decoder produces {} outputs but medication-use prediction needs exactly 1",
                decoder.output_dim()
            )));
        }
        if drug_repr.cols() != patient_hidden {
            return Err(corrupt(
                "drug representation width disagrees with the patient hidden width".into(),
            ));
        }
        Ok(Self {
            params,
            patient_w,
            patient_b,
            decoder,
            config,
            drug_features,
            ddi_embeddings,
            ddi_graph,
            kmeans,
            clusters,
            treatment: TreatmentMatrix::from_matrix(treatment),
            drug_repr,
            losses,
            counterfactual_match_rate,
        })
    }

    /// Per-epoch training loss trace.
    pub fn training_losses(&self) -> &[f32] {
        &self.losses
    }

    /// Fraction of counterfactual searches that found an opposite-treatment
    /// neighbour within the γ thresholds.
    pub fn counterfactual_match_rate(&self) -> f64 {
        self.counterfactual_match_rate
    }

    /// The final drug representations `h'_v` (+ DDI embeddings if enabled).
    pub fn drug_representations(&self) -> &Matrix {
        &self.drug_repr
    }

    /// The pre-propagation patient representations `h_i` (Eq. 9) for a set of
    /// patients — the personalised embeddings the decoder consumes, and the
    /// quantity compared against LightGCN in Fig. 7(a).
    ///
    /// Runs tape-free (one fused kernel), producing the same bits as the
    /// taped `matmul → add_broadcast_row → leaky_relu` chain used in
    /// training.
    pub fn patient_representations(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let hidden = self.params.get(self.patient_w).cols();
        let mut out = Matrix::zeros(features.rows(), hidden);
        fused_linear_into(
            &mut out,
            features,
            self.params.get(self.patient_w),
            self.params.get(self.patient_b),
            ActivationKind::LeakyRelu(0.01),
        )?;
        Ok(out)
    }

    /// Treatment row for a previously unseen patient, derived from its
    /// K-means cluster and the synergy edges of the DDI graph.
    pub fn treatment_for(&self, features_row: &[f32]) -> Vec<f32> {
        let cluster = self.kmeans.predict_row(features_row);
        self.treatment
            .for_new_patient(cluster, &self.clusters, &self.ddi_graph)
    }

    /// Predicts medication-use scores (probabilities) for unobserved
    /// patients, one row per patient and one column per drug.
    ///
    /// This is the serving fast path: no [`Tape`], no per-op allocation —
    /// the decoder input for each patient is assembled directly into a
    /// scratch buffer that is reused across the whole batch, and the
    /// decoder runs through [`Mlp::infer`]. Produces bit-identical scores
    /// to [`MdModule::predict_scores_taped`] (asserted in tests).
    pub fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        if features.cols() != self.params.get(self.patient_w).rows() {
            return Err(CoreError::invalid_input(
                "patient feature dimension differs from the fitted model",
            ));
        }
        let hp = self.patient_representations(features)?;
        let n_drugs = self.drug_repr.rows();
        let hidden = self.drug_repr.cols();
        let mut pool = ScratchPool::new();
        let mut scores = Matrix::zeros(features.rows(), n_drugs);
        for p in 0..features.rows() {
            let treat = self.treatment_for(features.row(p));
            // Decoder input rows: `[h_i ⊙ h'_v, T_iv]` (Eq. 14).
            let mut input = pool.take(n_drugs, hidden + 1);
            let hp_row = hp.row(p);
            for d in 0..n_drugs {
                let hd_row = self.drug_repr.row(d);
                let row = input.row_mut(d);
                for c in 0..hidden {
                    row[c] = hp_row[c] * hd_row[c];
                }
                row[hidden] = treat[d];
            }
            let logits = self.decoder.infer(&self.params, &input, &mut pool)?;
            for d in 0..n_drugs {
                scores.set(p, d, stable_sigmoid(logits.get(d, 0)));
            }
            pool.recycle(input);
            pool.recycle(logits);
        }
        Ok(scores)
    }

    /// Reference scoring path running every forward pass through the full
    /// autodiff [`Tape`] — the pre-optimization implementation, kept so
    /// tests can assert the fast path is bit-identical and benches can
    /// measure the speedup. Not used by the serving layer.
    pub fn predict_scores_taped(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        if features.cols() != self.params.get(self.patient_w).rows() {
            return Err(CoreError::invalid_input(
                "patient feature dimension differs from the fitted model",
            ));
        }
        // Taped Eq. 9 projection (the historical `patient_representations`).
        let hp = {
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let x = tape.constant(features.clone());
            let w = binder.bind(&mut tape, &self.params, self.patient_w);
            let b = binder.bind(&mut tape, &self.params, self.patient_b);
            let lin = tape.matmul(x, w)?;
            let lin = tape.add_broadcast_row(lin, b)?;
            let h = tape.leaky_relu(lin, 0.01);
            tape.value(h).clone()
        };
        let n_drugs = self.drug_repr.rows();
        let mut scores = Matrix::zeros(features.rows(), n_drugs);
        let all_drugs: Vec<usize> = (0..n_drugs).collect();
        for p in 0..features.rows() {
            let treat = self.treatment_for(features.row(p));
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let hp_var = tape.constant(hp.select_rows(&vec![p; n_drugs]));
            let hd_var = tape.constant(self.drug_repr.clone());
            let hd_sel = tape.select_rows(hd_var, &all_drugs)?;
            let prod = tape.mul(hp_var, hd_sel)?;
            let t_col = tape.constant(Matrix::col_vector(&treat));
            let cat = tape.concat_cols(prod, t_col)?;
            let logits = self
                .decoder
                .forward(&mut tape, &self.params, &mut binder, cat)?;
            let probs = tape.sigmoid(logits);
            let values = tape.value(probs);
            for d in 0..n_drugs {
                scores.set(p, d, values.get(d, 0));
            }
        }
        Ok(scores)
    }

    /// Number of drugs the module was trained on.
    pub fn n_drugs(&self) -> usize {
        self.drug_repr.rows()
    }

    /// The fitted configuration.
    pub fn config(&self) -> &MdModuleConfig {
        &self.config
    }

    /// Original drug features used by the encoder.
    pub fn drug_features(&self) -> &Matrix {
        &self.drug_features
    }

    /// The DDI relation embeddings shared from the DDI module, if enabled.
    pub fn ddi_embeddings(&self) -> Option<&Matrix> {
        self.ddi_embeddings.as_ref()
    }
}

/// Runs the MDGCN encoder: FC layers, bipartite propagation with layer
/// combination, and addition of the DDI relation embeddings.
#[allow(clippy::too_many_arguments)]
fn encoder_forward(
    tape: &mut Tape,
    params: &ParamSet,
    binder: &mut Binder,
    patient_w: ParamId,
    patient_b: ParamId,
    drug_w: ParamId,
    drug_b: ParamId,
    patient_features: &Rc<Matrix>,
    drug_features: &Rc<Matrix>,
    operators: &BipartiteOperators,
    betas: &[f32],
    ddi_embeddings: Option<&Rc<Matrix>>,
) -> Result<(Var, Var), CoreError> {
    // Eq. 9-10: project both sides into the shared hidden space.
    let xp = tape.constant_shared(Rc::clone(patient_features));
    let wp = binder.bind(tape, params, patient_w);
    let bp = binder.bind(tape, params, patient_b);
    let hp_lin = tape.matmul(xp, wp)?;
    let hp_lin = tape.add_broadcast_row(hp_lin, bp)?;
    let hp = tape.leaky_relu(hp_lin, 0.01);

    let xd = tape.constant_shared(Rc::clone(drug_features));
    let wd = binder.bind(tape, params, drug_w);
    let bd = binder.bind(tape, params, drug_b);
    let hd_lin = tape.matmul(xd, wd)?;
    let hd_lin = tape.add_broadcast_row(hd_lin, bd)?;
    let hd = tape.leaky_relu(hd_lin, 0.01);

    // Eq. 11-13: alternate propagation across the bipartite graph and
    // combine the per-layer drug representations with the β weights.
    let mut cur_p = hp;
    let mut cur_d = hd;
    let mut combined_d = tape.scale(hd, betas[0]);
    for &beta in betas.iter().skip(1) {
        let next_p = tape.spmm(&operators.patient_from_drug, cur_d)?;
        let next_d = tape.spmm(&operators.drug_from_patient, cur_p)?;
        cur_p = next_p;
        cur_d = next_d;
        let weighted = tape.scale(cur_d, beta);
        combined_d = tape.add(combined_d, weighted)?;
    }

    // Share the DDI relation embeddings: h'_v = h'_v + z_v.
    let final_d = match ddi_embeddings {
        Some(z) => {
            let zv = tape.constant_shared(Rc::clone(z));
            tape.add(combined_d, zv)?
        }
        None => combined_d,
    };
    Ok((hp, final_d))
}

/// Decodes a batch of patient–drug pairs into link logits (Eq. 14–15).
#[allow(clippy::too_many_arguments)]
fn decode_pairs(
    tape: &mut Tape,
    params: &ParamSet,
    binder: &mut Binder,
    decoder: &Mlp,
    hp: Var,
    hd: Var,
    patients: &[usize],
    drugs: &[usize],
    treatments: &[f32],
) -> Result<Var, CoreError> {
    let hi = tape.select_rows(hp, patients)?;
    let hv = tape.select_rows(hd, drugs)?;
    let prod = tape.mul(hi, hv)?;
    let t_col = tape.constant(Matrix::col_vector(treatments));
    let cat = tape.concat_cols(prod, t_col)?;
    Ok(decoder.forward(tape, params, binder, cat)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use dssddi_graph::Interaction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A toy world: two patient groups with distinct features, each group
    /// taking a distinct pair of drugs; one synergy edge inside each pair.
    fn toy() -> (Matrix, BipartiteGraph, Matrix, SignedGraph) {
        let mut pairs = Vec::new();
        let features = Matrix::from_fn(20, 4, |p, c| {
            let group = p / 10;
            if c < 2 {
                if group == 0 {
                    1.0
                } else {
                    0.0
                }
            } else if group == 1 {
                1.0
            } else {
                0.0
            }
        });
        for p in 0..20 {
            if p / 10 == 0 {
                pairs.push((p, 0));
                pairs.push((p, 1));
            } else {
                pairs.push((p, 4));
                pairs.push((p, 5));
            }
        }
        let graph = BipartiteGraph::from_pairs(20, 6, &pairs).unwrap();
        let drug_features = Matrix::identity(6);
        let mut ddi = SignedGraph::new(6);
        ddi.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        ddi.add_interaction(4, 5, Interaction::Synergistic).unwrap();
        ddi.add_interaction(1, 4, Interaction::Antagonistic)
            .unwrap();
        (features, graph, drug_features, ddi)
    }

    fn quick_config() -> MdModuleConfig {
        MdModuleConfig {
            hidden_dim: 8,
            epochs: 80,
            n_clusters: 2,
            gamma_patient: 3.0,
            gamma_drug: 2.0,
            use_ddi_embeddings: false,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_loss_and_learns_group_preferences() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        let losses = module.training_losses();
        assert!(losses.last().unwrap() < losses.first().unwrap());

        // A new patient with group-0 features should rank drugs 0/1 above 4/5.
        let new_patient = Matrix::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]).unwrap();
        let scores = module.predict_scores(&new_patient).unwrap();
        assert_eq!(scores.shape(), (1, 6));
        assert!(scores.get(0, 0) > scores.get(0, 4));
        assert!(scores.get(0, 1) > scores.get(0, 5));
    }

    #[test]
    fn ddi_embeddings_are_validated_and_used() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let mut config = quick_config();
        config.use_ddi_embeddings = true;
        // Missing embeddings -> error.
        assert!(MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &config,
            &mut rng
        )
        .is_err());
        // Wrong shape -> error.
        let bad = Matrix::zeros(6, 3);
        assert!(MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            Some(&bad),
            &config,
            &mut rng
        )
        .is_err());
        // Correct shape -> trains.
        let good = Matrix::rand_uniform(6, 8, -0.1, 0.1, &mut rng);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            Some(&good),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(module.ddi_embeddings().is_some());
    }

    #[test]
    fn treatment_for_new_patient_reflects_cluster_medication() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        let group0 = module.treatment_for(&[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(group0[0], 1.0);
        assert_eq!(group0[1], 1.0);
        assert_eq!(group0[4], 0.0);
        let group1 = module.treatment_for(&[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(group1[4], 1.0);
        assert_eq!(group1[0], 0.0);
    }

    #[test]
    fn patient_representations_are_personalised() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        let reprs = module.patient_representations(&features).unwrap();
        assert_eq!(reprs.shape(), (20, 8));
        // Patients from different groups must not collapse to the same vector.
        let cross = reprs.row_cosine(0, &reprs, 15);
        let within = reprs.row_cosine(0, &reprs, 1);
        assert!(
            within > cross,
            "within-group similarity {within} <= cross-group {cross}"
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(4);
        // Mismatched feature rows.
        let bad_features = Matrix::zeros(5, 4);
        assert!(MdModule::fit(
            &bad_features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng
        )
        .is_err());
        // Mismatched drug feature rows.
        let bad_drugs = Matrix::zeros(3, 6);
        assert!(MdModule::fit(
            &features,
            &graph,
            &bad_drugs,
            &ddi,
            None,
            &quick_config(),
            &mut rng
        )
        .is_err());
        // Zero epochs.
        let mut cfg = quick_config();
        cfg.epochs = 0;
        assert!(MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &cfg,
            &mut rng
        )
        .is_err());
        // Prediction with wrong feature width.
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        assert!(module.predict_scores(&Matrix::zeros(1, 9)).is_err());
    }

    #[test]
    fn tape_free_scores_are_bit_identical_to_taped_scores() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(21);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        let query = Matrix::rand_uniform(7, 4, -1.0, 1.0, &mut rng);
        let fast = module.predict_scores(&query).unwrap();
        let taped = module.predict_scores_taped(&query).unwrap();
        assert_eq!(fast.shape(), taped.shape());
        let fast_bits: Vec<u32> = fast.data().iter().map(|v| v.to_bits()).collect();
        let taped_bits: Vec<u32> = taped.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            fast_bits, taped_bits,
            "serving fast path drifted from the taped reference"
        );
    }

    #[test]
    fn counterfactual_training_matches_some_pairs() {
        let (features, graph, drug_features, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let module = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        assert!(module.counterfactual_match_rate() > 0.0);
        // Disabling counterfactuals trains too and reports a zero match rate.
        let mut cfg = quick_config();
        cfg.use_counterfactual = false;
        let module2 = MdModule::fit(
            &features,
            &graph,
            &drug_features,
            &ddi,
            None,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert_eq!(module2.counterfactual_match_rate(), 0.0);
    }
}
