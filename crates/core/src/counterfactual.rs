//! Treatment definition and counterfactual link construction
//! (Section IV-B1 of the paper).
//!
//! The causal model treats the patient and drug representations as context,
//! a *treatment* variable derived from the graph structure as treatment, and
//! medication use as outcome. The treatment matrix is built in three steps:
//! observed links, propagation within K-means patient clusters, and
//! propagation along synergistic DDI edges. For every training pair the
//! counterfactual link is the nearest (patient, drug) pair with the opposite
//! treatment (Eq. 7), whose observed outcome becomes the counterfactual
//! training target (Eq. 8).

use dssddi_graph::{BipartiteGraph, Interaction, SignedGraph};
use dssddi_tensor::Matrix;

use crate::CoreError;

/// The treatment matrix `T` over observed patients and drugs.
#[derive(Debug, Clone)]
pub struct TreatmentMatrix {
    matrix: Matrix,
}

impl TreatmentMatrix {
    /// Builds the treatment matrix in the three steps of Section IV-B1:
    ///
    /// 1. `T_iv = 1` for every observed medication-use link,
    /// 2. `T_jv = 1` whenever some patient in the same K-means cluster as
    ///    `j` has `T_iv = 1`,
    /// 3. `T_iu = 1` whenever `T_iv = 1` and drugs `u`, `v` interact
    ///    synergistically in the DDI graph.
    pub fn build(
        graph: &BipartiteGraph,
        clusters: &[usize],
        ddi: &SignedGraph,
    ) -> Result<Self, CoreError> {
        let m = graph.left_count();
        let n = graph.right_count();
        if clusters.len() != m {
            return Err(CoreError::invalid_input(
                "cluster assignment length must equal the number of observed patients",
            ));
        }
        let mut t = Matrix::zeros(m, n);
        // Step 1: observed links.
        for (p, d) in graph.edges() {
            t.set(p, d, 1.0);
        }
        // Step 2: cluster propagation. Collect, per cluster, the union of
        // treated drugs, then broadcast it to every member.
        let n_clusters = clusters.iter().copied().max().map_or(0, |c| c + 1);
        let mut cluster_drugs = vec![vec![false; n]; n_clusters];
        for p in 0..m {
            for d in 0..n {
                if t.get(p, d) > 0.5 {
                    cluster_drugs[clusters[p]][d] = true;
                }
            }
        }
        for p in 0..m {
            for d in 0..n {
                if cluster_drugs[clusters[p]][d] {
                    t.set(p, d, 1.0);
                }
            }
        }
        // Step 3: synergy propagation over the DDI graph.
        let synergy = ddi.edges_of(Interaction::Synergistic);
        for p in 0..m {
            for &(u, v) in &synergy {
                if u < n && v < n {
                    if t.get(p, u) > 0.5 {
                        t.set(p, v, 1.0);
                    }
                    if t.get(p, v) > 0.5 {
                        t.set(p, u, 1.0);
                    }
                }
            }
        }
        Ok(Self { matrix: t })
    }

    /// Reassembles a treatment matrix from its persisted `patients x drugs`
    /// matrix (model persistence).
    pub(crate) fn from_matrix(matrix: Matrix) -> Self {
        Self { matrix }
    }

    /// Treatment value for a patient–drug pair.
    pub fn get(&self, patient: usize, drug: usize) -> f32 {
        self.matrix.get(patient, drug)
    }

    /// The underlying matrix (`patients x drugs`).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Treatment row derived for an *unobserved* patient: the union of the
    /// treatments of its cluster (step 2) followed by synergy propagation
    /// (step 3).
    pub fn for_new_patient(
        &self,
        cluster_of_new: usize,
        clusters: &[usize],
        ddi: &SignedGraph,
    ) -> Vec<f32> {
        let n = self.matrix.cols();
        let mut row = vec![0.0f32; n];
        for (p, &c) in clusters.iter().enumerate() {
            if c == cluster_of_new {
                for d in 0..n {
                    if self.matrix.get(p, d) > 0.5 {
                        row[d] = 1.0;
                    }
                }
            }
        }
        for (u, v) in ddi.edges_of(Interaction::Synergistic) {
            if u < n && v < n {
                if row[u] > 0.5 {
                    row[v] = 1.0;
                }
                if row[v] > 0.5 {
                    row[u] = 1.0;
                }
            }
        }
        row
    }
}

/// Counterfactual treatments and outcomes for a set of training pairs.
#[derive(Debug, Clone, Default)]
pub struct CounterfactualLinks {
    /// Counterfactual treatment `T^CF` per pair.
    pub treatments: Vec<f32>,
    /// Counterfactual outcome `y^CF` per pair.
    pub outcomes: Vec<f32>,
    /// Number of pairs for which a genuine opposite-treatment neighbour was
    /// found (the rest fall back to the factual values, per Eq. 8).
    pub matched: usize,
}

/// Precomputed nearest-neighbour candidate lists used by the counterfactual
/// search.
pub struct CounterfactualIndex {
    patient_neighbors: Vec<Vec<usize>>,
    drug_neighbors: Vec<Vec<usize>>,
}

impl CounterfactualIndex {
    /// Builds candidate lists: for every patient the closest patients within
    /// `gamma_patient` (Euclidean, capped at `max_candidates`), and likewise
    /// for drugs with `gamma_drug`.
    pub fn build(
        patient_features: &Matrix,
        drug_features: &Matrix,
        gamma_patient: f32,
        gamma_drug: f32,
        max_candidates: usize,
    ) -> Self {
        let patient_neighbors = nearest_within(patient_features, gamma_patient, max_candidates);
        let drug_neighbors = nearest_within(drug_features, gamma_drug, max_candidates);
        Self {
            patient_neighbors,
            drug_neighbors,
        }
    }

    /// Finds counterfactual links for the given `(patient, drug)` training
    /// pairs: the nearest pair `(j, u)` (by summed feature distance, subject
    /// to the γ thresholds) whose treatment is opposite, whose observed
    /// outcome then serves as the counterfactual target.
    pub fn find_links(
        &self,
        pairs_patients: &[usize],
        pairs_drugs: &[usize],
        treatment: &TreatmentMatrix,
        labels: &Matrix,
    ) -> CounterfactualLinks {
        let mut out = CounterfactualLinks::default();
        for (&i, &v) in pairs_patients.iter().zip(pairs_drugs.iter()) {
            let factual_t = treatment.get(i, v);
            let target_t = 1.0 - factual_t;
            let mut found: Option<(usize, usize)> = None;
            'search: for &j in &self.patient_neighbors[i] {
                for &u in &self.drug_neighbors[v] {
                    if (treatment.get(j, u) - target_t).abs() < 0.5 {
                        found = Some((j, u));
                        break 'search;
                    }
                }
            }
            match found {
                Some((j, u)) => {
                    out.treatments.push(target_t);
                    out.outcomes.push(labels.get(j, u));
                    out.matched += 1;
                }
                None => {
                    out.treatments.push(factual_t);
                    out.outcomes.push(labels.get(i, v));
                }
            }
        }
        out
    }
}

/// For every row, the indices of the other rows within `threshold` Euclidean
/// distance, sorted by increasing distance and truncated to `max_candidates`.
/// The row itself is always the first candidate (distance 0).
fn nearest_within(features: &Matrix, threshold: f32, max_candidates: usize) -> Vec<Vec<usize>> {
    let n = features.rows();
    let mut result = Vec::with_capacity(n);
    for i in 0..n {
        let mut dists: Vec<(f32, usize)> = (0..n)
            .map(|j| (features.row_euclidean(i, features, j), j))
            .filter(|&(d, _)| d <= threshold)
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        result.push(
            dists
                .into_iter()
                .map(|(_, j)| j)
                .take(max_candidates.max(1))
                .collect(),
        );
    }
    result
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use dssddi_ml::fit_kmeans;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (BipartiteGraph, Vec<usize>, SignedGraph, Matrix, Matrix) {
        // 4 patients, 5 drugs. Patients 0/1 are cluster 0; 2/3 cluster 1.
        let graph = BipartiteGraph::from_pairs(4, 5, &[(0, 0), (1, 1), (2, 3), (3, 4)]).unwrap();
        let clusters = vec![0, 0, 1, 1];
        let mut ddi = SignedGraph::new(5);
        ddi.add_interaction(1, 2, Interaction::Synergistic).unwrap();
        ddi.add_interaction(0, 3, Interaction::Antagonistic)
            .unwrap();
        let patient_features =
            Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.1, 0.0, 5.0, 5.0, 5.1, 5.0]).unwrap();
        let drug_features = Matrix::identity(5);
        (graph, clusters, ddi, patient_features, drug_features)
    }

    #[test]
    fn treatment_matrix_builds_in_three_steps() {
        let (graph, clusters, ddi, _, _) = setup();
        let t = TreatmentMatrix::build(&graph, &clusters, &ddi).unwrap();
        // Step 1: observed links.
        assert_eq!(t.get(0, 0), 1.0);
        // Step 2: cluster propagation: patient 1 is in patient 0's cluster.
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(0, 1), 1.0);
        // Step 3: synergy 1-2 propagates treatment to drug 2.
        assert_eq!(t.get(0, 2), 1.0);
        assert_eq!(t.get(1, 2), 1.0);
        // Antagonistic edge 0-3 must NOT propagate.
        assert_eq!(t.get(0, 3), 0.0);
        // Different cluster remains untouched by cluster 0's drugs.
        assert_eq!(t.get(2, 0), 0.0);
    }

    #[test]
    fn cluster_length_mismatch_errors() {
        let (graph, _, ddi, _, _) = setup();
        assert!(TreatmentMatrix::build(&graph, &[0, 1], &ddi).is_err());
    }

    #[test]
    fn new_patient_treatment_unions_its_cluster() {
        let (graph, clusters, ddi, _, _) = setup();
        let t = TreatmentMatrix::build(&graph, &clusters, &ddi).unwrap();
        let row = t.for_new_patient(0, &clusters, &ddi);
        assert_eq!(row[0], 1.0);
        assert_eq!(row[1], 1.0);
        assert_eq!(row[2], 1.0); // synergy propagation
        assert_eq!(row[3], 0.0);
        let other = t.for_new_patient(1, &clusters, &ddi);
        assert_eq!(other[0], 0.0);
        assert_eq!(other[3], 1.0);
    }

    #[test]
    fn counterfactual_links_flip_treatment_when_a_neighbour_exists() {
        let (graph, clusters, ddi, patient_features, drug_features) = setup();
        let t = TreatmentMatrix::build(&graph, &clusters, &ddi).unwrap();
        let labels = Matrix::from_fn(4, 5, |p, d| if graph.has_edge(p, d) { 1.0 } else { 0.0 });
        let index = CounterfactualIndex::build(&patient_features, &drug_features, 1.0, 2.0, 5);
        let pairs_p = vec![0, 2];
        let pairs_d = vec![0, 0];
        let cf = index.find_links(&pairs_p, &pairs_d, &t, &labels);
        assert_eq!(cf.treatments.len(), 2);
        // Pair (0,0) has treatment 1; a counterfactual requires treatment 0,
        // available at e.g. (0 or 1, some untreated drug) within γ_d=2
        // (identity drug features are √2 apart).
        assert!(cf.matched >= 1);
        for (idx, &tcf) in cf.treatments.iter().enumerate() {
            let factual = t.get(pairs_p[idx], pairs_d[idx]);
            // Either flipped (matched) or equal (fallback).
            assert!(tcf == 1.0 - factual || tcf == factual);
        }
    }

    #[test]
    fn counterfactual_falls_back_to_factual_when_no_neighbour_qualifies() {
        let (graph, clusters, ddi, patient_features, drug_features) = setup();
        let t = TreatmentMatrix::build(&graph, &clusters, &ddi).unwrap();
        let labels = Matrix::zeros(4, 5);
        // Impossible thresholds: only the pair itself is a candidate.
        let index = CounterfactualIndex::build(&patient_features, &drug_features, 0.0, 0.0, 1);
        let cf = index.find_links(&[0], &[0], &t, &labels);
        assert_eq!(cf.matched, 0);
        assert_eq!(cf.treatments[0], t.get(0, 0));
        assert_eq!(cf.outcomes[0], labels.get(0, 0));
    }

    #[test]
    fn treatment_works_with_kmeans_clusters() {
        let (graph, _, ddi, patient_features, _) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let km = fit_kmeans(&patient_features, 2, 20, &mut rng).unwrap();
        let t = TreatmentMatrix::build(&graph, km.assignments(), &ddi).unwrap();
        assert_eq!(t.matrix().shape(), (4, 5));
        // Patients 0 and 1 are close, so they land in the same cluster and
        // share treatments.
        assert_eq!(km.assignments()[0], km.assignments()[1]);
        assert_eq!(t.get(1, 0), 1.0);
    }
}
