//! Shared helpers for persisting DSSDDI state: configurations, signed
//! graphs and k-means models, written with the `DSSD` primitives of
//! [`dssddi_tensor::serde`].
//!
//! Every reader validates what it decodes and returns a
//! [`SerdeError`](dssddi_tensor::serde::SerdeError) (surfaced as
//! [`CoreError::Persistence`](crate::CoreError::Persistence)) on truncated,
//! corrupt or inconsistent input — loading never panics. Each block starts
//! with a one-byte section tag so misaligned reads fail with a clear error
//! instead of silently decoding garbage that happens to type-check.

use dssddi_graph::{CtcConfig, Interaction, SignedGraph};
use dssddi_ml::KMeans;
use dssddi_tensor::serde::{ByteReader, ByteWriter, SerdeError};

use crate::config::{
    Backbone, DdiModuleConfig, DrugFeatureSource, DssddiConfig, MdModuleConfig, MsModuleConfig,
};

/// Section tags marking the start of each persisted block.
pub(crate) mod section {
    pub const CONFIG: u8 = 0xC0;
    pub const SIGNED_GRAPH: u8 = 0xC1;
    pub const KMEANS: u8 = 0xC2;
    pub const DDI_MODULE: u8 = 0xC3;
    pub const MD_MODULE: u8 = 0xC4;
    pub const ENGINE: u8 = 0xC5;
    pub const SERVICE: u8 = 0xC6;
}

/// Writes a section tag.
pub(crate) fn put_section(w: &mut ByteWriter, tag: u8) {
    w.put_u8(tag);
}

/// Reads and checks a section tag.
pub(crate) fn expect_section(
    r: &mut ByteReader<'_>,
    tag: u8,
    what: &'static str,
) -> Result<(), SerdeError> {
    let found = r.take_u8(what)?;
    if found != tag {
        return Err(SerdeError::Corrupt {
            what: format!("{what}: expected section tag {tag:#04x}, found {found:#04x}"),
        });
    }
    Ok(())
}

fn backbone_tag(b: Backbone) -> u8 {
    match b {
        Backbone::Gin => 0,
        Backbone::Sgcn => 1,
        Backbone::Sigat => 2,
        Backbone::Snea => 3,
    }
}

pub(crate) fn read_backbone(r: &mut ByteReader<'_>) -> Result<Backbone, SerdeError> {
    match r.take_u8("config.backbone")? {
        0 => Ok(Backbone::Gin),
        1 => Ok(Backbone::Sgcn),
        2 => Ok(Backbone::Sigat),
        3 => Ok(Backbone::Snea),
        other => Err(SerdeError::Corrupt {
            what: format!("unknown backbone tag {other}"),
        }),
    }
}

pub(crate) fn write_backbone(w: &mut ByteWriter, b: Backbone) {
    w.put_u8(backbone_tag(b));
}

fn write_ddi_config(w: &mut ByteWriter, c: &DdiModuleConfig) {
    w.put_usize(c.hidden_dim);
    w.put_usize(c.layers);
    w.put_usize(c.epochs);
    w.put_f32(c.learning_rate);
    write_backbone(w, c.backbone);
    match c.negative_edges {
        Some(n) => {
            w.put_bool(true);
            w.put_usize(n);
        }
        None => w.put_bool(false),
    }
}

fn read_ddi_config(r: &mut ByteReader<'_>) -> Result<DdiModuleConfig, SerdeError> {
    Ok(DdiModuleConfig {
        hidden_dim: r.take_usize("ddi_config.hidden_dim")?,
        layers: r.take_usize("ddi_config.layers")?,
        epochs: r.take_usize("ddi_config.epochs")?,
        learning_rate: r.take_f32("ddi_config.learning_rate")?,
        backbone: read_backbone(r)?,
        negative_edges: if r.take_bool("ddi_config.negative_edges")? {
            Some(r.take_usize("ddi_config.negative_edges")?)
        } else {
            None
        },
    })
}

pub(crate) fn write_md_config(w: &mut ByteWriter, c: &MdModuleConfig) {
    w.put_usize(c.hidden_dim);
    w.put_usize(c.propagation_layers);
    w.put_usize(c.epochs);
    w.put_f32(c.learning_rate);
    w.put_f32(c.delta);
    w.put_bool(c.use_counterfactual);
    w.put_bool(c.use_ddi_embeddings);
    w.put_u8(match c.drug_features {
        DrugFeatureSource::KnowledgeGraph => 0,
        DrugFeatureSource::OneHot => 1,
    });
    w.put_usize(c.n_clusters);
    w.put_f32(c.gamma_patient);
    w.put_f32(c.gamma_drug);
    w.put_usize(c.negatives_per_positive);
}

pub(crate) fn read_md_config(r: &mut ByteReader<'_>) -> Result<MdModuleConfig, SerdeError> {
    Ok(MdModuleConfig {
        hidden_dim: r.take_usize("md_config.hidden_dim")?,
        propagation_layers: r.take_usize("md_config.propagation_layers")?,
        epochs: r.take_usize("md_config.epochs")?,
        learning_rate: r.take_f32("md_config.learning_rate")?,
        delta: r.take_f32("md_config.delta")?,
        use_counterfactual: r.take_bool("md_config.use_counterfactual")?,
        use_ddi_embeddings: r.take_bool("md_config.use_ddi_embeddings")?,
        drug_features: match r.take_u8("md_config.drug_features")? {
            0 => DrugFeatureSource::KnowledgeGraph,
            1 => DrugFeatureSource::OneHot,
            other => {
                return Err(SerdeError::Corrupt {
                    what: format!("unknown drug feature source tag {other}"),
                })
            }
        },
        n_clusters: r.take_usize("md_config.n_clusters")?,
        gamma_patient: r.take_f32("md_config.gamma_patient")?,
        gamma_drug: r.take_f32("md_config.gamma_drug")?,
        negatives_per_positive: r.take_usize("md_config.negatives_per_positive")?,
    })
}

fn write_ms_config(w: &mut ByteWriter, c: &MsModuleConfig) {
    w.put_f64(c.alpha);
    w.put_usize(c.ctc.expansion_size);
    w.put_usize(c.ctc.max_shrink_iterations);
}

fn read_ms_config(r: &mut ByteReader<'_>) -> Result<MsModuleConfig, SerdeError> {
    Ok(MsModuleConfig {
        alpha: r.take_f64("ms_config.alpha")?,
        ctc: CtcConfig {
            expansion_size: r.take_usize("ms_config.ctc.expansion_size")?,
            max_shrink_iterations: r.take_usize("ms_config.ctc.max_shrink_iterations")?,
        },
    })
}

/// Writes a full [`DssddiConfig`].
pub(crate) fn write_config(w: &mut ByteWriter, c: &DssddiConfig) {
    put_section(w, section::CONFIG);
    write_ddi_config(w, &c.ddi);
    write_md_config(w, &c.md);
    write_ms_config(w, &c.ms);
}

/// Reads a full [`DssddiConfig`].
pub(crate) fn read_config(r: &mut ByteReader<'_>) -> Result<DssddiConfig, SerdeError> {
    expect_section(r, section::CONFIG, "config")?;
    Ok(DssddiConfig {
        ddi: read_ddi_config(r)?,
        md: read_md_config(r)?,
        ms: read_ms_config(r)?,
    })
}

fn interaction_tag(i: Interaction) -> u8 {
    match i {
        Interaction::Synergistic => 0,
        Interaction::Antagonistic => 1,
        Interaction::None => 2,
    }
}

/// Writes a [`SignedGraph`] as node count plus signed edge list.
pub(crate) fn write_signed_graph(w: &mut ByteWriter, g: &SignedGraph) {
    put_section(w, section::SIGNED_GRAPH);
    w.put_usize(g.node_count());
    w.put_usize(g.edge_count());
    for (u, v, i) in g.interactions() {
        w.put_usize(u);
        w.put_usize(v);
        w.put_u8(interaction_tag(i));
    }
}

/// Reads a [`SignedGraph`]; out-of-range endpoints or self loops surface as
/// corrupt-input errors.
pub(crate) fn read_signed_graph(r: &mut ByteReader<'_>) -> Result<SignedGraph, SerdeError> {
    expect_section(r, section::SIGNED_GRAPH, "signed_graph")?;
    let n = r.take_usize("signed_graph.nodes")?;
    let edges = r.take_usize("signed_graph.edges")?;
    // Each edge occupies at least 17 bytes; reject absurd counts up front.
    if edges.checked_mul(17).is_none_or(|b| b > r.remaining()) {
        return Err(SerdeError::Truncated {
            what: "signed_graph.edges",
        });
    }
    let mut g = SignedGraph::new(n);
    for _ in 0..edges {
        let u = r.take_usize("signed_graph.edge.u")?;
        let v = r.take_usize("signed_graph.edge.v")?;
        let interaction = match r.take_u8("signed_graph.edge.sign")? {
            0 => Interaction::Synergistic,
            1 => Interaction::Antagonistic,
            2 => Interaction::None,
            other => {
                return Err(SerdeError::Corrupt {
                    what: format!("unknown interaction tag {other}"),
                })
            }
        };
        g.add_interaction(u, v, interaction)
            .map_err(|e| SerdeError::Corrupt {
                what: format!("signed graph edge ({u}, {v}) is invalid: {e}"),
            })?;
    }
    Ok(g)
}

/// Writes a fitted [`KMeans`] model.
pub(crate) fn write_kmeans(w: &mut ByteWriter, km: &KMeans) {
    put_section(w, section::KMEANS);
    w.put_matrix(km.centroids());
    w.put_usize_slice(km.assignments());
    w.put_f32(km.inertia());
}

/// Reads a fitted [`KMeans`] model, re-validating it through
/// [`KMeans::from_parts`].
pub(crate) fn read_kmeans(r: &mut ByteReader<'_>) -> Result<KMeans, SerdeError> {
    expect_section(r, section::KMEANS, "kmeans")?;
    let centroids = r.take_matrix("kmeans.centroids")?;
    let assignments = r.take_usize_vec("kmeans.assignments")?;
    let inertia = r.take_f32("kmeans.inertia")?;
    KMeans::from_parts(centroids, assignments, inertia).map_err(|e| SerdeError::Corrupt {
        what: format!("persisted k-means model is inconsistent: {e}"),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn config_round_trip_preserves_every_field() {
        let mut config = DssddiConfig::fast();
        config.ddi.backbone = Backbone::Sigat;
        config.ddi.negative_edges = Some(12);
        config.md.drug_features = DrugFeatureSource::OneHot;
        config.md.use_counterfactual = false;
        config.ms.alpha = 0.25;
        config.ms.ctc.expansion_size = 17;

        let mut w = ByteWriter::new();
        write_config(&mut w, &config);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_config(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.ddi.backbone, Backbone::Sigat);
        assert_eq!(back.ddi.negative_edges, Some(12));
        assert_eq!(back.ddi.hidden_dim, config.ddi.hidden_dim);
        assert_eq!(back.md.drug_features, DrugFeatureSource::OneHot);
        assert!(!back.md.use_counterfactual);
        assert_eq!(back.md.n_clusters, config.md.n_clusters);
        assert_eq!(back.ms.alpha, 0.25);
        assert_eq!(back.ms.ctc.expansion_size, 17);
    }

    #[test]
    fn signed_graph_round_trip_and_corruption_detection() {
        let mut g = SignedGraph::new(6);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(2, 3, Interaction::Antagonistic).unwrap();
        g.add_interaction(4, 5, Interaction::None).unwrap();

        let mut w = ByteWriter::new();
        write_signed_graph(&mut w, &g);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_signed_graph(&mut r).unwrap();
        assert_eq!(back.node_count(), 6);
        assert_eq!(back.edge_count(), 3);
        assert_eq!(back.interaction(0, 1), Some(Interaction::Synergistic));
        assert_eq!(back.interaction(2, 3), Some(Interaction::Antagonistic));
        assert_eq!(back.interaction(4, 5), Some(Interaction::None));

        // Truncation at every prefix errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(read_signed_graph(&mut r).is_err(), "cut at {cut}");
        }
        // A wrong section tag is caught immediately.
        let mut wrong = bytes.clone();
        wrong[0] = section::KMEANS;
        assert!(read_signed_graph(&mut ByteReader::new(&wrong)).is_err());
    }
}
