//! The Drug-Drug Interaction module (Section IV-A).
//!
//! DDIGCN treats the signed DDI graph as an edge-regression problem: drug
//! representations are produced by a GNN backbone from one-hot drug ID
//! features, the score of an edge is the inner product of its endpoint
//! representations (Eq. 5), and the model is trained with MSE against the
//! edge labels +1 (synergy), −1 (antagonism) and 0 (explicitly sampled
//! non-interactions) — Eq. 6. The learned drug relation embeddings are
//! shared with the Medical Decision module.

use std::rc::Rc;

use rand::Rng;

use dssddi_gnn::{GinConv, SgcnLayer, SigatLayer, SignedGraphContext, SneaLayer};
use dssddi_graph::SignedGraph;
use dssddi_tensor::serde::{ByteReader, ByteWriter, SerdeError};
use dssddi_tensor::{init, Adam, Binder, Matrix, Optimizer, ParamSet, ScratchPool, Tape, Var};

use crate::config::{Backbone, DdiModuleConfig};
use crate::persist::{self, section};
use crate::CoreError;

/// The GNN stack of a particular backbone.
enum BackboneNet {
    Gin(Vec<GinConv>),
    Sgcn(Vec<SgcnLayer>),
    Sigat(Vec<SigatLayer>),
    Snea(Vec<SneaLayer>),
}

impl BackboneNet {
    fn build(
        backbone: Backbone,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        if hidden_dim == 0 || layers == 0 {
            return Err(CoreError::invalid_config(
                "DDIGCN needs a positive hidden dimension and at least one layer",
            ));
        }
        match backbone {
            Backbone::Gin => {
                let mut convs = Vec::with_capacity(layers);
                let mut dim = input_dim;
                for l in 0..layers {
                    convs.push(GinConv::new(
                        &format!("ddigcn.gin{l}"),
                        dim,
                        hidden_dim,
                        true,
                        params,
                        rng,
                    ));
                    dim = hidden_dim;
                }
                Ok(BackboneNet::Gin(convs))
            }
            Backbone::Sgcn => {
                if !hidden_dim.is_multiple_of(2) {
                    return Err(CoreError::invalid_config(
                        "SGCN backbone requires an even hidden dimension",
                    ));
                }
                let half = hidden_dim / 2;
                let mut convs = Vec::with_capacity(layers);
                let mut dim = input_dim;
                for l in 0..layers {
                    convs.push(SgcnLayer::new(
                        &format!("ddigcn.sgcn{l}"),
                        dim,
                        half,
                        params,
                        rng,
                    ));
                    dim = half;
                }
                Ok(BackboneNet::Sgcn(convs))
            }
            Backbone::Sigat => {
                if !hidden_dim.is_multiple_of(2) {
                    return Err(CoreError::invalid_config(
                        "SiGAT backbone requires an even hidden dimension",
                    ));
                }
                let half = hidden_dim / 2;
                let mut convs = Vec::with_capacity(layers);
                let mut dim = input_dim;
                for l in 0..layers {
                    convs.push(SigatLayer::new(
                        &format!("ddigcn.sigat{l}"),
                        dim,
                        half,
                        params,
                        rng,
                    ));
                    dim = hidden_dim;
                }
                Ok(BackboneNet::Sigat(convs))
            }
            Backbone::Snea => {
                let mut convs = Vec::with_capacity(layers);
                let mut dim = input_dim;
                for l in 0..layers {
                    convs.push(SneaLayer::new(
                        &format!("ddigcn.snea{l}"),
                        dim,
                        hidden_dim,
                        params,
                        rng,
                    ));
                    dim = hidden_dim;
                }
                Ok(BackboneNet::Snea(convs))
            }
        }
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        ctx: &SignedGraphContext,
        x: Var,
    ) -> Result<Var, CoreError> {
        match self {
            BackboneNet::Gin(convs) => {
                let mut h = x;
                for conv in convs {
                    h = conv.forward(tape, params, binder, ctx, h)?;
                }
                Ok(h)
            }
            BackboneNet::Sgcn(convs) => {
                let mut balanced = x;
                let mut unbalanced = x;
                for conv in convs {
                    let (b, u) = conv.forward(tape, params, binder, ctx, balanced, unbalanced)?;
                    balanced = b;
                    unbalanced = u;
                }
                Ok(SgcnLayer::combine(tape, balanced, unbalanced)?)
            }
            BackboneNet::Sigat(convs) => {
                let mut h = x;
                for conv in convs {
                    h = conv.forward(tape, params, binder, ctx, h)?;
                }
                Ok(h)
            }
            BackboneNet::Snea(convs) => {
                let mut h = x;
                for conv in convs {
                    h = conv.forward(tape, params, binder, ctx, h)?;
                }
                Ok(h)
            }
        }
    }

    /// Tape-free forward pass for backbones whose layers have a scratch-
    /// buffer inference kernel (currently SGCN, the paper's best backbone).
    /// Returns `None` when the backbone still needs the taped path; the
    /// produced embeddings are bit-identical to [`BackboneNet::forward`].
    fn try_infer(
        &self,
        params: &ParamSet,
        ctx: &SignedGraphContext,
        x: &Matrix,
    ) -> Option<Result<Matrix, CoreError>> {
        let BackboneNet::Sgcn(convs) = self else {
            return None;
        };
        let mut pool = ScratchPool::new();
        let run = (|| {
            let mut balanced = x.clone();
            let mut unbalanced = x.clone();
            for conv in convs {
                let (b, u) = conv.infer(params, ctx, &balanced, &unbalanced, &mut pool)?;
                pool.recycle(std::mem::replace(&mut balanced, b));
                pool.recycle(std::mem::replace(&mut unbalanced, u));
            }
            SgcnLayer::combine_inference(&balanced, &unbalanced)
        })();
        Some(run.map_err(CoreError::from))
    }
}

/// A trained DDI module holding the learned drug relation embeddings.
pub struct DdiModule {
    embeddings: Matrix,
    losses: Vec<f32>,
    backbone: Backbone,
}

impl DdiModule {
    /// Trains DDIGCN on a signed DDI graph. Explicit no-interaction edges
    /// are sampled automatically when the graph does not already contain
    /// them (Section IV-A1).
    pub fn train(
        graph: &SignedGraph,
        config: &DdiModuleConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        let n = graph.node_count();
        if n == 0 {
            return Err(CoreError::invalid_input("DDI graph has no drugs"));
        }
        // Ensure the training edge set contains explicit non-interactions.
        let mut graph = graph.clone();
        let real = graph.synergistic_count() + graph.antagonistic_count();
        let explicit_none = graph.edge_count() - real;
        let wanted_none = config.negative_edges.unwrap_or(real);
        if explicit_none < wanted_none {
            graph.sample_no_interaction_edges(wanted_none - explicit_none, rng);
        }
        let ctx = SignedGraphContext::new(&graph)?;
        if ctx.labelled_edges.is_empty() {
            return Err(CoreError::invalid_input(
                "DDI graph has no edges to regress on",
            ));
        }

        let mut params = ParamSet::new();
        let net = BackboneNet::build(
            config.backbone,
            n,
            config.hidden_dim,
            config.layers,
            &mut params,
            rng,
        )?;

        let edge_u: Vec<usize> = ctx.labelled_edges.iter().map(|&(u, _, _)| u).collect();
        let edge_v: Vec<usize> = ctx.labelled_edges.iter().map(|&(_, v, _)| v).collect();
        let labels = Matrix::from_vec(
            ctx.labelled_edges.len(),
            1,
            ctx.labelled_edges.iter().map(|&(_, _, l)| l).collect(),
        )?;

        let mut optimizer = Adam::new(config.learning_rate);
        let mut losses = Vec::with_capacity(config.epochs);
        // The one-hot identity features are built exactly once and shared
        // with every epoch's tape (an `n x n` matrix used to be cloned per
        // epoch and again for the final extraction pass).
        let one_hot = Rc::new(init::one_hot_ids(n));
        for _ in 0..config.epochs {
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let x = tape.constant_shared(Rc::clone(&one_hot));
            let z = net.forward(&mut tape, &params, &mut binder, &ctx, x)?;
            let zu = tape.select_rows(z, &edge_u)?;
            let zv = tape.select_rows(z, &edge_v)?;
            let prod = tape.mul(zu, zv)?;
            let scores = tape.sum_cols(prod);
            let loss = tape.mse_loss(scores, &labels)?;
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &params);
            optimizer.step(&mut params, &grads)?;
            losses.push(tape.value(loss).get(0, 0));
        }

        // Final forward pass to extract the learned embeddings — tape-free
        // when the backbone supports it (the result is bit-identical, see
        // the layer equivalence tests in `dssddi-gnn`).
        let embeddings = match net.try_infer(&params, &ctx, &one_hot) {
            Some(result) => result?,
            None => {
                let mut tape = Tape::new();
                let mut binder = Binder::new();
                let x = tape.constant_shared(Rc::clone(&one_hot));
                let z = net.forward(&mut tape, &params, &mut binder, &ctx, x)?;
                tape.value(z).clone()
            }
        };

        Ok(Self {
            embeddings,
            losses,
            backbone: config.backbone,
        })
    }

    /// Serializes the trained module (embeddings, loss trace, backbone).
    pub(crate) fn write_into(&self, w: &mut ByteWriter) {
        persist::put_section(w, section::DDI_MODULE);
        w.put_matrix(&self.embeddings);
        w.put_f32_slice(&self.losses);
        persist::write_backbone(w, self.backbone);
    }

    /// Reconstructs a trained module written by [`DdiModule::write_into`].
    pub(crate) fn read_from(r: &mut ByteReader<'_>) -> Result<Self, SerdeError> {
        persist::expect_section(r, section::DDI_MODULE, "ddi_module")?;
        Ok(Self {
            embeddings: r.take_matrix("ddi_module.embeddings")?,
            losses: r.take_f32_vec("ddi_module.losses")?,
            backbone: persist::read_backbone(r)?,
        })
    }

    /// The learned drug relation embeddings (`n_drugs x hidden_dim`).
    pub fn embeddings(&self) -> &Matrix {
        &self.embeddings
    }

    /// Per-epoch training loss trace.
    pub fn training_losses(&self) -> &[f32] {
        &self.losses
    }

    /// Backbone the module was trained with.
    pub fn backbone(&self) -> Backbone {
        self.backbone
    }

    /// Predicted interaction score for a drug pair (inner product of the
    /// learned embeddings, Eq. 5): positive values lean synergistic,
    /// negative values antagonistic.
    pub fn interaction_score(&self, u: usize, v: usize) -> Option<f32> {
        if u >= self.embeddings.rows() || v >= self.embeddings.rows() {
            return None;
        }
        Some(self.embeddings.row_dot(u, &self.embeddings, v))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use dssddi_graph::Interaction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_ddi() -> SignedGraph {
        let mut g = SignedGraph::new(10);
        // Two synergy cliques and antagonism across them.
        for (u, v) in [(0, 1), (1, 2), (0, 2), (5, 6), (6, 7)] {
            g.add_interaction(u, v, Interaction::Synergistic).unwrap();
        }
        for (u, v) in [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9), (2, 5)] {
            g.add_interaction(u, v, Interaction::Antagonistic).unwrap();
        }
        g
    }

    fn quick(backbone: Backbone) -> DdiModuleConfig {
        DdiModuleConfig {
            hidden_dim: 8,
            layers: 2,
            epochs: 120,
            learning_rate: 0.01,
            backbone,
            negative_edges: Some(6),
        }
    }

    #[test]
    fn training_reduces_loss_for_every_backbone() {
        for backbone in Backbone::ALL {
            let mut rng = StdRng::seed_from_u64(0);
            let module = DdiModule::train(&toy_ddi(), &quick(backbone), &mut rng).unwrap();
            let losses = module.training_losses();
            let first = losses[..10.min(losses.len())].iter().sum::<f32>() / 10.0;
            let last = losses[losses.len().saturating_sub(10)..]
                .iter()
                .sum::<f32>()
                / 10.0;
            assert!(
                last < first,
                "{}: loss did not decrease ({first} -> {last})",
                backbone.name()
            );
            assert_eq!(module.embeddings().shape(), (10, 8));
            assert!(module.embeddings().all_finite());
        }
    }

    #[test]
    fn synergistic_pairs_score_above_antagonistic_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let module = DdiModule::train(&toy_ddi(), &quick(Backbone::Sgcn), &mut rng).unwrap();
        let syn = module.interaction_score(0, 1).unwrap();
        let ant = module.interaction_score(0, 5).unwrap();
        assert!(
            syn > ant,
            "synergy score {syn} should exceed antagonism score {ant}"
        );
    }

    #[test]
    fn odd_hidden_dim_is_rejected_for_sign_concatenating_backbones() {
        let mut rng = StdRng::seed_from_u64(2);
        let bad = DdiModuleConfig {
            hidden_dim: 7,
            backbone: Backbone::Sgcn,
            ..quick(Backbone::Sgcn)
        };
        assert!(DdiModule::train(&toy_ddi(), &bad, &mut rng).is_err());
        let bad2 = DdiModuleConfig {
            hidden_dim: 7,
            backbone: Backbone::Sigat,
            ..quick(Backbone::Sigat)
        };
        assert!(DdiModule::train(&toy_ddi(), &bad2, &mut rng).is_err());
        // GIN accepts odd dimensions.
        let ok = DdiModuleConfig {
            hidden_dim: 7,
            epochs: 5,
            backbone: Backbone::Gin,
            ..quick(Backbone::Gin)
        };
        assert!(DdiModule::train(&toy_ddi(), &ok, &mut rng).is_ok());
    }

    #[test]
    fn sgcn_tape_free_extraction_matches_taped_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let graph = toy_ddi();
        let ctx = SignedGraphContext::new(&graph).unwrap();
        let mut params = ParamSet::new();
        let net = BackboneNet::build(Backbone::Sgcn, 10, 8, 2, &mut params, &mut rng).unwrap();
        let one_hot = init::one_hot_ids(10);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(one_hot.clone());
        let taped = net
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        let tape_free = net.try_infer(&params, &ctx, &one_hot).unwrap().unwrap();
        let taped_bits: Vec<u32> = tape
            .value(taped)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let free_bits: Vec<u32> = tape_free.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(taped_bits, free_bits);

        // Backbones without an inference kernel fall back to the taped path.
        let mut params = ParamSet::new();
        let gin = BackboneNet::build(Backbone::Gin, 10, 8, 2, &mut params, &mut rng).unwrap();
        assert!(gin.try_infer(&params, &ctx, &one_hot).is_none());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty = SignedGraph::new(0);
        assert!(DdiModule::train(&empty, &quick(Backbone::Gin), &mut rng).is_err());
    }

    #[test]
    fn interaction_score_bounds_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let module = DdiModule::train(&toy_ddi(), &quick(Backbone::Gin), &mut rng).unwrap();
        assert!(module.interaction_score(0, 99).is_none());
        assert!(module.interaction_score(0, 1).is_some());
        assert_eq!(module.backbone(), Backbone::Gin);
    }
}
