//! The end-to-end decision support system (Fig. 4 of the paper).
//!
//! [`Dssddi`] wires the three modules together: it trains DDIGCN on the DDI
//! graph, shares the learned drug relation embeddings with MDGCN, trains
//! MDGCN on the observed patients with counterfactual augmentation, and at
//! inference time returns, for each patient, the top-k suggested drugs
//! together with the closest-truss-community explanation and the Suggestion
//! Satisfaction score.

// Like the service layer, the engine's serving path returns typed errors
// instead of panicking; see `service.rs` for the rationale. The panic-policy
// denies are inherited from `[workspace.lints]`.

use std::path::Path;

use rand::Rng;

use dssddi_data::ChronicCohort;
use dssddi_graph::{BipartiteGraph, SignedGraph};
use dssddi_ml::top_k_indices;
use dssddi_tensor::serde::{self as tserde, ByteReader, ByteWriter, SerdeError};
use dssddi_tensor::Matrix;

use crate::config::{DrugFeatureSource, DssddiConfig};
use crate::ddi_module::DdiModule;
use crate::md_module::MdModule;
use crate::ms_module::{explain_suggestion, Explanation, ExplanationCache};
use crate::persist::{self, section};
use crate::CoreError;

/// One suggested drug with its prediction score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrugSuggestion {
    /// Drug ID (index into the formulary).
    pub drug: usize,
    /// Predicted medication-use probability.
    pub score: f32,
}

/// The system output for one patient: suggested drugs plus the DDI-based
/// explanation shown to the doctor.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// Suggested drugs in descending score order.
    pub drugs: Vec<DrugSuggestion>,
    /// Explanation subgraph and Suggestion Satisfaction.
    pub explanation: Explanation,
}

/// The fitted decision support system.
pub struct Dssddi {
    ddi_module: Option<DdiModule>,
    md_module: MdModule,
    ddi_graph: SignedGraph,
    config: DssddiConfig,
}

impl Dssddi {
    /// Fits the full system.
    ///
    /// * `train_features` — features of the observed (training) patients,
    /// * `train_graph` — their medication use,
    /// * `drug_features` — original drug features (typically KG pre-trained
    ///   embeddings); replaced by one-hot identities when the configuration
    ///   selects [`DrugFeatureSource::OneHot`],
    /// * `ddi_graph` — the signed drug-drug interaction graph.
    pub fn fit(
        train_features: &Matrix,
        train_graph: &BipartiteGraph,
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        config: &DssddiConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        Self::fit_with_relation_embeddings(
            train_features,
            train_graph,
            drug_features,
            ddi_graph,
            None,
            config,
            rng,
        )
    }

    /// Like [`Dssddi::fit`], but allows overriding the drug relation
    /// embeddings added to the final drug representations — used by the
    /// Table II ablation (one-hot / KG / none instead of DDIGCN).
    pub fn fit_with_relation_embeddings(
        train_features: &Matrix,
        train_graph: &BipartiteGraph,
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        relation_embeddings_override: Option<&Matrix>,
        config: &DssddiConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        let n_drugs = train_graph.right_count();
        if ddi_graph.node_count() != n_drugs {
            return Err(CoreError::invalid_input(
                "DDI graph and medication-use graph disagree on the number of drugs",
            ));
        }

        // Resolve the original drug features for the MD encoder.
        let resolved_drug_features = match config.md.drug_features {
            DrugFeatureSource::KnowledgeGraph => drug_features.clone(),
            DrugFeatureSource::OneHot => Matrix::identity(n_drugs),
        };

        // Train the DDI module unless the ablation removes it entirely.
        let (ddi_module, relation_embeddings) = if !config.md.use_ddi_embeddings {
            (None, None)
        } else if let Some(embeddings) = relation_embeddings_override {
            (None, Some(embeddings.clone()))
        } else {
            let mut ddi_config = config.ddi.clone();
            ddi_config.hidden_dim = config.md.hidden_dim;
            let module = DdiModule::train(ddi_graph, &ddi_config, rng)?;
            let embeddings = module.embeddings().clone();
            (Some(module), Some(embeddings))
        };

        let md_module = MdModule::fit(
            train_features,
            train_graph,
            &resolved_drug_features,
            ddi_graph,
            relation_embeddings.as_ref(),
            &config.md,
            rng,
        )?;

        Ok(Self {
            ddi_module,
            md_module,
            ddi_graph: ddi_graph.clone(),
            config: config.clone(),
        })
    }

    /// Convenience constructor: fits the system on a subset (the observed
    /// patients) of a generated chronic cohort.
    #[deprecated(
        since = "0.2.0",
        note = "use `ServiceBuilder::fit_chronic` to obtain a `DecisionService`"
    )]
    pub fn fit_chronic(
        cohort: &ChronicCohort,
        observed_patients: &[usize],
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        config: &DssddiConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        Self::fit_chronic_inner(
            cohort,
            observed_patients,
            drug_features,
            ddi_graph,
            config,
            rng,
        )
    }

    /// Non-deprecated implementation backing both the legacy
    /// [`Dssddi::fit_chronic`] shim and [`crate::service::ServiceBuilder`].
    pub(crate) fn fit_chronic_inner(
        cohort: &ChronicCohort,
        observed_patients: &[usize],
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        config: &DssddiConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        if let Some(&bad) = observed_patients
            .iter()
            .find(|&&p| p >= cohort.n_patients())
        {
            return Err(CoreError::invalid_input(format!(
                "observed patient index {bad} is out of range for a cohort of {} patients",
                cohort.n_patients()
            )));
        }
        let train_features = cohort.features().select_rows(observed_patients);
        let train_graph = cohort.bipartite_graph(observed_patients)?;
        Self::fit(
            &train_features,
            &train_graph,
            drug_features,
            ddi_graph,
            config,
            rng,
        )
    }

    /// Predicted medication-use scores for unobserved patients
    /// (one row per patient, one column per drug). Runs the tape-free
    /// inference fast path (see [`MdModule::predict_scores`]).
    pub fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        self.md_module.predict_scores(features)
    }

    /// Reference taped scoring path, kept so benches and tests can compare
    /// against the tape-free fast path (see
    /// [`MdModule::predict_scores_taped`]).
    pub fn predict_scores_taped(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        self.md_module.predict_scores_taped(features)
    }

    /// Suggests the top-`k` drugs for every patient in `features` and
    /// explains each suggestion through the Medical Support module.
    #[deprecated(
        since = "0.2.0",
        note = "use `DecisionService::suggest_batch`, which resolves drug names and \
                supports per-request filters"
    )]
    pub fn suggest(&self, features: &Matrix, k: usize) -> Result<Vec<Suggestion>, CoreError> {
        self.suggest_inner(features, k)
    }

    /// Non-deprecated implementation backing both the legacy
    /// [`Dssddi::suggest`] shim and [`crate::service::DecisionService`].
    ///
    /// Prediction runs once for the whole batch, and explanations are
    /// memoized per distinct suggested drug set: patients who receive the
    /// same top-`k` drugs share a single community search.
    pub(crate) fn suggest_inner(
        &self,
        features: &Matrix,
        k: usize,
    ) -> Result<Vec<Suggestion>, CoreError> {
        if k == 0 {
            return Err(CoreError::invalid_config("k must be positive"));
        }
        let scores = self.predict_scores(features)?;
        let mut cache = ExplanationCache::new();
        let mut out = Vec::with_capacity(features.rows());
        for p in 0..features.rows() {
            let top = top_k_indices(scores.row(p), k);
            let drugs: Vec<DrugSuggestion> = top
                .iter()
                .map(|&d| DrugSuggestion {
                    drug: d,
                    score: scores.get(p, d),
                })
                .collect();
            let explanation = cache.explain(&self.ddi_graph, &top, &self.config.ms)?;
            out.push(Suggestion { drugs, explanation });
        }
        Ok(out)
    }

    /// Explains an arbitrary set of drugs (e.g. a doctor's own prescription)
    /// through the Medical Support module.
    pub fn explain(&self, drugs: &[usize]) -> Result<Explanation, CoreError> {
        explain_suggestion(&self.ddi_graph, drugs, &self.config.ms)
    }

    /// Serializes the fitted system into a payload.
    pub(crate) fn write_into(&self, w: &mut ByteWriter) {
        persist::put_section(w, section::ENGINE);
        match &self.ddi_module {
            Some(module) => {
                w.put_bool(true);
                module.write_into(w);
            }
            None => w.put_bool(false),
        }
        self.md_module.write_into(w);
        persist::write_signed_graph(w, &self.ddi_graph);
        persist::write_config(w, &self.config);
    }

    /// Reconstructs a fitted system written by [`Dssddi::write_into`].
    pub(crate) fn read_from(r: &mut ByteReader<'_>) -> Result<Self, SerdeError> {
        persist::expect_section(r, section::ENGINE, "engine")?;
        let ddi_module = if r.take_bool("engine.has_ddi_module")? {
            Some(DdiModule::read_from(r)?)
        } else {
            None
        };
        let md_module = MdModule::read_from(r)?;
        let ddi_graph = persist::read_signed_graph(r)?;
        let config = persist::read_config(r)?;
        if md_module.n_drugs() != ddi_graph.node_count() {
            return Err(SerdeError::Corrupt {
                what: format!(
                    "persisted MD module covers {} drugs but the DDI graph has {} nodes",
                    md_module.n_drugs(),
                    ddi_graph.node_count()
                ),
            });
        }
        Ok(Self {
            ddi_module,
            md_module,
            ddi_graph,
            config,
        })
    }

    /// Saves the fitted system to a `DSSD` container file, so a model
    /// trained once can be shipped to serving hosts. See
    /// [`dssddi_tensor::serde`] for the on-disk format.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let mut w = ByteWriter::new();
        self.write_into(&mut w);
        tserde::save_container(path, w.as_bytes())?;
        Ok(())
    }

    /// Loads a fitted system from a file written by [`Dssddi::save`].
    ///
    /// Truncated, corrupt or version-mismatched files produce a typed
    /// [`CoreError::Persistence`] — loading never panics.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let payload = tserde::load_container(path)?;
        let mut r = ByteReader::new(&payload);
        let engine = Self::read_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(CoreError::persistence(format!(
                "{} unexpected trailing bytes after the engine state",
                r.remaining()
            )));
        }
        Ok(engine)
    }

    /// The trained DDI module, when the configuration uses one.
    pub fn ddi_module(&self) -> Option<&DdiModule> {
        self.ddi_module.as_ref()
    }

    /// The trained Medical Decision module.
    pub fn md_module(&self) -> &MdModule {
        &self.md_module
    }

    /// The DDI graph the system explains suggestions with.
    pub fn ddi_graph(&self) -> &SignedGraph {
        &self.ddi_graph
    }

    /// The configuration the system was fitted with.
    pub fn config(&self) -> &DssddiConfig {
        &self.config
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims must keep working until removal
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::config::{Backbone, DssddiConfig};
    use dssddi_data::{
        generate_chronic_cohort, generate_ddi_graph, ChronicConfig, DdiConfig, DrugRegistry,
    };
    use dssddi_ml::{ndcg_at_k, recall_at_k};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world(n_patients: usize, seed: u64) -> (ChronicCohort, SignedGraph, Matrix) {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
        (cohort, ddi, drug_features)
    }

    fn tiny_config() -> DssddiConfig {
        let mut config = DssddiConfig::fast();
        config.ddi.epochs = 30;
        config.ddi.hidden_dim = 16;
        config.ddi.layers = 2;
        config.ddi.backbone = Backbone::Sgcn;
        config.md.hidden_dim = 16;
        config.md.epochs = 40;
        config
    }

    #[test]
    fn end_to_end_fit_suggest_and_explain() {
        let (cohort, ddi, drug_features) = small_world(80, 0);
        let observed: Vec<usize> = (0..60).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let system = Dssddi::fit_chronic(
            &cohort,
            &observed,
            &drug_features,
            &ddi,
            &tiny_config(),
            &mut rng,
        )
        .unwrap();
        assert!(system.ddi_module().is_some());

        let test_features = cohort.features().select_rows(&(60..80).collect::<Vec<_>>());
        let suggestions = system.suggest(&test_features, 3).unwrap();
        assert_eq!(suggestions.len(), 20);
        for s in &suggestions {
            assert_eq!(s.drugs.len(), 3);
            // Scores are probabilities in descending order.
            assert!(s.drugs[0].score >= s.drugs[1].score);
            assert!(s.drugs.iter().all(|d| (0.0..=1.0).contains(&d.score)));
            assert!(s.explanation.suggestion_satisfaction >= 0.0);
            for d in &s.drugs {
                assert!(s.explanation.community.contains(d.drug));
            }
        }
    }

    #[test]
    fn dssddi_beats_random_scores_on_held_out_patients() {
        let (cohort, ddi, drug_features) = small_world(120, 2);
        let observed: Vec<usize> = (0..90).collect();
        let held_out: Vec<usize> = (90..120).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let system = Dssddi::fit_chronic(
            &cohort,
            &observed,
            &drug_features,
            &ddi,
            &tiny_config(),
            &mut rng,
        )
        .unwrap();
        let test_features = cohort.features().select_rows(&held_out);
        let test_labels = cohort.labels().select_rows(&held_out);
        let scores = system.predict_scores(&test_features).unwrap();
        let random =
            Matrix::rand_uniform(test_labels.rows(), test_labels.cols(), 0.0, 1.0, &mut rng);
        let ours = recall_at_k(&scores, &test_labels, 6).unwrap();
        let baseline = recall_at_k(&random, &test_labels, 6).unwrap();
        assert!(
            ours > baseline,
            "DSSDDI recall@6 {ours:.3} should beat random {baseline:.3}"
        );
        let ndcg = ndcg_at_k(&scores, &test_labels, 6).unwrap();
        assert!(ndcg > 0.05);
    }

    #[test]
    fn mismatched_drug_counts_are_rejected() {
        let (cohort, _, drug_features) = small_world(40, 4);
        let wrong_ddi = SignedGraph::new(10);
        let observed: Vec<usize> = (0..30).collect();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Dssddi::fit_chronic(
            &cohort,
            &observed,
            &drug_features,
            &wrong_ddi,
            &tiny_config(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn ablation_without_ddi_embeddings_still_works() {
        let (cohort, ddi, drug_features) = small_world(60, 6);
        let observed: Vec<usize> = (0..45).collect();
        let mut config = tiny_config();
        config.md.use_ddi_embeddings = false;
        let mut rng = StdRng::seed_from_u64(7);
        let system =
            Dssddi::fit_chronic(&cohort, &observed, &drug_features, &ddi, &config, &mut rng)
                .unwrap();
        assert!(system.ddi_module().is_none());
        let test = cohort.features().select_rows(&[50, 51]);
        let suggestions = system.suggest(&test, 2).unwrap();
        assert_eq!(suggestions.len(), 2);
    }

    #[test]
    fn relation_embedding_override_is_used() {
        let (cohort, ddi, drug_features) = small_world(60, 8);
        let observed: Vec<usize> = (0..45).collect();
        let config = tiny_config();
        let mut rng = StdRng::seed_from_u64(9);
        let train_features = cohort.features().select_rows(&observed);
        let train_graph = cohort.bipartite_graph(&observed).unwrap();
        let override_embeddings =
            Matrix::rand_uniform(ddi.node_count(), config.md.hidden_dim, -0.1, 0.1, &mut rng);
        let system = Dssddi::fit_with_relation_embeddings(
            &train_features,
            &train_graph,
            &drug_features,
            &ddi,
            Some(&override_embeddings),
            &config,
            &mut rng,
        )
        .unwrap();
        // The DDI module is skipped when an override is supplied.
        assert!(system.ddi_module().is_none());
        assert!(system.md_module().ddi_embeddings().is_some());
    }

    #[test]
    fn zero_k_suggestion_is_rejected() {
        let (cohort, ddi, drug_features) = small_world(50, 10);
        let observed: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let system = Dssddi::fit_chronic(
            &cohort,
            &observed,
            &drug_features,
            &ddi,
            &tiny_config(),
            &mut rng,
        )
        .unwrap();
        let test = cohort.features().select_rows(&[45]);
        assert!(system.suggest(&test, 0).is_err());
    }
}
