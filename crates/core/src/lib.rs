//! # dssddi-core
//!
//! The DSSDDI decision support system of Bian et al. (ICDE 2023):
//!
//! * [`ddi_module`] — the Drug-Drug Interaction module: DDIGCN learns drug
//!   relation embeddings from the signed DDI graph by edge regression
//!   (Section IV-A), with GIN / SGCN / SiGAT / SNEA backbones.
//! * [`md_module`] — the Medical Decision module: counterfactual link
//!   construction over the patient–drug bipartite graph (Section IV-B1) and
//!   MDGCN, a LightGCN-style encoder with a personalised patient branch and
//!   an MLP decoder conditioned on the treatment variable (Eq. 9–18).
//! * [`ms_module`] — the Medical Support module: closest-truss-community
//!   explanation subgraphs and the Suggestion Satisfaction measure
//!   (Section IV-C, Eq. 19).
//! * [`system`] — the end-to-end [`Dssddi`] facade: fit on observed
//!   patients, suggest drugs for new patients, and explain every suggestion.

#![warn(missing_docs)]

pub mod config;
pub mod counterfactual;
pub mod ddi_module;
pub mod md_module;
pub mod ms_module;
mod persist;
pub mod service;
pub mod system;

pub use config::{Backbone, DdiModuleConfig, DssddiConfig, MdModuleConfig, MsModuleConfig};
pub use counterfactual::{CounterfactualLinks, TreatmentMatrix};
pub use ddi_module::DdiModule;
pub use md_module::MdModule;
pub use ms_module::{
    suggestion_satisfaction, Explanation, ExplanationCache, ExplanationIndex, SignedEdge,
    DEFAULT_EXPLANATION_CACHE_CAPACITY,
};
pub use service::{
    CheckPrescriptionRequest, DecisionService, DrugId, InteractionReport, PairInteraction,
    PatientId, ScoredDrug, ServiceBuilder, SuggestFilters, SuggestRequest, SuggestResponse,
};
pub use system::{DrugSuggestion, Dssddi, Suggestion};

// The clinical knowledge-base types travel with the request/response types
// they annotate (`CheckPrescriptionRequest.policy`, `PairInteraction.severity`),
// so re-export them here for single-crate consumers.
pub use dssddi_kb::{AlertPolicy, KbError, KbInfo, KnowledgeBase, Severity};

use dssddi_data::DataError;
use dssddi_graph::GraphError;
use dssddi_ml::MlError;
use dssddi_tensor::TensorError;

/// The single error type produced everywhere in the DSSDDI system, from data
/// assembly through training to clinical requests.
///
/// Contextual variants carry owned, formatted messages so callers see *which*
/// value was wrong, not just that one was. The enum is `#[non_exhaustive]`:
/// new failure modes may be added without a breaking change, so downstream
/// matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A tensor/autodiff operation failed (almost always a shape bug).
    Tensor(TensorError),
    /// A graph operation failed.
    Graph(GraphError),
    /// A classical ML component failed.
    Ml(MlError),
    /// A data generator or registry operation failed.
    Data(DataError),
    /// A configuration value is invalid for the requested operation.
    InvalidConfig {
        /// Description of the invalid configuration.
        what: String,
    },
    /// The module has not been fitted yet or its inputs are inconsistent.
    InvalidInput {
        /// Description of the problem.
        what: String,
    },
    /// A drug referenced by name or ID is not in the service's registry.
    UnknownDrug {
        /// The name or ID the caller asked for.
        query: String,
    },
    /// A clinical request needs a fitted model the service was built without.
    NotFitted {
        /// The operation that was requested.
        operation: String,
    },
    /// Saving or loading persisted model state failed (truncated, corrupt or
    /// version-mismatched file, or a registry that does not match the one the
    /// service was persisted with).
    Persistence {
        /// Description of the failure.
        what: String,
    },
}

impl CoreError {
    /// A [`CoreError::InvalidConfig`] with a contextual message.
    pub fn invalid_config(what: impl Into<String>) -> Self {
        CoreError::InvalidConfig { what: what.into() }
    }

    /// A [`CoreError::InvalidInput`] with a contextual message.
    pub fn invalid_input(what: impl Into<String>) -> Self {
        CoreError::InvalidInput { what: what.into() }
    }

    /// A [`CoreError::UnknownDrug`] for a failed registry lookup.
    pub fn unknown_drug(query: impl Into<String>) -> Self {
        CoreError::UnknownDrug {
            query: query.into(),
        }
    }

    /// A [`CoreError::NotFitted`] for an operation requiring a trained model.
    pub fn not_fitted(operation: impl Into<String>) -> Self {
        CoreError::NotFitted {
            operation: operation.into(),
        }
    }

    /// A [`CoreError::Persistence`] with a contextual message.
    pub fn persistence(what: impl Into<String>) -> Self {
        CoreError::Persistence { what: what.into() }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            CoreError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            CoreError::UnknownDrug { query } => {
                write!(f, "unknown drug {query:?}: not in the service's formulary")
            }
            CoreError::NotFitted { operation } => {
                write!(
                    f,
                    "{operation} requires a fitted model; this service was built without one"
                )
            }
            CoreError::Persistence { what } => write!(f, "persistence error: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<dssddi_tensor::serde::SerdeError> for CoreError {
    fn from(e: dssddi_tensor::serde::SerdeError) -> Self {
        CoreError::Persistence {
            what: e.to_string(),
        }
    }
}
