//! # dssddi-core
//!
//! The DSSDDI decision support system of Bian et al. (ICDE 2023):
//!
//! * [`ddi_module`] — the Drug-Drug Interaction module: DDIGCN learns drug
//!   relation embeddings from the signed DDI graph by edge regression
//!   (Section IV-A), with GIN / SGCN / SiGAT / SNEA backbones.
//! * [`md_module`] — the Medical Decision module: counterfactual link
//!   construction over the patient–drug bipartite graph (Section IV-B1) and
//!   MDGCN, a LightGCN-style encoder with a personalised patient branch and
//!   an MLP decoder conditioned on the treatment variable (Eq. 9–18).
//! * [`ms_module`] — the Medical Support module: closest-truss-community
//!   explanation subgraphs and the Suggestion Satisfaction measure
//!   (Section IV-C, Eq. 19).
//! * [`system`] — the end-to-end [`Dssddi`] facade: fit on observed
//!   patients, suggest drugs for new patients, and explain every suggestion.

#![warn(missing_docs)]

pub mod config;
pub mod counterfactual;
pub mod ddi_module;
pub mod md_module;
pub mod ms_module;
pub mod system;

pub use config::{Backbone, DdiModuleConfig, DssddiConfig, MdModuleConfig, MsModuleConfig};
pub use counterfactual::{CounterfactualLinks, TreatmentMatrix};
pub use ddi_module::DdiModule;
pub use md_module::MdModule;
pub use ms_module::{suggestion_satisfaction, Explanation, SignedEdge};
pub use system::{DrugSuggestion, Dssddi, Suggestion};

use dssddi_graph::GraphError;
use dssddi_ml::MlError;
use dssddi_tensor::TensorError;

/// Errors produced by the DSSDDI modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tensor/autodiff operation failed (almost always a shape bug).
    Tensor(TensorError),
    /// A graph operation failed.
    Graph(GraphError),
    /// A classical ML component failed.
    Ml(MlError),
    /// A configuration value is invalid for the requested operation.
    InvalidConfig {
        /// Description of the invalid configuration.
        what: &'static str,
    },
    /// The module has not been fitted yet or its inputs are inconsistent.
    InvalidInput {
        /// Description of the problem.
        what: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            CoreError::InvalidInput { what } => write!(f, "invalid input: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}
