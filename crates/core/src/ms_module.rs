//! The Medical Support module (Section IV-C): explanation subgraphs and the
//! Suggestion Satisfaction measure.
//!
//! Given the drugs suggested by the Medical Decision module, the MS module
//! finds the closest truss community containing them in the DDI graph
//! (Algorithm 1), classifies the interactions inside and around the
//! suggestion, and scores the suggestion with SS (Eq. 19): good suggestions
//! have many synergistic interactions among the suggested drugs and leave
//! the antagonistic interactions pointing at non-suggested drugs.

use std::collections::HashMap;

use dssddi_graph::{
    closest_truss_community_with, truss_decomposition, Community, Interaction, SignedGraph,
    TrussDecomposition, UnGraph,
};

use crate::config::MsModuleConfig;
use crate::CoreError;

/// An interaction edge annotated with its sign, for display to the doctor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedEdge {
    /// First drug ID.
    pub u: usize,
    /// Second drug ID.
    pub v: usize,
    /// Interaction sign.
    pub interaction: Interaction,
}

/// The explanation produced for a set of suggested drugs.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The suggested drugs the explanation is about.
    pub suggested: Vec<usize>,
    /// The closest truss community around the suggestion.
    pub community: Community,
    /// Interactions inside the community, with signs.
    pub edges: Vec<SignedEdge>,
    /// Synergistic interactions among the suggested drugs (`r^in_pos`).
    pub internal_synergy: usize,
    /// Antagonistic interactions among the suggested drugs (`r^in_neg`).
    pub internal_antagonism: usize,
    /// Antagonistic interactions between suggested and non-suggested
    /// community drugs (`r^out_neg`).
    pub external_antagonism: usize,
    /// The Suggestion Satisfaction score (Eq. 19).
    pub suggestion_satisfaction: f64,
}

impl Explanation {
    /// Synergistic edges among the suggested drugs, for display.
    pub fn synergy_pairs(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|e| {
                e.interaction == Interaction::Synergistic
                    && self.suggested.contains(&e.u)
                    && self.suggested.contains(&e.v)
            })
            .map(|e| (e.u, e.v))
            .collect()
    }

    /// Antagonistic edges touching at least one suggested drug, for display.
    pub fn antagonism_pairs(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|e| {
                e.interaction == Interaction::Antagonistic
                    && (self.suggested.contains(&e.u) || self.suggested.contains(&e.v))
            })
            .map(|e| (e.u, e.v))
            .collect()
    }
}

/// Computes Suggestion Satisfaction (Eq. 19) from the counted interactions.
///
/// * `k` — number of suggested drugs,
/// * `community_size` — number of drugs `n'` in the explanation subgraph,
/// * `internal_synergy` / `internal_antagonism` — interactions among the
///   suggested drugs,
/// * `external_antagonism` — antagonistic interactions between suggested and
///   non-suggested community drugs,
/// * `alpha` — balance between the two terms.
pub fn suggestion_satisfaction(
    k: usize,
    community_size: usize,
    internal_synergy: usize,
    internal_antagonism: usize,
    external_antagonism: usize,
    alpha: f64,
) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let k_f = k as f64;
    let first = 2.0 * (internal_synergy as f64 + 1.0)
        / ((internal_antagonism as f64 + 1.0) * (k_f * (k_f - 1.0) + 2.0));
    let outside = community_size.saturating_sub(k);
    let second = if outside == 0 {
        0.0
    } else {
        external_antagonism as f64 / (k_f * outside as f64)
    };
    alpha * first + (1.0 - alpha) * second
}

/// Default number of distinct drug sets an [`ExplanationCache`] retains.
///
/// With the paper's 86-drug formulary and top-k suggestions there are far
/// fewer *observed* distinct suggestion sets than this, so in practice the
/// bound only matters for adversarial or very long-lived workloads.
pub const DEFAULT_EXPLANATION_CACHE_CAPACITY: usize = 1024;

/// Memoizes [`explain_suggestion`] results keyed by the (sorted,
/// deduplicated) suggested drug set, evicting the least-recently-used entry
/// once a fixed capacity is reached.
///
/// Suggestion batches are highly repetitive: patients with the same chronic
/// profile receive the same top-k drugs, and the closest-truss-community
/// search is by far the most expensive part of serving a suggestion. The DDI
/// graph is immutable after fit, so a service-owned cache stays valid across
/// batches and collapses repeated community searches for the whole lifetime
/// of the service — while the capacity bound keeps a long-lived service's
/// memory use flat.
#[derive(Debug)]
pub struct ExplanationCache {
    entries: HashMap<Vec<usize>, CachedExplanation>,
    capacity: usize,
    clock: u64,
    hits: usize,
    misses: usize,
}

#[derive(Debug)]
struct CachedExplanation {
    explanation: Explanation,
    last_used: u64,
}

impl Default for ExplanationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ExplanationCache {
    /// An empty cache bounded at [`DEFAULT_EXPLANATION_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EXPLANATION_CACHE_CAPACITY)
    }

    /// An empty cache retaining at most `capacity` distinct drug sets
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The canonical cache key of a suggested drug set: sorted, deduplicated
    /// indices (a prescription is a set; order must not fragment the memo).
    pub fn canonical_key(suggested: &[usize]) -> Vec<usize> {
        let mut key: Vec<usize> = suggested.to_vec();
        key.sort_unstable();
        key.dedup();
        key
    }

    /// The cached explanation for `suggested`, if present (counts a hit and
    /// refreshes the entry's recency). Separated from [`ExplanationCache::insert`]
    /// so concurrent serving shards can run the expensive community search
    /// *outside* the cache lock: lock → `lookup`, miss → search unlocked,
    /// lock → `insert`.
    pub fn lookup(&mut self, suggested: &[usize]) -> Option<Explanation> {
        let key = Self::canonical_key(suggested);
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some(cached) => {
                cached.last_used = self.clock;
                self.hits += 1;
                Some(cached.explanation.clone())
            }
            None => None,
        }
    }

    /// Records a freshly computed explanation for `suggested`, counting a
    /// miss and evicting the least-recently-used entry when at capacity.
    /// If two shards raced on the same key, the later insert harmlessly
    /// overwrites the earlier with an identical explanation (community
    /// search is deterministic for a fixed graph and key).
    pub fn insert(&mut self, suggested: &[usize], explanation: Explanation) {
        let key = Self::canonical_key(suggested);
        self.misses += 1;
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(len) scan for the least-recently-used entry; the capacity is
            // small enough that a linked recency list is not worth the
            // bookkeeping.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(
            key,
            CachedExplanation {
                explanation,
                last_used: self.clock,
            },
        );
    }

    /// The explanation for `suggested`, computed at most once per distinct
    /// cached drug set. The returned explanation lists the drugs in sorted
    /// order.
    pub fn explain(
        &mut self,
        ddi: &SignedGraph,
        suggested: &[usize],
        config: &MsModuleConfig,
    ) -> Result<Explanation, CoreError> {
        if let Some(hit) = self.lookup(suggested) {
            return Ok(hit);
        }
        let key = Self::canonical_key(suggested);
        let explanation = explain_suggestion(ddi, &key, config)?;
        self.insert(&key, explanation.clone());
        Ok(explanation)
    }

    /// How many lookups were answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many lookups required a fresh community search.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of drug sets currently cached (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of drug sets the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every cached drug set (the cumulative hit/miss counters are
    /// kept) — lets benchmarks and operators measure the cold path.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Precomputed structural view of an immutable DDI graph: the unsigned
/// structural graph plus its full truss decomposition (line 1 of
/// Algorithm 1). Every explanation used to recompute both; a serving layer
/// builds the index once per fitted graph and amortises them over all
/// requests — the community search itself is unchanged, so explanations are
/// identical to the per-call recomputation.
#[derive(Debug, Clone)]
pub struct ExplanationIndex {
    structural: UnGraph,
    decomposition: TrussDecomposition,
}

impl ExplanationIndex {
    /// Builds the index for a DDI graph (one structural projection + one
    /// truss decomposition).
    pub fn build(ddi: &SignedGraph) -> Self {
        let structural = ddi.structural_graph();
        let decomposition = truss_decomposition(&structural);
        Self {
            structural,
            decomposition,
        }
    }

    /// [`explain_suggestion`] against the precomputed index. `ddi` must be
    /// the graph the index was built from.
    pub fn explain(
        &self,
        ddi: &SignedGraph,
        suggested: &[usize],
        config: &MsModuleConfig,
    ) -> Result<Explanation, CoreError> {
        explain_with(
            ddi,
            &self.structural,
            &self.decomposition,
            suggested,
            config,
        )
    }
}

/// Builds the explanation for a set of suggested drugs: finds the closest
/// truss community around them in the DDI graph, annotates its edges with
/// interaction signs, and computes Suggestion Satisfaction.
///
/// Recomputes the structural graph and truss decomposition per call; hot
/// serving paths go through [`ExplanationIndex`] instead.
pub fn explain_suggestion(
    ddi: &SignedGraph,
    suggested: &[usize],
    config: &MsModuleConfig,
) -> Result<Explanation, CoreError> {
    let structural = ddi.structural_graph();
    let decomposition = truss_decomposition(&structural);
    explain_with(ddi, &structural, &decomposition, suggested, config)
}

/// Shared implementation of [`explain_suggestion`] over a (possibly
/// precomputed) structural graph and truss decomposition.
fn explain_with(
    ddi: &SignedGraph,
    structural: &UnGraph,
    decomposition: &TrussDecomposition,
    suggested: &[usize],
    config: &MsModuleConfig,
) -> Result<Explanation, CoreError> {
    if suggested.is_empty() {
        return Err(CoreError::invalid_input(
            "cannot explain an empty suggestion",
        ));
    }
    for &d in suggested {
        if d >= ddi.node_count() {
            return Err(CoreError::invalid_input(
                "suggested drug ID outside the DDI graph",
            ));
        }
    }
    let community =
        closest_truss_community_with(structural, decomposition, suggested, &config.ctc)?;

    let edges: Vec<SignedEdge> = community
        .edges
        .iter()
        .filter_map(|&(u, v)| {
            ddi.interaction(u, v)
                .map(|interaction| SignedEdge { u, v, interaction })
        })
        .collect();

    let is_suggested = |d: usize| suggested.contains(&d);
    let mut internal_synergy = 0usize;
    let mut internal_antagonism = 0usize;
    let mut external_antagonism = 0usize;
    for e in &edges {
        match (e.interaction, is_suggested(e.u), is_suggested(e.v)) {
            (Interaction::Synergistic, true, true) => internal_synergy += 1,
            (Interaction::Antagonistic, true, true) => internal_antagonism += 1,
            (Interaction::Antagonistic, true, false) | (Interaction::Antagonistic, false, true) => {
                external_antagonism += 1
            }
            _ => {}
        }
    }
    let k = {
        let mut unique: Vec<usize> = suggested.to_vec();
        unique.sort_unstable();
        unique.dedup();
        unique.len()
    };
    let ss = suggestion_satisfaction(
        k,
        community.node_count(),
        internal_synergy,
        internal_antagonism,
        external_antagonism,
        config.alpha,
    );
    Ok(Explanation {
        suggested: suggested.to_vec(),
        community,
        edges,
        internal_synergy,
        internal_antagonism,
        external_antagonism,
        suggestion_satisfaction: ss,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    /// A DDI graph with a synergistic triangle {0,1,2}, antagonism from the
    /// triangle to {3,4}, and an unrelated antagonistic pair {5,6}.
    fn ddi() -> SignedGraph {
        let mut g = SignedGraph::new(8);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.add_interaction(u, v, Interaction::Synergistic).unwrap();
        }
        for (u, v) in [(0, 3), (1, 3), (2, 4), (3, 4), (5, 6)] {
            g.add_interaction(u, v, Interaction::Antagonistic).unwrap();
        }
        g
    }

    #[test]
    fn ss_formula_matches_hand_computation() {
        // k = 2, n' = 4, rin_pos = 1, rin_neg = 0, rout_neg = 3, α = 0.5.
        let ss = suggestion_satisfaction(2, 4, 1, 0, 3, 0.5);
        let expected = 0.5 * (2.0 * 2.0 / (1.0 * 4.0)) + 0.5 * (3.0 / (2.0 * 2.0));
        assert!((ss - expected).abs() < 1e-12);
    }

    #[test]
    fn ss_rewards_synergy_and_penalises_internal_antagonism() {
        let good = suggestion_satisfaction(3, 6, 3, 0, 2, 0.5);
        let bad = suggestion_satisfaction(3, 6, 0, 3, 2, 0.5);
        assert!(good > bad);
    }

    #[test]
    fn ss_edge_cases() {
        assert_eq!(suggestion_satisfaction(0, 5, 1, 1, 1, 0.5), 0.0);
        // Community equal to the suggestion: the external term vanishes.
        let ss = suggestion_satisfaction(2, 2, 1, 0, 0, 0.5);
        assert!(ss > 0.0);
        // k = 1 suggestion is still scored.
        let single = suggestion_satisfaction(1, 3, 0, 0, 2, 0.5);
        assert!(single > 0.0);
    }

    #[test]
    fn explanation_counts_interactions_correctly() {
        let g = ddi();
        let exp = explain_suggestion(&g, &[0, 1, 2], &MsModuleConfig::default()).unwrap();
        assert_eq!(exp.internal_synergy, 3);
        assert_eq!(exp.internal_antagonism, 0);
        // External antagonism is only counted when the community search pulls
        // non-suggested drugs into the explanation subgraph.
        if exp.community.contains(3) || exp.community.contains(4) {
            assert!(exp.external_antagonism >= 1);
        } else {
            assert_eq!(exp.external_antagonism, 0);
        }
        assert!(exp.suggestion_satisfaction > 0.0);
        assert!(
            exp.community.contains(0) && exp.community.contains(1) && exp.community.contains(2)
        );
        // The unrelated pair {5,6} must not be pulled into the explanation.
        assert!(!exp.community.contains(5) && !exp.community.contains(6));
        assert_eq!(exp.synergy_pairs().len(), 3);
    }

    #[test]
    fn antagonistic_suggestion_scores_lower_than_synergistic_one() {
        let g = ddi();
        let cfg = MsModuleConfig::default();
        let synergistic = explain_suggestion(&g, &[0, 1], &cfg).unwrap();
        let antagonistic = explain_suggestion(&g, &[3, 4], &cfg).unwrap();
        assert!(
            synergistic.suggestion_satisfaction > antagonistic.suggestion_satisfaction,
            "SS must prefer the synergistic suggestion ({} vs {})",
            synergistic.suggestion_satisfaction,
            antagonistic.suggestion_satisfaction
        );
    }

    #[test]
    fn invalid_suggestions_error() {
        let g = ddi();
        let cfg = MsModuleConfig::default();
        assert!(explain_suggestion(&g, &[], &cfg).is_err());
        assert!(explain_suggestion(&g, &[99], &cfg).is_err());
    }

    #[test]
    fn explanation_cache_deduplicates_equivalent_suggestions() {
        let g = ddi();
        let cfg = MsModuleConfig::default();
        let mut cache = ExplanationCache::new();
        let a = cache.explain(&g, &[0, 1, 2], &cfg).unwrap();
        // Same set in a different order, and with a duplicate: both hits.
        let b = cache.explain(&g, &[2, 0, 1], &cfg).unwrap();
        let c = cache.explain(&g, &[1, 0, 2, 2], &cfg).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(a.suggestion_satisfaction, b.suggestion_satisfaction);
        assert_eq!(a.internal_synergy, c.internal_synergy);
        // A genuinely different set misses.
        cache.explain(&g, &[3, 4], &cfg).unwrap();
        assert_eq!(cache.misses(), 2);
        // Cached results agree with the uncached path.
        let direct = explain_suggestion(&g, &[0, 1, 2], &cfg).unwrap();
        assert_eq!(a.suggestion_satisfaction, direct.suggestion_satisfaction);
        assert_eq!(a.edges.len(), direct.edges.len());
    }

    #[test]
    fn explanation_cache_is_size_bounded_with_lru_eviction() {
        let g = ddi();
        let cfg = MsModuleConfig::default();
        let mut cache = ExplanationCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.explain(&g, &[0, 1], &cfg).unwrap();
        cache.explain(&g, &[3, 4], &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        // Touch {0,1} so {3,4} becomes the least recently used entry...
        cache.explain(&g, &[0, 1], &cfg).unwrap();
        assert_eq!(cache.hits(), 1);
        // ...then insert a third set: the cache must stay at capacity.
        cache.explain(&g, &[5, 6], &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        // {0,1} survived the eviction, {3,4} did not.
        cache.explain(&g, &[0, 1], &cfg).unwrap();
        assert_eq!(cache.hits(), 2);
        cache.explain(&g, &[3, 4], &cfg).unwrap();
        assert_eq!(cache.misses(), 4, "evicted set must be recomputed");
        // A zero capacity is clamped so the cache still functions.
        assert_eq!(ExplanationCache::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn isolated_suggested_drug_is_still_explained() {
        let g = ddi();
        let exp = explain_suggestion(&g, &[7], &MsModuleConfig::default()).unwrap();
        assert!(exp.community.contains(7));
        assert_eq!(exp.internal_synergy, 0);
        assert_eq!(exp.edges.len(), 0);
    }
}
