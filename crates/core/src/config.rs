//! Configuration of the three DSSDDI modules.
//!
//! Defaults follow Section V-A3 of the paper: hidden size 64, 3 DDIGCN
//! layers trained for 400 epochs with Adam at learning rate 0.001, 2 MDGCN
//! propagation layers trained for 1000 epochs with Adam at learning rate
//! 0.01, layer-combination weights β_t = 1/(t+2), counterfactual loss weight
//! δ = 1, and SS balance α = 0.5.

use dssddi_graph::CtcConfig;

/// GNN backbone of DDIGCN (Table I compares the four variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backbone {
    /// Graph Isomorphism Network (used on MIMIC-III, where only antagonistic
    /// interactions are available).
    Gin,
    /// Signed GCN — the best-performing backbone on the chronic data set.
    Sgcn,
    /// Signed graph attention (SiGAT).
    Sigat,
    /// Signed network embedding via attention (SNEA).
    Snea,
}

impl Backbone {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Backbone::Gin => "GIN",
            Backbone::Sgcn => "SGCN",
            Backbone::Sigat => "SiGAT",
            Backbone::Snea => "SNEA",
        }
    }

    /// All backbones in the order of Table I.
    pub const ALL: [Backbone; 4] = [
        Backbone::Sigat,
        Backbone::Snea,
        Backbone::Gin,
        Backbone::Sgcn,
    ];
}

/// Configuration of the DDI module (DDIGCN).
#[derive(Debug, Clone)]
pub struct DdiModuleConfig {
    /// Output embedding dimension (64 in the paper). Must be even for the
    /// SGCN and SiGAT backbones, whose outputs are sign-wise concatenations.
    pub hidden_dim: usize,
    /// Number of graph convolution layers (3 in the paper).
    pub layers: usize,
    /// Training epochs (400 in the paper).
    pub epochs: usize,
    /// Adam learning rate (0.001 in the paper).
    pub learning_rate: f32,
    /// Backbone architecture.
    pub backbone: Backbone,
    /// Number of explicit "no interaction" edges to sample for training.
    /// `None` samples as many as there are real interactions.
    pub negative_edges: Option<usize>,
}

impl Default for DdiModuleConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            layers: 3,
            epochs: 400,
            learning_rate: 0.001,
            backbone: Backbone::Sgcn,
            negative_edges: None,
        }
    }
}

/// Which initial drug features the MD module uses (the Table II ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrugFeatureSource {
    /// Pre-trained knowledge-graph (TransE/DRKG) embeddings — the paper's default.
    KnowledgeGraph,
    /// One-hot drug identities.
    OneHot,
}

/// Configuration of the Medical Decision module (MDGCN + counterfactuals).
#[derive(Debug, Clone)]
pub struct MdModuleConfig {
    /// Hidden dimension shared by patients and drugs (64 in the paper).
    pub hidden_dim: usize,
    /// Number of LightGCN-style propagation layers (2 in the paper).
    pub propagation_layers: usize,
    /// Training epochs (1000 in the paper; experiments may lower this).
    pub epochs: usize,
    /// Adam learning rate (0.01 in the paper).
    pub learning_rate: f32,
    /// Weight δ of the counterfactual loss (1.0 in the paper).
    pub delta: f32,
    /// Whether counterfactual links are constructed and trained on at all
    /// (disabling this removes the causal component).
    pub use_counterfactual: bool,
    /// Whether the DDI relation embeddings are added to the final drug
    /// representations ("w/o DDI" ablation of Table II sets this to false).
    pub use_ddi_embeddings: bool,
    /// Initial drug feature source (Table II ablation).
    pub drug_features: DrugFeatureSource,
    /// Number of K-means patient clusters used to define the treatment
    /// (the paper sets it to the number of chronic diseases).
    pub n_clusters: usize,
    /// Maximum feature distance γ_p for two patients to count as similar in
    /// the counterfactual nearest-neighbour search.
    pub gamma_patient: f32,
    /// Maximum feature distance γ_d for two drugs to count as similar.
    pub gamma_drug: f32,
    /// Negative patient–drug pairs sampled per observed link (1 in the paper).
    pub negatives_per_positive: usize,
}

impl Default for MdModuleConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            propagation_layers: 2,
            epochs: 200,
            learning_rate: 0.01,
            delta: 1.0,
            use_counterfactual: true,
            use_ddi_embeddings: true,
            drug_features: DrugFeatureSource::KnowledgeGraph,
            n_clusters: 16,
            gamma_patient: 2.0,
            gamma_drug: 2.0,
            negatives_per_positive: 1,
        }
    }
}

/// Configuration of the Medical Support module.
#[derive(Debug, Clone)]
pub struct MsModuleConfig {
    /// Balance α between internal synergy and external antagonism in the
    /// Suggestion Satisfaction measure (Eq. 19).
    pub alpha: f64,
    /// Closest-truss-community search parameters.
    pub ctc: CtcConfig,
}

impl Default for MsModuleConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            ctc: CtcConfig::default(),
        }
    }
}

/// Top-level configuration of the decision support system.
#[derive(Debug, Clone, Default)]
pub struct DssddiConfig {
    /// DDI module (DDIGCN) configuration.
    pub ddi: DdiModuleConfig,
    /// Medical Decision module configuration.
    pub md: MdModuleConfig,
    /// Medical Support module configuration.
    pub ms: MsModuleConfig,
}

impl DssddiConfig {
    /// A configuration scaled down for fast tests and examples: smaller
    /// hidden sizes and far fewer epochs, same structure.
    pub fn fast() -> Self {
        Self {
            ddi: DdiModuleConfig {
                hidden_dim: 16,
                layers: 2,
                epochs: 60,
                ..Default::default()
            },
            md: MdModuleConfig {
                hidden_dim: 16,
                epochs: 60,
                ..Default::default()
            },
            ms: MsModuleConfig::default(),
        }
    }

    /// The paper's full configuration (slow: 400 + 1000 epochs).
    pub fn paper() -> Self {
        Self {
            ddi: DdiModuleConfig {
                epochs: 400,
                ..Default::default()
            },
            md: MdModuleConfig {
                epochs: 1000,
                ..Default::default()
            },
            ms: MsModuleConfig::default(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = DssddiConfig::default();
        assert_eq!(c.ddi.hidden_dim, 64);
        assert_eq!(c.ddi.layers, 3);
        assert!((c.ddi.learning_rate - 0.001).abs() < 1e-9);
        assert_eq!(c.md.propagation_layers, 2);
        assert!((c.md.learning_rate - 0.01).abs() < 1e-9);
        assert!((c.md.delta - 1.0).abs() < 1e-9);
        assert!((c.ms.alpha - 0.5).abs() < 1e-12);
        assert_eq!(c.ddi.backbone, Backbone::Sgcn);
    }

    #[test]
    fn fast_config_is_smaller_than_paper_config() {
        let fast = DssddiConfig::fast();
        let paper = DssddiConfig::paper();
        assert!(fast.ddi.epochs < paper.ddi.epochs);
        assert!(fast.md.epochs < paper.md.epochs);
        assert!(fast.ddi.hidden_dim < paper.ddi.hidden_dim);
    }

    #[test]
    fn backbone_names_and_order() {
        assert_eq!(Backbone::Sgcn.name(), "SGCN");
        assert_eq!(Backbone::ALL.len(), 4);
        assert_eq!(Backbone::ALL[3], Backbone::Sgcn);
    }
}
