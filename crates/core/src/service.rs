//! The clinical decision service: a typed request/response API over the
//! DSSDDI system.
//!
//! The research-style [`Dssddi`] facade works in raw `usize` drug indices and
//! positional [`Matrix`] arguments. Deployed prescription-critiquing systems
//! are organised differently: a doctor-facing service accepts *typed clinical
//! requests* and returns *structured, explanation-carrying responses*. This
//! module provides that layer:
//!
//! * [`DrugId`] / [`PatientId`] — typed identifiers with registry-backed name
//!   resolution instead of bare indices,
//! * [`ServiceBuilder`] — validates and assembles a [`DssddiConfig`] before
//!   any training starts, returning contextual errors,
//! * [`SuggestRequest`] → [`SuggestResponse`] — top-k medication suggestion
//!   for one patient, with per-request filters and named, scored drugs,
//! * [`CheckPrescriptionRequest`] → [`InteractionReport`] — critique of an
//!   existing drug set against the signed DDI graph, no model required,
//! * [`DecisionService::suggest_batch`] — serves many patients with a single
//!   score-prediction pass and memoized explanations.
//!
//! ```no_run
//! use dssddi_core::{ServiceBuilder, SuggestRequest, PatientId};
//! # use dssddi_data::{generate_chronic_cohort, generate_ddi_graph,
//! #     pretrained_drug_embeddings, split_patients, ChronicConfig, DdiConfig,
//! #     DrkgConfig, DrugRegistry};
//! # use rand::SeedableRng;
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! # let registry = DrugRegistry::standard();
//! # let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
//! # let cohort = generate_chronic_cohort(&registry, &ddi, &ChronicConfig::default(), &mut rng).unwrap();
//! # let features = pretrained_drug_embeddings(&registry, &DrkgConfig::default(), &mut rng).unwrap();
//! # let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng).unwrap();
//! let service = ServiceBuilder::fast()
//!     .fit_chronic(&cohort, &split.train, &features, &ddi, &mut rng)
//!     .unwrap();
//! let request = SuggestRequest::new(
//!     PatientId::new(0),
//!     cohort.features().row(split.test[0]).to_vec(),
//!     3,
//! );
//! let response = service.suggest(&request).unwrap();
//! for drug in &response.drugs {
//!     println!("{} ({}): {:.3}", drug.name, drug.id, drug.score);
//! }
//! ```

// The serving path must degrade into typed errors, never panics: a malformed
// request or file is routine input for a long-lived service. The
// `unwrap_used`/`expect_used` denies live in `[workspace.lints]` (every
// serving-path crate inherits them); vetted invariants may be locally
// allowed with a justification.

use std::fmt;
use std::path::Path;
use std::sync::Mutex;

use rand::Rng;

use dssddi_data::{ChronicCohort, DrugRegistry};
use dssddi_graph::{BipartiteGraph, Interaction, SignedGraph};
use dssddi_kb::{AlertPolicy, KnowledgeBase, Severity};
use dssddi_tensor::serde::{self as tserde, ByteReader, ByteWriter};
use dssddi_tensor::Matrix;

use crate::config::{Backbone, DssddiConfig};
use crate::ms_module::{Explanation, ExplanationCache, ExplanationIndex};
use crate::persist::{self, section};
use crate::system::Dssddi;
use crate::CoreError;

/// Requests one serving worker must have before [`DecisionService::suggest_batch`]
/// spawns another: below this, thread startup costs more than it overlaps.
const MIN_REQUESTS_PER_SHARD: usize = 8;

/// A typed drug identifier (the paper's DID): an index into the service's
/// [`DrugRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DrugId(usize);

impl DrugId {
    /// Wraps a raw DID.
    pub fn new(id: usize) -> Self {
        DrugId(id)
    }

    /// The raw index into the formulary.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DrugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DID {}", self.0)
    }
}

impl From<usize> for DrugId {
    fn from(id: usize) -> Self {
        DrugId(id)
    }
}

/// A typed patient identifier, echoed back in responses so batched callers
/// can correlate requests with results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatientId(usize);

impl PatientId {
    /// Wraps a raw patient identifier.
    pub fn new(id: usize) -> Self {
        PatientId(id)
    }

    /// The raw identifier.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PatientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "patient #{}", self.0)
    }
}

impl From<usize> for PatientId {
    fn from(id: usize) -> Self {
        PatientId(id)
    }
}

/// One suggested drug: typed identifier, resolved name and prediction score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredDrug {
    /// Typed drug identifier.
    pub id: DrugId,
    /// Generic name from the registry.
    pub name: String,
    /// Predicted medication-use probability.
    pub score: f32,
}

/// Per-request constraints on which drugs may be suggested.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuggestFilters {
    /// Drugs that must never appear in the suggestion (allergies,
    /// contraindications, drugs already tried).
    pub exclude: Vec<DrugId>,
    /// Drugs the patient is already taking: any candidate with an
    /// antagonistic DDI against one of these is dropped.
    pub avoid_antagonists_of: Vec<DrugId>,
    /// Drugs the patient is already taking, checked against the clinical
    /// knowledge base: any candidate whose interaction with one of these is
    /// graded [`Severity::Contraindicated`] is dropped. Needs a
    /// [`KnowledgeBase`] on the serving path
    /// ([`DecisionService::suggest_batch_with_kb`] or a gateway shard's KB);
    /// without one no grade can reach `Contraindicated` and the filter
    /// passes everything.
    pub exclude_contraindicated_with: Vec<DrugId>,
}

impl SuggestFilters {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns true when the filters reject candidate drug `d`.
    fn rejects(&self, d: usize, ddi: &SignedGraph, kb: Option<&KnowledgeBase>) -> bool {
        if self.exclude.iter().any(|x| x.index() == d) {
            return true;
        }
        if self
            .avoid_antagonists_of
            .iter()
            .any(|taken| ddi.interaction(taken.index(), d) == Some(Interaction::Antagonistic))
        {
            return true;
        }
        if let Some(kb) = kb {
            // A contraindication fires on the KB fact alone — a curated
            // hard stop must hold even for pairs the DDI graph has no
            // signed edge for.
            return self.exclude_contraindicated_with.iter().any(|taken| {
                kb.lookup(taken.index(), d)
                    .is_some_and(|fact| fact.severity == Severity::Contraindicated)
            });
        }
        false
    }
}

/// A medication-suggestion request for one patient.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestRequest {
    /// Caller-side patient identifier, echoed in the response.
    pub patient: PatientId,
    /// The patient's feature vector (same layout as the training features).
    pub features: Vec<f32>,
    /// Number of drugs to suggest.
    pub k: usize,
    /// Constraints on the suggestion.
    pub filters: SuggestFilters,
}

impl SuggestRequest {
    /// A request with no filters.
    pub fn new(patient: PatientId, features: Vec<f32>, k: usize) -> Self {
        Self {
            patient,
            features,
            k,
            filters: SuggestFilters::none(),
        }
    }

    /// Adds filters to the request.
    pub fn with_filters(mut self, filters: SuggestFilters) -> Self {
        self.filters = filters;
        self
    }
}

/// The service's answer to a [`SuggestRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestResponse {
    /// The patient the suggestion is for.
    pub patient: PatientId,
    /// Suggested drugs in descending score order, with resolved names.
    pub drugs: Vec<ScoredDrug>,
    /// The DDI-based explanation subgraph shown to the doctor.
    pub explanation: Explanation,
    /// The Suggestion Satisfaction score (Eq. 19), copied out of the
    /// explanation for convenience.
    pub suggestion_satisfaction: f64,
}

/// A request to critique an existing prescription against the DDI graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckPrescriptionRequest {
    /// Optional patient the prescription belongs to.
    pub patient: Option<PatientId>,
    /// The prescribed drugs.
    pub drugs: Vec<DrugId>,
    /// Which severity grades the report includes. The default reports
    /// everything; a busy clinic raises the threshold to fight alert
    /// fatigue. Contraindicated findings always fire.
    pub policy: AlertPolicy,
}

impl CheckPrescriptionRequest {
    /// A prescription check without patient attribution, reporting every
    /// severity grade.
    pub fn new(drugs: Vec<DrugId>) -> Self {
        Self {
            patient: None,
            drugs,
            policy: AlertPolicy::default(),
        }
    }

    /// Attributes the prescription to a patient.
    pub fn for_patient(mut self, patient: PatientId) -> Self {
        self.patient = Some(patient);
        self
    }

    /// Sets the alert policy gating which findings the report carries.
    pub fn with_policy(mut self, policy: AlertPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// One annotated drug-drug interaction inside a prescription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairInteraction {
    /// First drug.
    pub a: DrugId,
    /// First drug's name.
    pub a_name: String,
    /// Second drug.
    pub b: DrugId,
    /// Second drug's name.
    pub b_name: String,
    /// The DDI graph's sign for the pair. [`Interaction::None`] marks a
    /// finding that comes from a knowledge-base fact alone — the graph has
    /// no signed edge, but the curated fact still fires.
    pub interaction: Interaction,
    /// Clinical severity grade: the knowledge base's fact when one is
    /// attached to the serving path, otherwise the sign-derived default
    /// ([`Severity::default_for`] — antagonistic edges of unknown severity
    /// grade `Moderate`).
    pub severity: Severity,
    /// The knowledge base's management hint ("monitor INR", "separate
    /// doses"), when it has one for this pair.
    pub management: Option<String>,
}

/// The critique of a prescription: every pairwise interaction among the
/// prescribed drugs that passes the request's [`AlertPolicy`], plus the
/// community explanation and its SS score.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionReport {
    /// The patient the prescription belongs to, when given.
    pub patient: Option<PatientId>,
    /// The prescribed drugs with resolved names (scores are not applicable
    /// and set to the neutral 1.0).
    pub drugs: Vec<ScoredDrug>,
    /// The hazards a doctor must review before signing off: antagonistic
    /// pairs among the prescribed drugs, plus knowledge-base facts for
    /// pairs the DDI graph has no signed edge for (their
    /// [`PairInteraction::interaction`] is [`Interaction::None`]).
    pub antagonistic: Vec<PairInteraction>,
    /// Synergistic pairs among the prescribed drugs.
    pub synergistic: Vec<PairInteraction>,
    /// The community explanation around the prescription.
    pub explanation: Explanation,
    /// The Suggestion Satisfaction score of the prescription.
    pub suggestion_satisfaction: f64,
    /// Version of the knowledge base that graded the findings, when one was
    /// attached (`None` means sign-derived default grades).
    pub kb_version: Option<u64>,
}

impl InteractionReport {
    /// True when no antagonistic pair was found among the prescribed drugs
    /// (under the request's alert policy).
    pub fn is_safe(&self) -> bool {
        self.antagonistic.is_empty()
    }

    /// The most severe grade among the reported findings, when any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.antagonistic
            .iter()
            .chain(&self.synergistic)
            .map(|p| p.severity)
            .max()
    }

    /// True when a reported finding is graded [`Severity::Contraindicated`].
    pub fn has_contraindicated(&self) -> bool {
        self.max_severity() == Some(Severity::Contraindicated)
    }
}

/// Validates and assembles a [`DssddiConfig`] into a [`DecisionService`].
///
/// The builder replaces the ad-hoc `DssddiConfig` struct mutation that every
/// example and test used to do, and rejects inconsistent configurations
/// *before* spending any training time, with messages naming the offending
/// value.
#[derive(Debug, Clone, Default)]
pub struct ServiceBuilder {
    config: DssddiConfig,
    registry: Option<DrugRegistry>,
}

impl ServiceBuilder {
    /// A builder starting from the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder starting from [`DssddiConfig::fast`] — right for examples,
    /// tests and interactive use.
    pub fn fast() -> Self {
        Self {
            config: DssddiConfig::fast(),
            registry: None,
        }
    }

    /// A builder starting from the paper's full training schedule.
    pub fn paper() -> Self {
        Self {
            config: DssddiConfig::paper(),
            registry: None,
        }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: DssddiConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the DDIGCN backbone.
    pub fn backbone(mut self, backbone: Backbone) -> Self {
        self.config.ddi.backbone = backbone;
        self
    }

    /// Sets the hidden dimension shared by the DDI and MD modules.
    pub fn hidden_dim(mut self, dim: usize) -> Self {
        self.config.ddi.hidden_dim = dim;
        self.config.md.hidden_dim = dim;
        self
    }

    /// Sets the training epochs of the DDI and MD modules.
    pub fn epochs(mut self, ddi: usize, md: usize) -> Self {
        self.config.ddi.epochs = ddi;
        self.config.md.epochs = md;
        self
    }

    /// Enables or disables counterfactual augmentation.
    pub fn counterfactual(mut self, enabled: bool) -> Self {
        self.config.md.use_counterfactual = enabled;
        self
    }

    /// Sets the Suggestion Satisfaction balance α (must lie in `[0, 1]`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.ms.alpha = alpha;
        self
    }

    /// Uses a custom drug registry instead of [`DrugRegistry::standard`].
    pub fn registry(mut self, registry: DrugRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The assembled configuration (after validation it is safe to train).
    pub fn peek_config(&self) -> &DssddiConfig {
        &self.config
    }

    /// Checks the assembled configuration, returning a contextual error for
    /// the first inconsistency found.
    pub fn validate(&self) -> Result<(), CoreError> {
        let c = &self.config;
        if c.ddi.hidden_dim == 0 {
            return Err(CoreError::invalid_config("ddi.hidden_dim must be positive"));
        }
        if matches!(c.ddi.backbone, Backbone::Sgcn | Backbone::Sigat)
            && !c.ddi.hidden_dim.is_multiple_of(2)
        {
            return Err(CoreError::invalid_config(format!(
                "ddi.hidden_dim = {} must be even for the {} backbone (its output is a \
                 sign-wise concatenation of two halves)",
                c.ddi.hidden_dim,
                c.ddi.backbone.name()
            )));
        }
        if c.ddi.layers == 0 {
            return Err(CoreError::invalid_config("ddi.layers must be at least 1"));
        }
        if c.ddi.epochs == 0 || c.md.epochs == 0 {
            return Err(CoreError::invalid_config(format!(
                "training epochs must be positive (ddi.epochs = {}, md.epochs = {})",
                c.ddi.epochs, c.md.epochs
            )));
        }
        for (name, lr) in [("ddi", c.ddi.learning_rate), ("md", c.md.learning_rate)] {
            if !(lr.is_finite() && lr > 0.0) {
                return Err(CoreError::invalid_config(format!(
                    "{name}.learning_rate = {lr} must be a positive finite number"
                )));
            }
        }
        if c.md.hidden_dim == 0 {
            return Err(CoreError::invalid_config("md.hidden_dim must be positive"));
        }
        if c.md.propagation_layers == 0 {
            return Err(CoreError::invalid_config(
                "md.propagation_layers must be at least 1",
            ));
        }
        if c.md.n_clusters == 0 {
            return Err(CoreError::invalid_config(
                "md.n_clusters must be positive (the paper uses the number of chronic diseases)",
            ));
        }
        if !(0.0..=1.0).contains(&c.ms.alpha) {
            return Err(CoreError::invalid_config(format!(
                "ms.alpha = {} must lie in [0, 1] (it balances internal synergy against \
                 external antagonism in SS)",
                c.ms.alpha
            )));
        }
        Ok(())
    }

    fn registry_for(&self, ddi_graph: &SignedGraph) -> Result<DrugRegistry, CoreError> {
        let registry = self.registry.clone().unwrap_or_default();
        if registry.len() != ddi_graph.node_count() {
            return Err(CoreError::invalid_input(format!(
                "registry has {} drugs but the DDI graph has {} nodes; the service needs \
                 one registry entry per DDI node to resolve names",
                registry.len(),
                ddi_graph.node_count()
            )));
        }
        Ok(registry)
    }

    /// Builds a *support-only* service around a DDI graph: prescription
    /// critique and explanations work, suggestion requires a fitted model
    /// and returns [`CoreError::NotFitted`]. No training happens.
    pub fn build_support(self, ddi_graph: &SignedGraph) -> Result<DecisionService, CoreError> {
        self.validate()?;
        let registry = self.registry_for(ddi_graph)?;
        Ok(DecisionService::assemble(
            registry,
            ServiceState::SupportOnly {
                ddi: ddi_graph.clone(),
                config: self.config,
            },
        ))
    }

    /// Validates, then fits the full system on explicit training matrices.
    pub fn fit(
        self,
        train_features: &Matrix,
        train_graph: &BipartiteGraph,
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        rng: &mut impl Rng,
    ) -> Result<DecisionService, CoreError> {
        self.validate()?;
        let registry = self.registry_for(ddi_graph)?;
        let engine = Dssddi::fit(
            train_features,
            train_graph,
            drug_features,
            ddi_graph,
            &self.config,
            rng,
        )?;
        Ok(DecisionService::assemble(
            registry,
            ServiceState::Fitted {
                engine: Box::new(engine),
                n_features: train_features.cols(),
            },
        ))
    }

    /// Validates, then fits the full system on the observed subset of a
    /// generated chronic cohort.
    pub fn fit_chronic(
        self,
        cohort: &ChronicCohort,
        observed_patients: &[usize],
        drug_features: &Matrix,
        ddi_graph: &SignedGraph,
        rng: &mut impl Rng,
    ) -> Result<DecisionService, CoreError> {
        self.validate()?;
        let registry = self.registry_for(ddi_graph)?;
        let engine = Dssddi::fit_chronic_inner(
            cohort,
            observed_patients,
            drug_features,
            ddi_graph,
            &self.config,
            rng,
        )?;
        Ok(DecisionService::assemble(
            registry,
            ServiceState::Fitted {
                engine: Box::new(engine),
                n_features: cohort.features().cols(),
            },
        ))
    }
}

/// The doctor-facing decision service: typed suggestion and prescription
/// critique over a fitted DSSDDI system and its drug registry.
pub struct DecisionService {
    registry: DrugRegistry,
    state: ServiceState,
    /// Cross-batch explanation memo. The DDI graph is immutable after fit,
    /// so cached community searches stay valid for the service's lifetime;
    /// the cache itself is size-bounded (LRU) so a long-lived service cannot
    /// grow it without bound. A `Mutex` (rather than `RefCell`) keeps the
    /// serving API `&self` while leaving the service `Sync`, so one fitted
    /// service can sit behind concurrent request handlers.
    explanations: Mutex<ExplanationCache>,
    /// Structural graph + full-graph truss decomposition, computed once at
    /// assembly: every cold explanation starts from these instead of
    /// re-deriving them (the graph is immutable after fit).
    explanation_index: ExplanationIndex,
}

/// What the service was built with. A fitted engine already owns the DDI
/// graph and configuration, so the service stores its own copies only in
/// support-only mode — there is exactly one copy either way.
enum ServiceState {
    /// Trained by one of the builder's `fit*` methods.
    Fitted {
        engine: Box<Dssddi>,
        n_features: usize,
    },
    /// Built by [`ServiceBuilder::build_support`]: critique only.
    SupportOnly {
        ddi: SignedGraph,
        config: DssddiConfig,
    },
}

impl fmt::Debug for DecisionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecisionService")
            .field("drugs", &self.registry.len())
            .field("ddi_edges", &self.ddi_graph().edge_count())
            .field("fitted", &self.engine().is_some())
            .finish_non_exhaustive()
    }
}

impl DecisionService {
    /// Assembles a service around a state, attaching the service-owned
    /// explanation cache.
    fn assemble(registry: DrugRegistry, state: ServiceState) -> Self {
        let explanation_index = ExplanationIndex::build(match &state {
            ServiceState::Fitted { engine, .. } => engine.ddi_graph(),
            ServiceState::SupportOnly { ddi, .. } => ddi,
        });
        Self {
            registry,
            state,
            explanations: Mutex::new(ExplanationCache::new()),
            explanation_index,
        }
    }

    /// Locks the explanation cache, recovering from a poisoned lock: the
    /// cache holds only memoized results, so state left by a panicking
    /// thread is still a valid cache.
    fn lock_explanations(&self) -> std::sync::MutexGuard<'_, ExplanationCache> {
        self.explanations
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Saves the service to a `DSSD` container file: the registry identity,
    /// the configuration and — for fitted services — every trained parameter
    /// set, so the service can be reloaded on a serving host and produce
    /// byte-identical suggestions. See [`dssddi_tensor::serde`] for the
    /// on-disk format (magic bytes, version, CRC-32 checksum).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let payload = self.container_payload();
        tserde::save_container(path, &payload)?;
        Ok(())
    }

    /// Builds the `DSSD` container payload (the bytes inside the frame).
    fn container_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        persist::put_section(&mut w, section::SERVICE);
        // Registry identity: digest plus the DID-ordered names, so a
        // mismatch on load can name the offending drug.
        w.put_u64(self.registry.digest());
        let names = self.registry.names();
        w.put_usize(names.len());
        for name in names {
            w.put_str(name);
        }
        match &self.state {
            ServiceState::Fitted { engine, n_features } => {
                w.put_u8(1);
                w.put_usize(*n_features);
                engine.write_into(&mut w);
            }
            ServiceState::SupportOnly { ddi, config } => {
                w.put_u8(0);
                persist::write_signed_graph(&mut w, ddi);
                persist::write_config(&mut w, config);
            }
        }
        w.into_bytes()
    }

    /// Serializes the service to an in-memory `DSSD` container — the exact
    /// bytes [`DecisionService::save`] would write to disk, sealed with the
    /// same magic, format version and CRC-32 frame. The inverse of
    /// [`DecisionService::load_with_embedded_registry_bytes`]; replication
    /// uses this to ship a live shard's model peer-to-peer without touching
    /// the filesystem.
    pub fn to_container_bytes(&self) -> Vec<u8> {
        let payload = self.container_payload();
        tserde::seal_frame(tserde::MAGIC, tserde::FORMAT_VERSION, &payload)
    }

    /// Loads a service saved by [`DecisionService::save`], reattaching the
    /// caller's [`DrugRegistry`] after verifying it is the registry the
    /// service was persisted with (same drugs, same DIDs) — otherwise the
    /// typed [`DrugId`]s baked into the trained parameters would silently
    /// resolve to different drugs.
    ///
    /// Truncated, corrupt or version-mismatched files produce a typed
    /// [`CoreError::Persistence`]; loading never panics.
    pub fn load(path: impl AsRef<Path>, registry: DrugRegistry) -> Result<Self, CoreError> {
        let payload = tserde::load_container(path)?;
        Self::from_payload(&payload, Some(registry))
    }

    /// Loads a service saved by [`DecisionService::save`], reconstructing
    /// the [`DrugRegistry`] from the DID-ordered name list embedded in the
    /// file instead of requiring the caller to supply one.
    ///
    /// This is what a serving host that only receives `DSSD` files — such as
    /// the `dssddi-serve` gateway — uses: the embedded names identify the
    /// formulary completely (the stored digest is still verified against
    /// them), but the reconstructed registry carries no class or indication
    /// metadata. When the caller *does* hold the original registry, prefer
    /// [`DecisionService::load`], which cross-checks it name by name.
    pub fn load_with_embedded_registry(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let payload = tserde::load_container(path)?;
        Self::from_payload(&payload, None)
    }

    /// [`DecisionService::load_with_embedded_registry`] over an in-memory
    /// `DSSD` container — what a serving gateway uses when a re-trained
    /// model arrives *over the wire* (hot reload) instead of from a file.
    /// The same validation applies: damaged bytes are typed errors.
    pub fn load_with_embedded_registry_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let payload = tserde::open_frame(tserde::MAGIC, tserde::FORMAT_VERSION, bytes)?;
        Self::from_payload(payload, None)
    }

    /// Decodes a service payload. With `Some(registry)` the embedded name
    /// list is verified against the provided registry (same drugs, same
    /// DIDs); with `None` the registry is rebuilt from the embedded names.
    fn from_payload(payload: &[u8], provided: Option<DrugRegistry>) -> Result<Self, CoreError> {
        let mut r = ByteReader::new(payload);
        persist::expect_section(&mut r, section::SERVICE, "service")?;
        let digest = r.take_u64("service.registry_digest")?;
        let n_names = r.take_usize("service.registry_len")?;
        if let Some(registry) = &provided {
            if n_names != registry.len() {
                return Err(CoreError::persistence(format!(
                    "service was persisted with {n_names} drugs but the provided registry has {}",
                    registry.len()
                )));
            }
        }
        // Collected only when reconstructing; every name read is individually
        // bounds-checked, and no allocation is sized from the untrusted
        // n_names count.
        let mut stored_names: Vec<String> = Vec::new();
        for did in 0..n_names {
            let stored = r.take_str("service.registry_name")?;
            match &provided {
                Some(registry) => {
                    let provided_name = registry.name_of(did).unwrap_or("<missing>");
                    if stored != provided_name {
                        return Err(CoreError::persistence(format!(
                            "registry mismatch at DID {did}: service was persisted with \
                             {stored:?} but the provided registry has {provided_name:?}"
                        )));
                    }
                }
                None => stored_names.push(stored),
            }
        }
        let registry = match provided {
            Some(registry) => registry,
            None => DrugRegistry::from_names(stored_names).map_err(|e| {
                CoreError::persistence(format!("embedded registry names are invalid: {e}"))
            })?,
        };
        if digest != registry.digest() {
            return Err(CoreError::persistence(
                "registry digest mismatch: the provided registry is not the one the \
                 service was persisted with",
            ));
        }
        let state = match r.take_u8("service.state_tag")? {
            1 => {
                let n_features = r.take_usize("service.n_features")?;
                let engine = Dssddi::read_from(&mut r)?;
                ServiceState::Fitted {
                    engine: Box::new(engine),
                    n_features,
                }
            }
            0 => {
                let ddi = persist::read_signed_graph(&mut r)?;
                let config = persist::read_config(&mut r)?;
                ServiceState::SupportOnly { ddi, config }
            }
            other => {
                return Err(CoreError::persistence(format!(
                    "unknown service state tag {other}"
                )))
            }
        };
        if !r.is_exhausted() {
            return Err(CoreError::persistence(format!(
                "{} unexpected trailing bytes after the service state",
                r.remaining()
            )));
        }
        let service = Self::assemble(registry, state);
        if service.registry.len() != service.ddi_graph().node_count() {
            return Err(CoreError::persistence(format!(
                "persisted DDI graph has {} nodes but the registry has {} drugs",
                service.ddi_graph().node_count(),
                service.registry.len()
            )));
        }
        Ok(service)
    }

    /// Cumulative `(hits, misses)` of the service-owned explanation cache —
    /// a serving-side observability hook for how often community searches
    /// are being collapsed across batches.
    pub fn explanation_cache_stats(&self) -> (usize, usize) {
        let cache = self.lock_explanations();
        (cache.hits(), cache.misses())
    }

    /// Empties the explanation memo (cumulative hit/miss counters are kept).
    /// Exists so benchmarks — and operators bisecting a latency regression —
    /// can measure the cold path on a warm service.
    pub fn clear_explanation_cache(&self) {
        self.lock_explanations().clear();
    }

    /// Resolves a free-form drug reference (name, `"48"`, `"DID 48"`).
    pub fn resolve_drug(&self, query: &str) -> Result<DrugId, CoreError> {
        self.registry
            .resolve(query)
            .map(DrugId::new)
            .ok_or_else(|| CoreError::unknown_drug(query))
    }

    /// The generic name behind a typed drug identifier.
    pub fn drug_name(&self, id: DrugId) -> Result<&str, CoreError> {
        self.registry
            .name_of(id.index())
            .ok_or_else(|| CoreError::unknown_drug(id.to_string()))
    }

    /// The drug registry backing name resolution.
    pub fn registry(&self) -> &DrugRegistry {
        &self.registry
    }

    /// The signed DDI graph the service critiques prescriptions against.
    pub fn ddi_graph(&self) -> &SignedGraph {
        match &self.state {
            ServiceState::Fitted { engine, .. } => engine.ddi_graph(),
            ServiceState::SupportOnly { ddi, .. } => ddi,
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &DssddiConfig {
        match &self.state {
            ServiceState::Fitted { engine, .. } => engine.config(),
            ServiceState::SupportOnly { config, .. } => config,
        }
    }

    /// The underlying fitted system, when the service was built by training
    /// (absent for [`ServiceBuilder::build_support`] services).
    pub fn engine(&self) -> Option<&Dssddi> {
        match &self.state {
            ServiceState::Fitted { engine, .. } => Some(engine.as_ref()),
            ServiceState::SupportOnly { .. } => None,
        }
    }

    /// True when the service carries a trained model (suggestion works);
    /// false for support-only services (critique only).
    pub fn is_fitted(&self) -> bool {
        matches!(&self.state, ServiceState::Fitted { .. })
    }

    /// Length of the patient feature vectors the trained model expects, or
    /// `None` for support-only services. Serving gateways surface this in
    /// their model listings so remote callers can size requests without
    /// holding the training data.
    pub fn n_features(&self) -> Option<usize> {
        match &self.state {
            ServiceState::Fitted { n_features, .. } => Some(*n_features),
            ServiceState::SupportOnly { .. } => None,
        }
    }

    fn fitted(&self, operation: &str) -> Result<(&Dssddi, usize), CoreError> {
        match &self.state {
            ServiceState::Fitted { engine, n_features } => Ok((engine.as_ref(), *n_features)),
            ServiceState::SupportOnly { .. } => Err(CoreError::not_fitted(operation)),
        }
    }

    /// Raw medication-use scores (one row per patient, one column per drug)
    /// for externally assembled feature matrices.
    pub fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        self.fitted("predict_scores")?.0.predict_scores(features)
    }

    /// Checks that an attached knowledge base grades this service's
    /// formulary before any of its grades are trusted.
    fn validate_kb(&self, kb: Option<&KnowledgeBase>) -> Result<(), CoreError> {
        if let Some(kb) = kb {
            if kb.n_drugs() != self.registry.len() || kb.registry_digest() != self.registry.digest()
            {
                return Err(CoreError::invalid_input(format!(
                    "knowledge base grades a {}-drug formulary (digest {:#018x}) but the \
                     service holds {} drugs (digest {:#018x})",
                    kb.n_drugs(),
                    kb.registry_digest(),
                    self.registry.len(),
                    self.registry.digest()
                )));
            }
        }
        Ok(())
    }

    /// Serves one suggestion request.
    pub fn suggest(&self, request: &SuggestRequest) -> Result<SuggestResponse, CoreError> {
        self.suggest_with_kb(request, None)
    }

    /// [`DecisionService::suggest`] with a clinical knowledge base grading
    /// the `exclude_contraindicated_with` filter.
    pub fn suggest_with_kb(
        &self,
        request: &SuggestRequest,
        kb: Option<&KnowledgeBase>,
    ) -> Result<SuggestResponse, CoreError> {
        self.suggest_batch_with_kb(std::slice::from_ref(request), kb)?
            .pop()
            .ok_or_else(|| CoreError::invalid_input("suggest_batch returned no response"))
    }

    /// Serves a batch of suggestion requests.
    ///
    /// Score prediction is amortised: each worker stacks its patients'
    /// feature vectors into one matrix and pushes them through the
    /// tape-free inference path in a single pass, and explanations are
    /// memoized per distinct suggested drug set in the service-owned,
    /// size-bounded cache — with homogeneous cohorts most patients share a
    /// handful of communities, and because the DDI graph is immutable after
    /// fit the memo keeps paying off across batches, not just within one.
    ///
    /// Large batches are sharded across scoped worker threads (the service
    /// is `Sync`; the explanation memo stays shared behind its lock). The
    /// shard count is picked from the machine's parallelism; use
    /// [`DecisionService::suggest_batch_sharded`] to control it explicitly.
    /// Responses always come back in request order with scores identical to
    /// the serial path — patients are scored independently, so sharding
    /// cannot change any result.
    pub fn suggest_batch(
        &self,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, CoreError> {
        self.suggest_batch_with_kb(requests, None)
    }

    /// [`DecisionService::suggest_batch`] with a clinical knowledge base:
    /// candidates whose interaction with a drug named in
    /// [`SuggestFilters::exclude_contraindicated_with`] is graded
    /// [`Severity::Contraindicated`] are excluded from the ranking.
    pub fn suggest_batch_with_kb(
        &self,
        requests: &[SuggestRequest],
        kb: Option<&KnowledgeBase>,
    ) -> Result<Vec<SuggestResponse>, CoreError> {
        // Floor division: a worker is only worth spawning once it has a
        // full MIN_REQUESTS_PER_SHARD of work; the tail rides with the
        // last full shard instead of paying a thread spawn of its own.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min((requests.len() / MIN_REQUESTS_PER_SHARD).max(1));
        self.suggest_batch_sharded_with_kb(requests, workers, kb)
    }

    /// [`DecisionService::suggest_batch`] with an explicit shard count:
    /// requests are split into `shards` contiguous chunks served by scoped
    /// worker threads (`shards` is clamped to `1..=requests.len()`; `1`
    /// serves the whole batch on the calling thread).
    pub fn suggest_batch_sharded(
        &self,
        requests: &[SuggestRequest],
        shards: usize,
    ) -> Result<Vec<SuggestResponse>, CoreError> {
        self.suggest_batch_sharded_with_kb(requests, shards, None)
    }

    /// [`DecisionService::suggest_batch_sharded`] with a clinical knowledge
    /// base grading the `exclude_contraindicated_with` filter.
    pub fn suggest_batch_sharded_with_kb(
        &self,
        requests: &[SuggestRequest],
        shards: usize,
        kb: Option<&KnowledgeBase>,
    ) -> Result<Vec<SuggestResponse>, CoreError> {
        // An empty batch is an empty answer — before any model check or
        // shard arithmetic, so no worker thread is ever spawned for it and
        // pollers draining an empty queue don't error on support-only
        // services.
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.validate_kb(kb)?;
        let (engine, n_features) = self.fitted("suggest_batch")?;
        let n_drugs = self.ddi_graph().node_count();
        for (i, request) in requests.iter().enumerate() {
            if request.features.len() != n_features {
                return Err(CoreError::invalid_input(format!(
                    "request {i} ({}) carries {} features but the model was trained on {}",
                    request.patient,
                    request.features.len(),
                    n_features
                )));
            }
            if request.k == 0 {
                return Err(CoreError::invalid_input(format!(
                    "request {i} ({}) asks for k = 0 suggestions",
                    request.patient
                )));
            }
            for id in request
                .filters
                .exclude
                .iter()
                .chain(&request.filters.avoid_antagonists_of)
                .chain(&request.filters.exclude_contraindicated_with)
            {
                if id.index() >= n_drugs {
                    return Err(CoreError::unknown_drug(id.to_string()));
                }
            }
        }

        let shards = shards.clamp(1, requests.len());
        if shards == 1 {
            return self.serve_chunk(engine, n_features, requests, kb);
        }
        let chunk_len = Self::shard_chunk_len(requests.len(), shards);
        let results: Vec<Result<Vec<SuggestResponse>, CoreError>> = std::thread::scope(|s| {
            let handles: Vec<_> = requests
                .chunks(chunk_len)
                .map(|chunk| s.spawn(move || self.serve_chunk(engine, n_features, chunk, kb)))
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(result) => result,
                    // A worker panic is a bug, not routine input: surface it
                    // unchanged instead of laundering it into a CoreError.
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut responses = Vec::with_capacity(requests.len());
        for result in results {
            responses.extend(result?);
        }
        Ok(responses)
    }

    /// Chunk length that spreads `n_requests` over at most `shards` workers
    /// with no idle worker: the caller clamps `shards` to the batch size, and
    /// ceiling division guarantees `div_ceil(n_requests, chunk_len)` — the
    /// number of threads actually spawned — never exceeds either bound, so a
    /// shard count larger than the batch cannot create workers with nothing
    /// to serve.
    fn shard_chunk_len(n_requests: usize, shards: usize) -> usize {
        n_requests.div_ceil(shards.clamp(1, n_requests.max(1)))
    }

    /// Serves one contiguous chunk of validated requests: a single
    /// prediction pass for the chunk, then ranking and (locked, memoized)
    /// explanation lookup per request.
    fn serve_chunk(
        &self,
        engine: &Dssddi,
        n_features: usize,
        chunk: &[SuggestRequest],
        kb: Option<&KnowledgeBase>,
    ) -> Result<Vec<SuggestResponse>, CoreError> {
        let stacked: Vec<f32> = chunk
            .iter()
            .flat_map(|r| r.features.iter().copied())
            .collect();
        let features = Matrix::from_vec(chunk.len(), n_features, stacked)?;
        let scores = engine.predict_scores(&features)?;
        let mut responses = Vec::with_capacity(chunk.len());
        for (row, request) in chunk.iter().enumerate() {
            let ranked = self.ranked_candidates(scores.row(row), request, kb)?;
            let suggested: Vec<usize> = ranked.iter().map(|d| d.id.index()).collect();
            // The lock is held only for the memo lookup/insert, never for
            // the community search itself — cold explanations are the most
            // expensive part of serving and must overlap across shards. Two
            // shards may race on the same drug set and search it twice; the
            // search is deterministic, so either insert wins harmlessly.
            // (The lookup is bound to a variable so its guard drops before
            // the miss path re-locks to insert.)
            let cached = self.lock_explanations().lookup(&suggested);
            let explanation = match cached {
                Some(hit) => hit,
                None => {
                    let key = ExplanationCache::canonical_key(&suggested);
                    let computed = self.explanation_index.explain(
                        self.ddi_graph(),
                        &key,
                        &self.config().ms,
                    )?;
                    self.lock_explanations().insert(&key, computed.clone());
                    computed
                }
            };
            let suggestion_satisfaction = explanation.suggestion_satisfaction;
            responses.push(SuggestResponse {
                patient: request.patient,
                drugs: ranked,
                explanation,
                suggestion_satisfaction,
            });
        }
        Ok(responses)
    }

    /// Ranks one patient's scores under the request's filters.
    fn ranked_candidates(
        &self,
        scores: &[f32],
        request: &SuggestRequest,
        kb: Option<&KnowledgeBase>,
    ) -> Result<Vec<ScoredDrug>, CoreError> {
        let filters_active = !request.filters.exclude.is_empty()
            || !request.filters.avoid_antagonists_of.is_empty()
            || !request.filters.exclude_contraindicated_with.is_empty();
        let mut order: Vec<usize> = (0..scores.len())
            .filter(|&d| !request.filters.rejects(d, self.ddi_graph(), kb))
            .collect();
        if order.len() < request.k {
            return Err(CoreError::invalid_input(if filters_active {
                format!(
                    "filters for {} leave only {} candidate drugs but k = {}",
                    request.patient,
                    order.len(),
                    request.k
                )
            } else {
                format!(
                    "k = {} exceeds the {} drugs in the formulary (request for {})",
                    request.k,
                    order.len(),
                    request.patient
                )
            }));
        }
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(request.k);
        order
            .into_iter()
            .map(|d| {
                Ok(ScoredDrug {
                    id: DrugId::new(d),
                    name: self.drug_name(DrugId::new(d))?.to_string(),
                    score: scores[d],
                })
            })
            .collect()
    }

    /// Critiques an existing prescription against the signed DDI graph:
    /// classifies every pairwise interaction and attaches the community
    /// explanation with its Suggestion Satisfaction score.
    ///
    /// Works on every service, including support-only ones — no fitted
    /// model is needed to check a prescription. Without a knowledge base,
    /// findings carry sign-derived default grades
    /// ([`Severity::default_for`]); attach one with
    /// [`DecisionService::check_prescription_with_kb`] for clinical grades
    /// and management hints.
    pub fn check_prescription(
        &self,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, CoreError> {
        self.check_prescription_with_kb(request, None)
    }

    /// [`DecisionService::check_prescription`] with a clinical knowledge
    /// base: every finding is graded by the KB's severity facts (pairs the
    /// KB has no fact for fall back to the sign default), carries the KB's
    /// management hint, and the request's [`AlertPolicy`] filters findings
    /// *at the source* — a `Major`-and-up policy never materialises the
    /// `Minor` chatter it would suppress.
    pub fn check_prescription_with_kb(
        &self,
        request: &CheckPrescriptionRequest,
        kb: Option<&KnowledgeBase>,
    ) -> Result<InteractionReport, CoreError> {
        self.validate_kb(kb)?;
        if request.drugs.is_empty() {
            return Err(CoreError::invalid_input(
                "cannot check an empty prescription",
            ));
        }
        let n_drugs = self.ddi_graph().node_count();
        for id in &request.drugs {
            if id.index() >= n_drugs {
                return Err(CoreError::unknown_drug(id.to_string()));
            }
        }
        // A prescription is a drug *set*: deduplicate (keeping first-seen
        // order) so a repeated drug cannot double-report its interactions.
        let mut drugs: Vec<ScoredDrug> = Vec::with_capacity(request.drugs.len());
        for &id in &request.drugs {
            if drugs.iter().any(|d| d.id == id) {
                continue;
            }
            drugs.push(ScoredDrug {
                id,
                name: self.drug_name(id)?.to_string(),
                score: 1.0,
            });
        }
        let mut antagonistic = Vec::new();
        let mut synergistic = Vec::new();
        for (i, a) in drugs.iter().enumerate() {
            for b in &drugs[i + 1..] {
                let graph_sign = self.ddi_graph().interaction(a.id.index(), b.id.index());
                let signed = graph_sign.filter(|&sign| sign != Interaction::None);
                let fact = kb.and_then(|kb| kb.lookup(a.id.index(), b.id.index()));
                let (interaction, severity, management) = match (signed, fact) {
                    (Some(sign), Some(fact)) => (
                        sign,
                        fact.severity,
                        fact.management_hint().map(str::to_string),
                    ),
                    (Some(sign), None) => (sign, Severity::default_for(sign), None),
                    // The knowledge base knows a hazard the graph has no
                    // signed edge for — a curated fact outranks an absent
                    // (or explicitly "no interaction") edge, so it must
                    // still fire. The pair keeps the graph's (non-)sign.
                    (None, Some(fact)) => (
                        graph_sign.unwrap_or(Interaction::None),
                        fact.severity,
                        fact.management_hint().map(str::to_string),
                    ),
                    // Neither the graph nor the KB knows the pair, or the
                    // graph explicitly recorded no interaction: nothing
                    // worth surfacing to the doctor.
                    (None, None) => continue,
                };
                if !request.policy.reports(severity) {
                    continue;
                }
                let pair = PairInteraction {
                    a: a.id,
                    a_name: a.name.clone(),
                    b: b.id,
                    b_name: b.name.clone(),
                    interaction,
                    severity,
                    management,
                };
                match interaction {
                    Interaction::Synergistic => synergistic.push(pair),
                    // KB-only facts (graph sign None) are hazards to
                    // review: they join the antagonistic list.
                    Interaction::Antagonistic | Interaction::None => antagonistic.push(pair),
                }
            }
        }
        let indices: Vec<usize> = drugs.iter().map(|d| d.id.index()).collect();
        let explanation =
            self.explanation_index
                .explain(self.ddi_graph(), &indices, &self.config().ms)?;
        let suggestion_satisfaction = explanation.suggestion_satisfaction;
        Ok(InteractionReport {
            patient: request.patient,
            drugs,
            antagonistic,
            synergistic,
            explanation,
            suggestion_satisfaction,
            kb_version: kb.map(KnowledgeBase::version),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use dssddi_data::{
        generate_chronic_cohort, generate_ddi_graph, ChronicConfig, DdiConfig, DrugRegistry,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted_service(seed: u64) -> (DecisionService, ChronicCohort, Vec<usize>) {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients: 70,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let drug_features = Matrix::rand_uniform(registry.len(), 16, -0.1, 0.1, &mut rng);
        let observed: Vec<usize> = (0..55).collect();
        let held_out: Vec<usize> = (55..70).collect();
        let service = ServiceBuilder::fast()
            .hidden_dim(16)
            .epochs(25, 30)
            .fit_chronic(&cohort, &observed, &drug_features, &ddi, &mut rng)
            .unwrap();
        (service, cohort, held_out)
    }

    fn support_service(seed: u64) -> DecisionService {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        ServiceBuilder::fast().build_support(&ddi).unwrap()
    }

    #[test]
    fn decision_service_is_send_and_sync() {
        // The sharded serving front-end shares one fitted service across
        // request-handler threads; losing these bounds is a regression.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecisionService>();
    }

    #[test]
    fn typed_ids_display_and_round_trip() {
        assert_eq!(DrugId::new(48).to_string(), "DID 48");
        assert_eq!(PatientId::new(3).to_string(), "patient #3");
        assert_eq!(DrugId::from(7).index(), 7);
        assert_eq!(PatientId::from(9).index(), 9);
    }

    #[test]
    fn builder_rejects_odd_hidden_dim_for_sign_concatenating_backbones() {
        let err = ServiceBuilder::fast()
            .backbone(Backbone::Sgcn)
            .hidden_dim(15)
            .validate();
        match err {
            Err(CoreError::InvalidConfig { what }) => {
                assert!(
                    what.contains("15") && what.contains("SGCN"),
                    "uncontextual: {what}"
                )
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // GIN has no sign-wise concatenation, so odd dims are fine.
        ServiceBuilder::fast()
            .backbone(Backbone::Gin)
            .hidden_dim(15)
            .validate()
            .unwrap();
    }

    #[test]
    fn builder_rejects_degenerate_values_with_context() {
        assert!(matches!(
            ServiceBuilder::fast().epochs(0, 10).validate(),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ServiceBuilder::fast().alpha(1.5).validate(),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut config = DssddiConfig::fast();
        config.md.learning_rate = -0.5;
        match ServiceBuilder::new().config(config).validate() {
            Err(CoreError::InvalidConfig { what }) => {
                assert!(
                    what.contains("-0.5"),
                    "message should name the value: {what}"
                )
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_registry_ddi_size_mismatch() {
        let mut rng = StdRng::seed_from_u64(1);
        let registry = DrugRegistry::standard();
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let small = SignedGraph::new(5);
        assert!(matches!(
            ServiceBuilder::fast().build_support(&small),
            Err(CoreError::InvalidInput { .. })
        ));
        ServiceBuilder::fast().build_support(&ddi).unwrap();
    }

    #[test]
    fn support_service_checks_prescriptions_but_cannot_suggest() {
        let service = support_service(2);
        let report = service
            .check_prescription(&CheckPrescriptionRequest::new(vec![
                DrugId::new(61),
                DrugId::new(59),
            ]))
            .unwrap();
        // Gabapentin (61) + Isosorbide Mononitrate (59) is the paper's
        // Fig. 8 antagonistic pair; the generator always includes it.
        assert!(!report.is_safe());
        assert_eq!(report.antagonistic.len(), 1);
        assert_eq!(report.antagonistic[0].a_name, "Gabapentin");
        assert_eq!(report.antagonistic[0].b_name, "Isosorbide Mononitrate");

        let request = SuggestRequest::new(PatientId::new(0), vec![0.0; 71], 3);
        assert!(matches!(
            service.suggest(&request),
            Err(CoreError::NotFitted { .. })
        ));
    }

    #[test]
    fn resolve_drug_reports_unknown_queries() {
        let service = support_service(3);
        assert_eq!(service.resolve_drug("Metformin").unwrap(), DrugId::new(48));
        assert_eq!(service.resolve_drug("DID 48").unwrap(), DrugId::new(48));
        match service.resolve_drug("Unobtainium") {
            Err(CoreError::UnknownDrug { query }) => assert_eq!(query, "Unobtainium"),
            other => panic!("expected UnknownDrug, got {other:?}"),
        }
        assert!(service.drug_name(DrugId::new(999)).is_err());
    }

    #[test]
    fn suggest_batch_returns_named_ranked_drugs_with_explanations() {
        let (service, cohort, held_out) = fitted_service(5);
        let requests: Vec<SuggestRequest> = held_out
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        let responses = service.suggest_batch(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(response.patient, request.patient);
            assert_eq!(response.drugs.len(), 3);
            for pair in response.drugs.windows(2) {
                assert!(pair[0].score >= pair[1].score, "ranking must be descending");
            }
            for drug in &response.drugs {
                assert_eq!(
                    drug.name,
                    service.registry().name_of(drug.id.index()).unwrap(),
                    "names must come from the registry"
                );
                assert!(response.explanation.community.contains(drug.id.index()));
            }
            assert!(response.suggestion_satisfaction >= 0.0);
        }
    }

    #[test]
    fn filters_exclude_and_avoid_antagonists() {
        let (service, cohort, held_out) = fitted_service(7);
        let patient = held_out[0];
        let features = cohort.features().row(patient).to_vec();

        let baseline = service
            .suggest(&SuggestRequest::new(
                PatientId::new(patient),
                features.clone(),
                4,
            ))
            .unwrap();
        let top: Vec<DrugId> = baseline.drugs.iter().map(|d| d.id).collect();

        // Excluding the top drug must remove it from the new suggestion.
        let filtered = service
            .suggest(
                &SuggestRequest::new(PatientId::new(patient), features.clone(), 4).with_filters(
                    SuggestFilters {
                        exclude: vec![top[0]],
                        ..Default::default()
                    },
                ),
            )
            .unwrap();
        assert!(filtered.drugs.iter().all(|d| d.id != top[0]));

        // Avoiding antagonists of a drug removes all its antagonists.
        let taken = DrugId::new(59); // Isosorbide Mononitrate
        let safe = service
            .suggest(
                &SuggestRequest::new(PatientId::new(patient), features, 4).with_filters(
                    SuggestFilters {
                        avoid_antagonists_of: vec![taken],
                        ..Default::default()
                    },
                ),
            )
            .unwrap();
        for drug in &safe.drugs {
            assert_ne!(
                service
                    .ddi_graph()
                    .interaction(taken.index(), drug.id.index()),
                Some(Interaction::Antagonistic),
                "{} is antagonistic with the drug the patient already takes",
                drug.name
            );
        }
    }

    #[test]
    fn over_constrained_filters_error_contextually() {
        let (service, cohort, held_out) = fitted_service(9);
        let patient = held_out[0];
        let exclude: Vec<DrugId> = (0..service.registry().len()).map(DrugId::new).collect();
        let request = SuggestRequest::new(
            PatientId::new(patient),
            cohort.features().row(patient).to_vec(),
            2,
        )
        .with_filters(SuggestFilters {
            exclude,
            ..Default::default()
        });
        match service.suggest(&request) {
            Err(CoreError::InvalidInput { what }) => {
                assert!(what.contains("k = 2"), "message lacks context: {what}")
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn wrong_feature_length_is_rejected_with_patient_context() {
        let (service, _, _) = fitted_service(11);
        let request = SuggestRequest::new(PatientId::new(42), vec![0.0; 3], 2);
        match service.suggest(&request) {
            Err(CoreError::InvalidInput { what }) => {
                assert!(
                    what.contains("patient #42") && what.contains("3"),
                    "got: {what}"
                )
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn explanation_cache_is_shared_across_batches() {
        let (service, cohort, held_out) = fitted_service(19);
        let requests: Vec<SuggestRequest> = held_out[..6]
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        let first = service.suggest_batch(&requests).unwrap();
        let (h1, m1) = service.explanation_cache_stats();
        assert!(
            m1 >= 1,
            "first batch must run at least one community search"
        );
        // Serving the same batch again answers every explanation from the
        // service-owned cache: zero new community searches.
        let second = service.suggest_batch(&requests).unwrap();
        let (h2, m2) = service.explanation_cache_stats();
        assert_eq!(m2, m1, "second batch must not search again");
        assert_eq!(h2, h1 + requests.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.suggestion_satisfaction, b.suggestion_satisfaction);
        }
    }

    #[test]
    fn batch_amortisation_matches_single_requests() {
        let (service, cohort, held_out) = fitted_service(13);
        let requests: Vec<SuggestRequest> = held_out[..4]
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        let batched = service.suggest_batch(&requests).unwrap();
        for (request, batch_response) in requests.iter().zip(&batched) {
            let single = service.suggest(request).unwrap();
            let batch_ids: Vec<DrugId> = batch_response.drugs.iter().map(|d| d.id).collect();
            let single_ids: Vec<DrugId> = single.drugs.iter().map(|d| d.id).collect();
            assert_eq!(batch_ids, single_ids);
        }
    }

    #[test]
    fn sharded_batches_preserve_request_order_and_scores() {
        let (service, cohort, held_out) = fitted_service(23);
        let requests: Vec<SuggestRequest> = held_out
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        let serial = service.suggest_batch_sharded(&requests, 1).unwrap();
        for shards in [2, 4, requests.len(), requests.len() + 10] {
            service.clear_explanation_cache();
            let parallel = service.suggest_batch_sharded(&requests, shards).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (request, (a, b)) in requests.iter().zip(serial.iter().zip(&parallel)) {
                assert_eq!(
                    a.patient, request.patient,
                    "responses must stay in request order"
                );
                assert_eq!(b.patient, request.patient);
                let serial_scored: Vec<(DrugId, u32)> =
                    a.drugs.iter().map(|d| (d.id, d.score.to_bits())).collect();
                let parallel_scored: Vec<(DrugId, u32)> =
                    b.drugs.iter().map(|d| (d.id, d.score.to_bits())).collect();
                assert_eq!(
                    serial_scored, parallel_scored,
                    "sharding must not change any score or ranking"
                );
                assert_eq!(a.suggestion_satisfaction, b.suggestion_satisfaction);
            }
        }
    }

    #[test]
    fn empty_batch_returns_empty_without_workers_or_model() {
        // Fitted: empty in, empty out, regardless of the shard request.
        let (service, _, _) = fitted_service(31);
        assert_eq!(service.suggest_batch(&[]).unwrap(), vec![]);
        assert_eq!(service.suggest_batch_sharded(&[], 0).unwrap(), vec![]);
        assert_eq!(service.suggest_batch_sharded(&[], 1000).unwrap(), vec![]);
        // Support-only: an empty batch needs no model, so it must not be a
        // NotFitted error — a poller draining an empty queue is routine.
        let support = support_service(31);
        assert_eq!(support.suggest_batch(&[]).unwrap(), vec![]);
    }

    #[test]
    fn oversized_shard_counts_never_plan_idle_workers() {
        for n_requests in [1usize, 2, 5, 8, 64, 100] {
            for shards in [
                0usize,
                1,
                2,
                7,
                n_requests,
                n_requests + 1,
                10 * n_requests + 3,
            ] {
                let chunk_len = DecisionService::shard_chunk_len(n_requests, shards);
                assert!(chunk_len >= 1);
                let workers = n_requests.div_ceil(chunk_len);
                assert!(
                    workers <= n_requests,
                    "{workers} workers planned for {n_requests} requests (shards = {shards})"
                );
                assert!(
                    workers <= shards.max(1),
                    "{workers} workers exceed the {shards} requested shards"
                );
                // Every worker owns at least one request: the last chunk is
                // the only short one and it is never empty.
                assert!((workers - 1) * chunk_len < n_requests);
            }
        }
    }

    #[test]
    fn shard_counts_beyond_the_batch_still_serve_correctly() {
        let (service, cohort, held_out) = fitted_service(37);
        let requests: Vec<SuggestRequest> = held_out[..3]
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        let serial = service.suggest_batch_sharded(&requests, 1).unwrap();
        let oversharded = service.suggest_batch_sharded(&requests, 500).unwrap();
        assert_eq!(serial, oversharded);
    }

    #[test]
    fn clear_explanation_cache_forces_cold_searches() {
        let (service, cohort, held_out) = fitted_service(29);
        let requests: Vec<SuggestRequest> = held_out[..4]
            .iter()
            .map(|&p| SuggestRequest::new(PatientId::new(p), cohort.features().row(p).to_vec(), 3))
            .collect();
        service.suggest_batch(&requests).unwrap();
        let (_, m1) = service.explanation_cache_stats();
        service.clear_explanation_cache();
        service.suggest_batch(&requests).unwrap();
        let (_, m2) = service.explanation_cache_stats();
        assert!(m2 > m1, "clearing the cache must force fresh searches");
    }

    #[test]
    fn check_prescription_grades_with_kb_and_filters_by_policy() {
        use dssddi_kb::{EvidenceLevel, KbFact};
        let service = support_service(41);
        let mut kb =
            KnowledgeBase::from_ddi_graph(service.ddi_graph(), service.registry()).unwrap();
        // Upgrade the Fig. 8 pair to a contraindication with a hint.
        kb.upsert(
            61,
            59,
            KbFact {
                severity: Severity::Contraindicated,
                evidence: EvidenceLevel::Established,
                mechanism: "nitrate potentiation".to_string(),
                management: "do not combine".to_string(),
            },
        )
        .unwrap();
        let drugs = vec![
            DrugId::new(61),
            DrugId::new(59),
            DrugId::new(10),
            DrugId::new(5),
        ];

        // Default policy: everything reported, graded by the KB.
        let full = service
            .check_prescription_with_kb(&CheckPrescriptionRequest::new(drugs.clone()), Some(&kb))
            .unwrap();
        assert_eq!(full.kb_version, Some(kb.version()));
        assert!(full.has_contraindicated());
        assert_eq!(full.max_severity(), Some(Severity::Contraindicated));
        let hard_stop = full
            .antagonistic
            .iter()
            .find(|p| p.severity == Severity::Contraindicated)
            .expect("the upgraded pair is reported");
        assert_eq!(hard_stop.management.as_deref(), Some("do not combine"));
        // Graph-seeded facts grade by sign and carry no hint.
        for pair in &full.synergistic {
            assert_eq!(pair.severity, Severity::Minor);
            assert_eq!(pair.management, None);
        }

        // A Major-and-up policy filters the routine findings at the source
        // but the contraindication still fires.
        let gated = service
            .check_prescription_with_kb(
                &CheckPrescriptionRequest::new(drugs.clone())
                    .with_policy(AlertPolicy::at_least(Severity::Major)),
                Some(&kb),
            )
            .unwrap();
        assert_eq!(gated.antagonistic.len(), 1);
        assert_eq!(gated.antagonistic[0].severity, Severity::Contraindicated);
        assert!(gated.synergistic.is_empty(), "Minor synergies are muted");
        // The explanation is computed over the full drug set either way.
        assert_eq!(gated.explanation, full.explanation);

        // Without a KB, grades fall back to the sign defaults and no KB
        // version is recorded.
        let ungraded = service
            .check_prescription(&CheckPrescriptionRequest::new(drugs))
            .unwrap();
        assert_eq!(ungraded.kb_version, None);
        for pair in &ungraded.antagonistic {
            assert_eq!(pair.severity, Severity::Moderate);
        }
    }

    #[test]
    fn kb_facts_without_graph_edges_still_fire() {
        use dssddi_kb::{EvidenceLevel, KbFact};
        let service = support_service(53);
        // Find a drug pair the DDI graph records nothing about.
        let n = service.registry().len();
        let (a, b) = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| service.ddi_graph().interaction(a, b).is_none())
            .expect("the paper graph is sparse; an unrecorded pair exists");
        let mut kb =
            KnowledgeBase::from_ddi_graph(service.ddi_graph(), service.registry()).unwrap();
        kb.upsert(
            a,
            b,
            KbFact {
                severity: Severity::Contraindicated,
                evidence: EvidenceLevel::Established,
                mechanism: "post-marketing signal".to_string(),
                management: "do not combine".to_string(),
            },
        )
        .unwrap();
        // Without the KB the pair is invisible; with it, the curated hard
        // stop fires even though the graph has no edge.
        let request = CheckPrescriptionRequest::new(vec![DrugId::new(a), DrugId::new(b)]);
        let ungraded = service.check_prescription(&request).unwrap();
        assert!(ungraded.is_safe());
        let graded = service
            .check_prescription_with_kb(&request, Some(&kb))
            .unwrap();
        assert!(!graded.is_safe());
        assert!(graded.has_contraindicated());
        assert_eq!(graded.antagonistic.len(), 1);
        assert_eq!(
            graded.antagonistic[0].interaction,
            Interaction::None,
            "a KB-only finding keeps the graph's (non-)sign"
        );
        assert_eq!(
            graded.antagonistic[0].management.as_deref(),
            Some("do not combine")
        );
        // The suggest-side contraindication filter holds on the KB fact
        // alone too: candidate `b` is dropped when the patient takes `a`.
        let (fitted, cohort, held_out) = fitted_service(53);
        let patient = held_out[0];
        let features = cohort.features().row(patient).to_vec();
        let filters = SuggestFilters {
            exclude_contraindicated_with: vec![DrugId::new(a)],
            ..Default::default()
        };
        let mut fitted_kb =
            KnowledgeBase::from_ddi_graph(fitted.ddi_graph(), fitted.registry()).unwrap();
        fitted_kb
            .upsert(
                a,
                b,
                KbFact {
                    severity: Severity::Contraindicated,
                    evidence: EvidenceLevel::Established,
                    mechanism: String::new(),
                    management: String::new(),
                },
            )
            .unwrap();
        let safe = fitted
            .suggest_with_kb(
                &SuggestRequest::new(PatientId::new(patient), features, n - 1)
                    .with_filters(filters),
                Some(&fitted_kb),
            )
            .unwrap();
        assert!(safe.drugs.iter().all(|d| d.id.index() != b));
    }

    #[test]
    fn kb_over_a_foreign_formulary_is_rejected() {
        let service = support_service(43);
        let foreign = DrugRegistry::from_names(vec!["A".to_string(), "B".to_string()]).unwrap();
        let kb = KnowledgeBase::new(&foreign);
        assert!(matches!(
            service.check_prescription_with_kb(
                &CheckPrescriptionRequest::new(vec![DrugId::new(1)]),
                Some(&kb),
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        let (fitted, cohort, held_out) = fitted_service(43);
        let request = SuggestRequest::new(
            PatientId::new(held_out[0]),
            cohort.features().row(held_out[0]).to_vec(),
            3,
        );
        assert!(matches!(
            fitted.suggest_with_kb(&request, Some(&kb)),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn contraindicated_candidates_are_excluded_from_suggestions() {
        use dssddi_kb::{EvidenceLevel, KbFact};
        let (service, cohort, held_out) = fitted_service(47);
        // Take a real antagonistic edge and upgrade it to a contraindication.
        let (taken, candidate) = service.ddi_graph().edges_of(Interaction::Antagonistic)[0];
        let mut kb =
            KnowledgeBase::from_ddi_graph(service.ddi_graph(), service.registry()).unwrap();
        kb.upsert(
            taken,
            candidate,
            KbFact {
                severity: Severity::Contraindicated,
                evidence: EvidenceLevel::Established,
                mechanism: String::new(),
                management: "never together".to_string(),
            },
        )
        .unwrap();
        let patient = held_out[0];
        let features = cohort.features().row(patient).to_vec();
        let n = service.registry().len();

        // Unfiltered, every drug is rankable (k = n succeeds).
        let all = service
            .suggest(&SuggestRequest::new(
                PatientId::new(patient),
                features.clone(),
                n,
            ))
            .unwrap();
        assert!(all.drugs.iter().any(|d| d.id.index() == candidate));

        let filters = SuggestFilters {
            exclude_contraindicated_with: vec![DrugId::new(taken)],
            ..Default::default()
        };
        // With the KB, the contraindicated candidate is gone.
        let safe = service
            .suggest_with_kb(
                &SuggestRequest::new(PatientId::new(patient), features.clone(), n - 1)
                    .with_filters(filters.clone()),
                Some(&kb),
            )
            .unwrap();
        assert!(safe.drugs.iter().all(|d| d.id.index() != candidate));
        // Without a KB no grade can reach Contraindicated: the same filter
        // passes everything and the candidate ranks again.
        let ungraded = service
            .suggest(
                &SuggestRequest::new(PatientId::new(patient), features, n - 1)
                    .with_filters(filters),
            )
            .unwrap();
        assert!(ungraded.drugs.iter().any(|d| d.id.index() == candidate));
    }

    #[test]
    fn check_prescription_classifies_paper_pairs() {
        let service = support_service(17);
        // Fig. 9 case 1: Indapamide (10) + Perindopril (5) is synergistic.
        let report = service
            .check_prescription(
                &CheckPrescriptionRequest::new(vec![DrugId::new(10), DrugId::new(5)])
                    .for_patient(PatientId::new(1)),
            )
            .unwrap();
        assert!(report.is_safe());
        assert_eq!(report.synergistic.len(), 1);
        assert_eq!(report.patient, Some(PatientId::new(1)));
        assert!(report.suggestion_satisfaction > 0.0);

        // A duplicated drug must not double-report its interactions.
        let dup = service
            .check_prescription(&CheckPrescriptionRequest::new(vec![
                DrugId::new(10),
                DrugId::new(5),
                DrugId::new(10),
            ]))
            .unwrap();
        assert_eq!(dup.drugs.len(), 2, "prescription is a set");
        assert_eq!(dup.synergistic.len(), 1);

        assert!(service
            .check_prescription(&CheckPrescriptionRequest::new(vec![]))
            .is_err());
        assert!(matches!(
            service.check_prescription(&CheckPrescriptionRequest::new(vec![DrugId::new(999)])),
            Err(CoreError::UnknownDrug { .. })
        ));
    }
}
