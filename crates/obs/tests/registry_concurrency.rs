//! Concurrency properties of the metrics registry.
//!
//! Every handle the registry hands out is a cheap clone over shared
//! state, and instrument registration is idempotent: re-registering a
//! name returns a handle over the *same* cell. These tests hammer both
//! claims from many threads at once — lost updates, duplicate series,
//! or a poisoned registry lock would all surface as a count mismatch.

// Tests may panic freely; the workspace-level panic-policy denies
// target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::thread;

use dssddi_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads × M increments on the *same named counter* (each thread
    /// registers it independently) sum exactly — registration hands every
    /// thread the same cell and no update is lost.
    #[test]
    fn concurrent_counter_increments_sum_exactly(
        threads in 1usize..8,
        per_thread in proptest::collection::vec(1u64..200, 1..8),
    ) {
        let registry = MetricsRegistry::new();
        thread::scope(|scope| {
            for _ in 0..threads {
                let registry = &registry;
                let per_thread = &per_thread;
                scope.spawn(move || {
                    for &n in per_thread {
                        registry
                            .counter("dssddi_test_total", "concurrency fixture")
                            .add(n);
                    }
                });
            }
        });
        let expected = per_thread.iter().sum::<u64>() * threads as u64;
        let counter = registry.counter("dssddi_test_total", "concurrency fixture");
        prop_assert_eq!(counter.get(), expected);
        // The rendered exposition carries the same value — one series,
        // not one per registering thread.
        let rendered = registry.render();
        let line = format!("dssddi_test_total {expected}");
        prop_assert!(
            rendered.contains(&line),
            "rendered text missing `{}`:\n{}",
            line,
            rendered
        );
    }

    /// Concurrent histogram observations are all retained: the merged
    /// snapshot count equals the number of observations and the sum is
    /// exact (log-bucketing approximates *values*, never counts).
    #[test]
    fn concurrent_histogram_observations_are_all_counted(
        threads in 1usize..8,
        samples in proptest::collection::vec(0u64..1_000_000, 1..32),
    ) {
        let registry = MetricsRegistry::new();
        thread::scope(|scope| {
            for _ in 0..threads {
                let registry = &registry;
                let samples = &samples;
                scope.spawn(move || {
                    let histogram =
                        registry.histogram("dssddi_test_micros", "concurrency fixture");
                    for &v in samples {
                        histogram.observe(v);
                    }
                });
            }
        });
        let snapshot = registry
            .histogram("dssddi_test_micros", "concurrency fixture")
            .snapshot();
        prop_assert_eq!(snapshot.count(), samples.len() as u64 * threads as u64);
    }

    /// Labelled registration from many threads never duplicates a series:
    /// each distinct label value is rendered exactly once.
    #[test]
    fn concurrent_labelled_registration_is_idempotent(
        threads in 2usize..8,
        n_labels in 1usize..5,
    ) {
        let registry = MetricsRegistry::new();
        let labels: Vec<String> = (0..n_labels).map(|i| format!("kind{i}")).collect();
        thread::scope(|scope| {
            for _ in 0..threads {
                let registry = &registry;
                let labels = &labels;
                scope.spawn(move || {
                    for value in labels {
                        registry
                            .counter_with(
                                "dssddi_test_labelled_total",
                                "concurrency fixture",
                                &[("kind", value)],
                            )
                            .inc();
                    }
                });
            }
        });
        let rendered = registry.render();
        for value in &labels {
            let series = format!("dssddi_test_labelled_total{{kind=\"{value}\"}}");
            prop_assert_eq!(
                rendered.matches(&series).count(),
                1,
                "series `{}` rendered other than exactly once:\n{}",
                series,
                rendered
            );
            let line = format!("{series} {threads}");
            prop_assert!(
                rendered.contains(&line),
                "rendered text missing `{}`:\n{}",
                line,
                rendered
            );
        }
    }

    /// Merging per-thread histograms equals one histogram fed everything —
    /// the property the shared registry handle relies on.
    #[test]
    fn histogram_merge_is_observation_order_independent(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..32),
            1..6,
        ),
    ) {
        let mut merged = Histogram::new();
        let mut direct = Histogram::new();
        for shard in &shards {
            let mut partial = Histogram::new();
            for &v in shard {
                partial.record(v);
                direct.record(v);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        prop_assert_eq!(merged.max(), direct.max());
        prop_assert_eq!(
            merged.value_at_quantile(0.5),
            direct.value_at_quantile(0.5)
        );
    }
}
