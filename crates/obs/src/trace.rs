//! Per-request tracing: trace IDs, stage spans, and slow-request exemplars.
//!
//! Every data-plane request gets a u64 **trace ID** — generated at the
//! client edge and carried in the DSWR frame's trace extension, or minted
//! at the gateway when the client did not send one. As the request moves
//! through the serving pipeline, a [`SpanRecorder`] accumulates wall time
//! per [`Stage`] (decode → admit → queue → infer → encode). The finished
//! breakdown is offered to a [`TraceRing`], which keeps the top-K slowest
//! requests as [`TraceExemplar`]s; the `TraceDump` wire message exposes
//! the ring so operators can ask a live gateway "where did my slow
//! requests spend their time?" without attaching a profiler.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of serving pipeline stages a trace is broken into.
pub const STAGE_COUNT: usize = 5;

/// One stage of the serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire-frame decode on the gateway.
    Decode,
    /// Admission decision (shed / pass / enqueue).
    Admit,
    /// Time spent waiting in the admission queue.
    Queue,
    /// Routing plus model/KB inference.
    Infer,
    /// Response encoding back into a wire frame.
    Encode,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Decode,
        Stage::Admit,
        Stage::Queue,
        Stage::Infer,
        Stage::Encode,
    ];

    /// Stable lower-case name (used as a metric label value).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admit => "admit",
            Stage::Queue => "queue",
            Stage::Infer => "infer",
            Stage::Encode => "encode",
        }
    }

    /// Position in [`Stage::ALL`] (and in a stage-micros array).
    pub fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::Admit => 1,
            Stage::Queue => 2,
            Stage::Infer => 3,
            Stage::Encode => 4,
        }
    }
}

/// Mints a fresh, process-unique trace ID (never zero).
///
/// The process ID seeds the generator so two replicas minting IDs at the
/// same rate do not collide; the result is mixed through SplitMix64 so
/// IDs look random rather than sequential.
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let raw = (u64::from(std::process::id()) << 32) ^ n;
    let mixed = splitmix64(raw);
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Accumulates per-stage wall time for one in-flight request.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    trace_id: u64,
    stages: [u64; STAGE_COUNT],
}

impl SpanRecorder {
    /// A recorder for the given trace ID with all stages at zero.
    pub fn new(trace_id: u64) -> Self {
        Self {
            trace_id,
            stages: [0; STAGE_COUNT],
        }
    }

    /// The request's trace ID.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Adds `micros` to `stage` (stages may be recorded in pieces).
    pub fn record(&mut self, stage: Stage, micros: u64) {
        if let Some(slot) = self.stages.get_mut(stage.index()) {
            *slot = slot.saturating_add(micros);
        }
    }

    /// The per-stage breakdown, indexed by [`Stage::index`].
    pub fn stages(&self) -> &[u64; STAGE_COUNT] {
        &self.stages
    }

    /// The accumulated time of one stage.
    pub fn stage_micros(&self, stage: Stage) -> u64 {
        self.stages.get(stage.index()).copied().unwrap_or(0)
    }

    /// Sum of all recorded stage times.
    pub fn total_micros(&self) -> u64 {
        self.stages.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Freezes the recorder into an exemplar for the ring.
    pub fn into_exemplar(self, model: String, op: String, total_micros: u64) -> TraceExemplar {
        TraceExemplar {
            trace_id: self.trace_id,
            model,
            op,
            total_micros,
            stage_micros: self.stages,
        }
    }
}

/// The frozen stage breakdown of one completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExemplar {
    /// The request's trace ID (client-supplied or gateway-minted).
    pub trace_id: u64,
    /// Model key the request was routed to (empty for control-plane ops).
    pub model: String,
    /// Operation name (`suggest`, `check`, ...).
    pub op: String,
    /// End-to-end serving latency as recorded by the gateway.
    pub total_micros: u64,
    /// Wall micros per stage, indexed by [`Stage::index`].
    pub stage_micros: [u64; STAGE_COUNT],
}

/// Fixed-capacity ring of the slowest requests seen so far (top-K by
/// [`TraceExemplar::total_micros`]).
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<TraceExemplar>,
    capacity: usize,
}

impl TraceRing {
    /// An empty ring keeping at most `capacity` exemplars.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Offers an exemplar: kept while the ring has room, otherwise it
    /// replaces the current fastest entry if this one is slower.
    pub fn offer(&mut self, exemplar: TraceExemplar) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(exemplar);
            return;
        }
        if let Some(fastest) = self.slots.iter_mut().min_by_key(|e| e.total_micros) {
            if exemplar.total_micros > fastest.total_micros {
                *fastest = exemplar;
            }
        }
    }

    /// Number of exemplars currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no exemplar has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slowest `limit` exemplars, slowest first (`limit == 0` means
    /// all).
    pub fn snapshot(&self, limit: usize) -> Vec<TraceExemplar> {
        let mut out = self.slots.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.total_micros));
        if limit > 0 {
            out.truncate(limit);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn exemplar(id: u64, total: u64) -> TraceExemplar {
        TraceExemplar {
            trace_id: id,
            model: "m".to_string(),
            op: "suggest".to_string(),
            total_micros: total,
            stage_micros: [0; STAGE_COUNT],
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace IDs must not repeat");
        }
    }

    #[test]
    fn span_recorder_accumulates_per_stage() {
        let mut span = SpanRecorder::new(42);
        span.record(Stage::Decode, 10);
        span.record(Stage::Infer, 100);
        span.record(Stage::Infer, 50);
        assert_eq!(span.trace_id(), 42);
        assert_eq!(span.stages()[Stage::Infer.index()], 150);
        assert_eq!(span.total_micros(), 160);
        let ex = span.into_exemplar("m".into(), "suggest".into(), 170);
        assert_eq!(ex.total_micros, 170);
        assert_eq!(ex.stage_micros[0], 10);
    }

    #[test]
    fn ring_keeps_the_slowest_k() {
        let mut ring = TraceRing::new(3);
        for (id, total) in [(1, 10), (2, 50), (3, 30), (4, 40), (5, 5), (6, 60)] {
            ring.offer(exemplar(id, total));
        }
        let snap = ring.snapshot(0);
        let totals: Vec<u64> = snap.iter().map(|e| e.total_micros).collect();
        assert_eq!(totals, vec![60, 50, 40], "top-3 by latency, slowest first");
        let top1 = ring.snapshot(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1.first().map(|e| e.trace_id), Some(6));
    }

    #[test]
    fn stage_table_is_consistent() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: std::collections::HashSet<&str> =
            Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), STAGE_COUNT, "stage names are distinct");
    }
}
