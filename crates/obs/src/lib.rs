//! Unified observability layer for the DSSDDI deployment.
//!
//! Everything the serving path measures flows through this crate:
//!
//! - [`metrics`] — a global, dependency-free [`MetricsRegistry`] of named
//!   counters, gauges, and log-bucketed histograms, rendered in Prometheus
//!   text exposition format. Metric names follow the convention
//!   `dssddi_<subsystem>_<name>` (e.g. `dssddi_serving_requests_total`,
//!   `dssddi_replica_sync_bytes_total`).
//! - [`histogram`] — the HDR-style log₂ [`Histogram`] shared by the load
//!   generator, the router's latency windows, and the registry itself.
//! - [`trace`] — per-request trace IDs and [`SpanRecorder`] stage
//!   breakdowns, collected into a fixed-size [`TraceRing`] of slow-request
//!   exemplars (top-K by end-to-end latency).
//! - [`scrape`] — [`MetricsServer`], a minimal hand-rolled HTTP/1.0
//!   responder serving `GET /metrics` from the global registry, so a stock
//!   Prometheus scraper (or plain `curl`) can read a live gateway.
//!
//! The crate is intentionally dependency-free and panic-free: it sits on
//! the serving path, where a broken metric must never take a request down
//! with it.

#![warn(missing_docs)]

pub mod histogram;
pub mod metrics;
pub mod scrape;
pub mod trace;

pub use histogram::Histogram;
pub use metrics::{global, Counter, Gauge, HistogramHandle, MetricsRegistry};
pub use scrape::MetricsServer;
pub use trace::{next_trace_id, SpanRecorder, Stage, TraceExemplar, TraceRing, STAGE_COUNT};
