//! The global metrics registry.
//!
//! A [`MetricsRegistry`] maps metric names (plus an optional fixed label
//! set) to live instruments: monotonically increasing [`Counter`]s,
//! set-to-latest [`Gauge`]s, and log-bucketed [`HistogramHandle`]s.
//! Registration is idempotent — asking for the same `(name, labels)` pair
//! twice returns handles to the same underlying cell, so independent
//! subsystems can instrument the same family without coordination.
//!
//! Handles are cheap `Arc` clones over atomics; incrementing a counter on
//! the serving hot path is one relaxed `fetch_add`, with no lock. The
//! registry's internal map is only locked when registering or rendering.
//!
//! Names follow the convention `dssddi_<subsystem>_<name>`, with counters
//! suffixed `_total` (e.g. `dssddi_admission_shed_total`). [`render`]
//! produces Prometheus text exposition format; histograms are rendered as
//! `summary` families with `quantile` labels plus `_sum`/`_count`.
//!
//! [`render`]: MetricsRegistry::render

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::Histogram;

/// The process-wide registry every subsystem instruments into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observed value.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds one (for gauges tracking a live population).
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        // fetch_update never fails with a Some-returning closure.
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a registered log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    cell: Arc<Mutex<Histogram>>,
}

impl HistogramHandle {
    /// Records one sample (microseconds, by convention).
    pub fn observe(&self, v: u64) {
        self.lock().record(v);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> Histogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Histogram> {
        self.cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<Histogram>>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "summary",
        }
    }
}

/// Key in the registry map: family name plus the rendered label set, so
/// `BTreeMap` ordering groups every series of a family together.
type SeriesKey = (String, String);

#[derive(Default)]
struct Inner {
    series: BTreeMap<SeriesKey, Instrument>,
    help: BTreeMap<String, &'static str>,
}

/// A registry of named counters, gauges, and histograms.
///
/// Most callers use the process-wide [`global`] registry; constructing a
/// private one is useful in tests.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("series", &inner.series.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with a fixed label set.
    pub fn counter_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.register(name, help, labels, || {
            Instrument::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Instrument::Counter(cell) => Counter { cell },
            // The name is already registered as another type; hand back a
            // detached cell rather than panicking on the serving path.
            _ => Counter {
                cell: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Registers (or finds) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.register(name, help, labels, || {
            Instrument::Gauge(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Instrument::Gauge(cell) => Gauge { cell },
            _ => Gauge {
                cell: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Registers (or finds) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &'static str) -> HistogramHandle {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a histogram with a fixed label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        let cell = self.register(name, help, labels, || {
            Instrument::Histogram(Arc::new(Mutex::new(Histogram::new())))
        });
        match cell {
            Instrument::Histogram(cell) => HistogramHandle { cell },
            _ => HistogramHandle {
                cell: Arc::new(Mutex::new(Histogram::new())),
            },
        }
    }

    fn register(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let key = (name.to_string(), render_labels(labels));
        let mut inner = self.lock();
        inner.help.entry(name.to_string()).or_insert(help);
        inner.series.entry(key).or_insert_with(make).clone()
    }

    /// Renders every registered series in Prometheus text exposition
    /// format: `# HELP`/`# TYPE` per family, one sample line per series,
    /// histograms as `summary` families with `quantile` labels plus
    /// `_sum` and `_count`.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), instrument) in &inner.series {
            if name != last_family {
                let help = inner.help.get(name).copied().unwrap_or("");
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {}", instrument.type_name());
            }
            match instrument {
                Instrument::Counter(cell) | Instrument::Gauge(cell) => {
                    let _ = writeln!(out, "{name}{labels} {}", cell.load(Ordering::Relaxed));
                }
                Instrument::Histogram(cell) => {
                    let h = cell
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .clone();
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        let with_q = merge_quantile(labels, label);
                        let _ = writeln!(out, "{name}{with_q} {}", h.value_at_quantile(q));
                    }
                    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                    let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                }
            }
            last_family = name;
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Renders a label set as `{k="v",...}` (empty string for no labels), with
/// label values escaped per the exposition format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Splices a `quantile="q"` label into an already-rendered label set.
fn merge_quantile(rendered: &str, q: &str) -> String {
    if rendered.is_empty() {
        format!("{{quantile=\"{q}\"}}")
    } else {
        // rendered is `{...}`; insert before the closing brace.
        let body = rendered
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or("");
        format!("{{{body},quantile=\"{q}\"}}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dssddi_test_total", "test counter");
        let b = reg.counter("dssddi_test_total", "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share one cell");
    }

    #[test]
    fn labelled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("dssddi_test_total", "t", &[("stage", "decode")]);
        let b = reg.counter_with("dssddi_test_total", "t", &[("stage", "encode")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn kind_mismatch_degrades_to_a_detached_cell() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dssddi_test_total", "t");
        c.add(7);
        // Same name as a gauge: must not panic, must not corrupt.
        let g = reg.gauge("dssddi_test_total", "t");
        g.set(99);
        assert_eq!(c.get(), 7, "the registered counter is untouched");
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = MetricsRegistry::new();
        reg.counter("dssddi_a_total", "a counter").add(5);
        reg.gauge("dssddi_b", "a gauge").set(2);
        let h = reg.histogram_with("dssddi_c_micros", "a histogram", &[("stage", "infer")]);
        h.observe(10);
        h.observe(20);
        let text = reg.render();
        assert!(text.contains("# HELP dssddi_a_total a counter"));
        assert!(text.contains("# TYPE dssddi_a_total counter"));
        assert!(text.contains("dssddi_a_total 5"));
        assert!(text.contains("# TYPE dssddi_b gauge"));
        assert!(text.contains("dssddi_b 2"));
        assert!(text.contains("# TYPE dssddi_c_micros summary"));
        assert!(text.contains("dssddi_c_micros{stage=\"infer\",quantile=\"0.5\"}"));
        assert!(text.contains("dssddi_c_micros_count{stage=\"infer\"} 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value.parse::<f64>().expect("value parses as a number");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("dssddi_e_total", "t", &[("model", "a\"b\\c")])
            .inc();
        let text = reg.render();
        assert!(text.contains("model=\"a\\\"b\\\\c\""));
    }
}
