//! Minimal HTTP/1.0 exposition endpoint for the metrics registry.
//!
//! [`MetricsServer`] binds a TCP listener and answers `GET /metrics` with
//! the [`global`] registry rendered as Prometheus text exposition format —
//! enough for `curl` and a stock Prometheus scraper, and nothing more: no
//! keep-alive, no chunking, no TLS. Every response closes the connection.
//! Scrapes are rare (seconds apart) and tiny, so connections are handled
//! inline on the accept thread; a stalled scraper is cut off by a short
//! read timeout rather than holding the endpoint hostage.
//!
//! [`global`]: crate::metrics::global

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{global, MetricsRegistry};

/// How often the accept loop polls the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Bound on reading one scrape request (headers included).
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running scrape endpoint serving `GET /metrics`.
///
/// Dropping the server (or calling [`MetricsServer::shutdown`]) stops the
/// accept loop and joins its thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving the [`global`] registry.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::bind_registry(addr, global())
    }

    /// Binds `addr` and starts serving `registry` (tests use a private
    /// registry; production uses [`MetricsServer::bind`]).
    pub fn bind_registry<A: ToSocketAddrs>(
        addr: A,
        registry: &'static MetricsRegistry,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || accept_loop(listener, registry, thread_stop));
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address scrapers should hit (`http://<addr>/metrics`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(listener: TcpListener, registry: &'static MetricsRegistry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_scrape(stream, registry),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Answers one scrape connection and closes it. All errors are swallowed:
/// a broken scraper must never disturb the gateway it is observing.
fn serve_scrape(mut stream: TcpStream, registry: &MetricsRegistry) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    stream.set_write_timeout(Some(READ_TIMEOUT)).ok();
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method == "GET" && (path == "/metrics" || path == "/") {
        let body = registry.render();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        let body = "not found; try GET /metrics\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the end of the request head and returns its first line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n)?);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    text.lines().next().map(|l| l.to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn leak_registry() -> &'static MetricsRegistry {
        Box::leak(Box::new(MetricsRegistry::new()))
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_round_trip() {
        let registry = leak_registry();
        registry
            .counter("dssddi_scrape_test_total", "scrape test")
            .add(3);
        let server = MetricsServer::bind_registry("127.0.0.1:0", registry).unwrap();
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("text/plain"));
        assert!(response.contains("dssddi_scrape_test_total 3"));
        let missing = http_get(server.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        server.shutdown();
    }
}
