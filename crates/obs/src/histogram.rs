//! Log-bucketed latency histogram.
//!
//! Open-loop load generators record one latency per request at high rates,
//! so the recorder must be O(1) per sample with a fixed memory footprint —
//! no sorting a `Vec` of millions of samples afterwards. [`Histogram`]
//! buckets values on a log₂ scale with 16 linear sub-buckets per power of
//! two (the HDR-histogram layout), which bounds the relative quantile
//! error at half a sub-bucket ≈ 3% while covering the full `u64` range in
//! under a thousand buckets.
//!
//! The histogram is unit-agnostic; the serving path and the load generator
//! both record latencies in **microseconds**.

/// log₂ of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;

/// Values below this are bucketed exactly (bucket width 1).
const LINEAR_CUTOFF: u64 = 1 << (SUB_BITS + 1);

/// Bucket index of a value: identity below [`LINEAR_CUTOFF`], then the
/// exponent selects the octave and the top [`SUB_BITS`] mantissa bits the
/// sub-bucket. Adjacent at the cutoff: `bucket_of(31) == 31`,
/// `bucket_of(32) == 32`.
const fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS + 1
        let mantissa = (v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        ((((exp - SUB_BITS) as u64) << SUB_BITS) + mantissa) as usize + (1 << SUB_BITS)
    }
}

/// Smallest value mapping to bucket `idx` (inverse of [`bucket_of`]).
const fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let base = (idx - (1 << SUB_BITS)) as u64;
        let exp = (base >> SUB_BITS) as u32 + SUB_BITS;
        let mantissa = base & ((1 << SUB_BITS) - 1);
        ((1 << SUB_BITS) | mantissa) << (exp - SUB_BITS)
    }
}

const NUM_BUCKETS: usize = bucket_of(u64::MAX) + 1;

/// Fixed-size log₂ histogram with O(1) recording and merging.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        // `bucket_of` maps every u64 into `0..NUM_BUCKETS`, so the slot is
        // always present; the checked access keeps the path panic-free.
        if let Some(slot) = self.buckets.get_mut(bucket_of(value)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum += u128::from(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Folds another histogram into this one (for merging per-worker
    /// recorders after a run).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded samples (exact, not bucketed).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples (exact, from the running
    /// sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0.0 ..= 1.0), to within half a sub-bucket
    /// (~3% relative error). Returns the midpoint of the bucket holding the
    /// rank — not its upper edge, which would bias every quantile high by
    /// up to a full sub-bucket — clamped to the exact observed maximum;
    /// `q >= 1.0` reports the exact maximum, and an empty histogram `0`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let floor = bucket_floor(idx);
                let ceil = if idx + 1 < NUM_BUCKETS {
                    bucket_floor(idx + 1) - 1
                } else {
                    u64::MAX
                };
                return (floor + (ceil - floor) / 2).min(self.max);
            }
        }
        self.max
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_invertible() {
        // Every bucket's floor maps back to that bucket, floors are
        // strictly increasing, and small values are bucketed exactly.
        let mut prev = None;
        for idx in 0..NUM_BUCKETS {
            let floor = bucket_floor(idx);
            assert_eq!(bucket_of(floor), idx, "floor of bucket {idx}");
            if let Some(p) = prev {
                assert!(floor > p, "floors must increase at {idx}");
            }
            prev = Some(floor);
        }
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_of(v) as u64, v);
        }
        // Boundary values land in their own bucket, one past the previous.
        assert_eq!(bucket_of(31) + 1, bucket_of(32));
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_stay_within_half_a_sub_bucket() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        // Midpoint interpolation bounds the relative error at half a
        // sub-bucket (1/32 ≈ 3%); pin the bound at 6% so the test stays
        // robust to rank rounding while still rejecting the upper-edge
        // estimate (which errs by a full sub-bucket, beyond 6% at q0.5).
        for &(q, exact) in &[(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let approx = h.value_at_quantile(q) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 0.06, "q{q}: {approx} vs {exact} (err {err})");
        }
        // The extreme quantile is exact: it reports the observed max.
        assert_eq!(h.value_at_quantile(1.0), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn quantile_midpoint_beats_the_upper_edge() {
        // Two samples in one bucket (floor 4864, width 256): the median
        // estimate must land at the bucket midpoint, strictly below the
        // upper edge the old interpolation reported.
        let mut h = Histogram::new();
        h.record(4_864); // exactly the bucket floor
        h.record(5_000); // same bucket, keeps the max clamp out of play
        let q50 = h.value_at_quantile(0.5);
        assert_eq!(q50, 4_864 + 127, "midpoint of the 4864..=5119 bucket");
        assert!(q50 < 5_119, "must not report the bucket's upper edge");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..1_000u64 {
            let scaled = v * 37 + 5;
            if v % 2 == 0 { &mut a } else { &mut b }.record(scaled);
            whole.record(scaled);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
