//! Synthetic Hong Kong Chronic Disease Study cohort.
//!
//! The original cohort (Section II-A of the paper) is private clinical data:
//! 4157 questionnaire interview records of subjects aged 65+, with 71
//! features spanning demographics, clinical history, psychological
//! assessment and physical examination, and the 86-drug medication-use
//! labels. This generator reproduces the *statistical structure* the paper
//! reports — the disease prevalences of Fig. 2, the per-disease formulary of
//! Fig. 3, feature↔disease↔drug dependence, and a realistic rate of
//! antagonistic co-prescriptions (Fig. 9, case 4) — so that the relative
//! behaviour of the recommenders is preserved.

use rand::seq::SliceRandom;
use rand::Rng;

use dssddi_graph::{BipartiteGraph, Interaction, SignedGraph};
use dssddi_tensor::Matrix;

use crate::drugs::{Disease, DrugRegistry};
use crate::DataError;

/// Number of questionnaire + examination features (Section II-A).
pub const NUM_FEATURES: usize = 71;

/// Configuration of the cohort generator.
#[derive(Debug, Clone)]
pub struct ChronicConfig {
    /// Number of interview records to generate (4157 in the paper:
    /// 2254 male + 1903 female).
    pub n_patients: usize,
    /// Probability that an antagonistic drug pair prescribed to the same
    /// patient is kept instead of being replaced (the paper observes such
    /// prescriptions in practice; Fig. 9 case 4).
    pub antagonism_tolerance: f64,
    /// Probability of adding a synergistic partner drug when one member of a
    /// synergistic pair has been prescribed and the partner is indicated.
    pub synergy_boost: f64,
}

impl Default for ChronicConfig {
    fn default() -> Self {
        Self {
            n_patients: 4157,
            antagonism_tolerance: 0.12,
            synergy_boost: 0.55,
        }
    }
}

/// A generated cohort: features, medication-use labels and per-patient
/// disease lists.
#[derive(Debug, Clone)]
pub struct ChronicCohort {
    features: Matrix,
    labels: Matrix,
    diseases: Vec<Vec<Disease>>,
    feature_names: Vec<String>,
}

impl ChronicCohort {
    /// Patient feature matrix `X` (one row per patient, 71 columns).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Medication-use label matrix `Y` (one row per patient, 86 columns,
    /// entries in {0, 1}).
    pub fn labels(&self) -> &Matrix {
        &self.labels
    }

    /// Diseases assigned to each patient.
    pub fn diseases(&self) -> &[Vec<Disease>] {
        &self.diseases
    }

    /// Names of the 71 features, aligned with the columns of
    /// [`features`](Self::features).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of patients.
    pub fn n_patients(&self) -> usize {
        self.features.rows()
    }

    /// Number of drugs in the label space.
    pub fn n_drugs(&self) -> usize {
        self.labels.cols()
    }

    /// Drugs taken by one patient.
    pub fn drugs_of(&self, patient: usize) -> Vec<usize> {
        (0..self.labels.cols())
            .filter(|&d| self.labels.get(patient, d) > 0.5)
            .collect()
    }

    /// The medication-use bipartite graph over a subset of patients
    /// (indices into this cohort), re-indexed to `0..subset.len()` on the
    /// patient side.
    pub fn bipartite_graph(&self, subset: &[usize]) -> Result<BipartiteGraph, DataError> {
        let mut g = BipartiteGraph::new(subset.len(), self.n_drugs());
        for (row, &patient) in subset.iter().enumerate() {
            for drug in self.drugs_of(patient) {
                g.add_edge(row, drug).map_err(DataError::Graph)?;
            }
        }
        Ok(g)
    }

    /// Empirical prevalence of each disease in the generated cohort.
    pub fn disease_prevalence(&self) -> Vec<(Disease, f64)> {
        let n = self.n_patients().max(1) as f64;
        Disease::ALL
            .iter()
            .map(|&d| {
                let count = self.diseases.iter().filter(|ds| ds.contains(&d)).count();
                (d, count as f64 / n)
            })
            .collect()
    }

    /// Mean number of drugs per patient.
    pub fn mean_drugs_per_patient(&self) -> f64 {
        let total: f32 = self.labels.data().iter().sum();
        total as f64 / self.n_patients().max(1) as f64
    }

    /// Number of patients whose prescriptions contain at least one
    /// antagonistic pair according to `ddi`.
    pub fn patients_with_antagonistic_prescriptions(&self, ddi: &SignedGraph) -> usize {
        (0..self.n_patients())
            .filter(|&p| {
                let drugs = self.drugs_of(p);
                drugs.iter().enumerate().any(|(i, &u)| {
                    drugs[i + 1..]
                        .iter()
                        .any(|&v| ddi.interaction(u, v) == Some(Interaction::Antagonistic))
                })
            })
            .count()
    }
}

/// The names of the 71 features, grouped as in the questionnaire described
/// in Section II-A.
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = vec![
        "age".into(),
        "is_male".into(),
        "bmi".into(),
        "systolic_bp".into(),
        "diastolic_bp".into(),
        "heart_rate".into(),
        "gds_score".into(),
        "smoker".into(),
        "alcohol_use".into(),
        "exercise_days_per_week".into(),
    ];
    for d in Disease::ALL {
        names.push(format!(
            "history_{}",
            d.name().to_lowercase().replace(' ', "_")
        ));
    }
    for class in [
        "alpha_blocker",
        "ace_inhibitor",
        "arb",
        "calcium_channel_blocker",
        "diuretic",
        "beta_blocker",
        "statin",
        "nitrate",
        "antithrombotic",
        "antidiabetic",
        "gastrointestinal",
        "anti_inflammatory",
        "anticonvulsant",
        "respiratory",
        "psychotropic",
        "urological",
    ] {
        names.push(format!("ever_taken_{class}"));
    }
    for i in 0..15 {
        names.push(format!("psych_item_{i}"));
    }
    for lab in [
        "glucose",
        "hba1c",
        "creatinine",
        "egfr",
        "total_cholesterol",
        "ldl",
        "hdl",
        "triglycerides",
        "hemoglobin",
        "potassium",
        "sodium",
        "urea",
        "albumin",
        "uric_acid",
    ] {
        names.push(format!("lab_{lab}"));
    }
    debug_assert_eq!(names.len(), NUM_FEATURES);
    names
}

/// Generates a synthetic chronic-disease cohort.
pub fn generate_chronic_cohort(
    registry: &DrugRegistry,
    ddi: &SignedGraph,
    config: &ChronicConfig,
    rng: &mut impl Rng,
) -> Result<ChronicCohort, DataError> {
    if config.n_patients == 0 {
        return Err(DataError::InvalidConfig {
            what: "n_patients must be positive",
        });
    }
    let n = config.n_patients;
    let n_drugs = registry.len();
    let mut features = Matrix::zeros(n, NUM_FEATURES);
    let mut labels = Matrix::zeros(n, n_drugs);
    let mut diseases: Vec<Vec<Disease>> = Vec::with_capacity(n);

    // Per-drug popularity: earlier drugs within a disease's formulary are
    // prescribed more often, mirroring first-line / second-line practice.
    let popularity = |rank: usize| -> f64 { 1.0 / (1.0 + rank as f64) };

    for p in 0..n {
        // --- diseases -----------------------------------------------------
        let mut ds: Vec<Disease> = Vec::new();
        for d in Disease::ALL {
            let mut prob = d.prevalence();
            // Comorbidity structure: hypertension raises cardiovascular risk,
            // diabetes raises nephropathy risk.
            if d == Disease::CardiovascularEvents && ds.contains(&Disease::Hypertension) {
                prob += 0.15;
            }
            if d == Disease::DiabeticNephropathy && ds.contains(&Disease::Type2Diabetes) {
                prob += 0.20;
            }
            if d == Disease::MyocardialInfarction && ds.contains(&Disease::CardiovascularEvents) {
                prob += 0.05;
            }
            if rng.gen_bool(prob.min(0.95)) {
                ds.push(d);
            }
        }
        if ds.is_empty() {
            // Every interviewed subject suffers from at least one chronic
            // condition; fall back to a prevalence-weighted draw.
            let weights: Vec<f64> = Disease::ALL.iter().map(|d| d.prevalence()).collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = Disease::Hypertension;
            for (d, w) in Disease::ALL.iter().zip(weights.iter()) {
                if pick < *w {
                    chosen = *d;
                    break;
                }
                pick -= *w;
            }
            ds.push(chosen);
        }

        // --- demographics & vitals ----------------------------------------
        let is_male = p % 4157 < 2254; // 2254 male, 1903 female interview records
        let age = rng.gen_range(65.0..95.0f32);
        let bmi = 23.0 + rng.gen_range(-4.0..6.0f32);
        let hypertensive = ds.contains(&Disease::Hypertension);
        let diabetic = ds.contains(&Disease::Type2Diabetes);
        let depressed = ds.contains(&Disease::AnxietyDisorder);
        let systolic = if hypertensive {
            rng.gen_range(140.0..185.0)
        } else {
            rng.gen_range(105.0..140.0)
        };
        let diastolic = systolic * 0.6 + rng.gen_range(-5.0..5.0f32);
        let heart_rate = rng.gen_range(55.0..95.0f32);
        let gds = if depressed {
            rng.gen_range(8.0..15.0)
        } else {
            rng.gen_range(0.0..8.0f32)
        };

        features.set(p, 0, (age - 65.0) / 30.0);
        features.set(p, 1, if is_male { 1.0 } else { 0.0 });
        features.set(p, 2, (bmi - 15.0) / 25.0);
        features.set(p, 3, (systolic - 90.0) / 100.0);
        features.set(p, 4, (diastolic - 50.0) / 70.0);
        features.set(p, 5, (heart_rate - 40.0) / 80.0);
        features.set(p, 6, gds / 15.0);
        features.set(
            p,
            7,
            if rng.gen_bool(if is_male { 0.3 } else { 0.05 }) {
                1.0
            } else {
                0.0
            },
        );
        features.set(p, 8, if rng.gen_bool(0.2) { 1.0 } else { 0.0 });
        features.set(p, 9, rng.gen_range(0.0..7.0f32) / 7.0);

        // Disease history flags (with 5% reporting noise).
        for d in Disease::ALL {
            let has = ds.contains(&d);
            let reported = if rng.gen_bool(0.05) { !has } else { has };
            features.set(p, 10 + d.index(), if reported { 1.0 } else { 0.0 });
        }

        // --- medication assignment ----------------------------------------
        let mut prescribed: Vec<usize> = Vec::new();
        for &d in &ds {
            let options = registry.drugs_for(d);
            if options.is_empty() {
                continue;
            }
            let how_many = 1 + usize::from(rng.gen_bool(0.35));
            let mut weighted: Vec<(usize, f64)> = options
                .iter()
                .enumerate()
                .map(|(rank, &drug)| (drug, popularity(rank)))
                .collect();
            for _ in 0..how_many {
                if weighted.is_empty() {
                    break;
                }
                let total: f64 = weighted.iter().map(|(_, w)| w).sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut idx = 0;
                for (i, (_, w)) in weighted.iter().enumerate() {
                    if pick < *w {
                        idx = i;
                        break;
                    }
                    pick -= *w;
                }
                let (drug, _) = weighted.remove(idx);
                if !prescribed.contains(&drug) {
                    prescribed.push(drug);
                }
            }
        }
        // Synergy boost: co-prescribe synergistic partners that are indicated.
        let snapshot = prescribed.clone();
        for &drug in &snapshot {
            for partner in ddi.neighbors_of(drug, Interaction::Synergistic) {
                let indicated = registry
                    .drug(partner)
                    .map(|pd| pd.treats.iter().any(|t| ds.contains(t)))
                    .unwrap_or(false);
                if indicated && !prescribed.contains(&partner) && rng.gen_bool(config.synergy_boost)
                {
                    prescribed.push(partner);
                }
            }
        }
        // Antagonism avoidance: doctors usually replace one member of an
        // antagonistic pair, but not always (case 4 of the paper).
        let mut kept: Vec<usize> = Vec::new();
        for &drug in &prescribed {
            let conflicts = kept
                .iter()
                .any(|&k| ddi.interaction(drug, k) == Some(Interaction::Antagonistic));
            if !conflicts || rng.gen_bool(config.antagonism_tolerance) {
                kept.push(drug);
            }
        }
        kept.sort_unstable();
        for &drug in &kept {
            labels.set(p, drug, 1.0);
        }

        // Drug-family history flags correlate with the prescription classes.
        let class_cols: Vec<(crate::drugs::DrugClass, usize)> = vec![
            (crate::drugs::DrugClass::AlphaBlocker, 26),
            (crate::drugs::DrugClass::AceInhibitor, 27),
            (crate::drugs::DrugClass::Arb, 28),
            (crate::drugs::DrugClass::CalciumChannelBlocker, 29),
            (crate::drugs::DrugClass::Diuretic, 30),
            (crate::drugs::DrugClass::BetaBlocker, 31),
            (crate::drugs::DrugClass::Statin, 32),
            (crate::drugs::DrugClass::Nitrate, 33),
            (crate::drugs::DrugClass::Antithrombotic, 34),
            (crate::drugs::DrugClass::Antidiabetic, 35),
            (crate::drugs::DrugClass::Gastrointestinal, 36),
            (crate::drugs::DrugClass::AntiInflammatory, 37),
            (crate::drugs::DrugClass::Anticonvulsant, 38),
            (crate::drugs::DrugClass::Respiratory, 39),
            (crate::drugs::DrugClass::Psychotropic, 40),
            (crate::drugs::DrugClass::Urological, 41),
        ];
        for (class, col) in class_cols {
            let takes_class = kept.iter().any(|&drug| {
                registry
                    .drug(drug)
                    .map(|d| d.class == class)
                    .unwrap_or(false)
            });
            let history = takes_class && rng.gen_bool(0.8) || rng.gen_bool(0.03);
            features.set(p, col, if history { 1.0 } else { 0.0 });
        }

        // Psychological questionnaire items correlate with the GDS score.
        for i in 0..15 {
            let base = gds / 15.0;
            let answer = rng.gen_bool((0.1 + 0.8 * base as f64).clamp(0.0, 1.0));
            features.set(p, 42 + i, if answer { 1.0 } else { 0.0 });
        }

        // Laboratory values conditioned on the disease profile.
        let glucose = if diabetic {
            rng.gen_range(7.5..15.0)
        } else {
            rng.gen_range(4.0..7.0f32)
        };
        let hba1c = if diabetic {
            rng.gen_range(7.0..11.0)
        } else {
            rng.gen_range(4.5..6.5f32)
        };
        let nephropathy = ds.contains(&Disease::DiabeticNephropathy);
        let creatinine = if nephropathy {
            rng.gen_range(150.0..400.0)
        } else {
            rng.gen_range(50.0..110.0f32)
        };
        let egfr = if nephropathy {
            rng.gen_range(15.0..45.0)
        } else {
            rng.gen_range(60.0..110.0f32)
        };
        let cardiovascular = ds.contains(&Disease::CardiovascularEvents)
            || ds.contains(&Disease::MyocardialInfarction);
        let cholesterol = if cardiovascular {
            rng.gen_range(5.2..8.0)
        } else {
            rng.gen_range(3.5..5.5f32)
        };
        let ldl = cholesterol * 0.6 + rng.gen_range(-0.3..0.3f32);
        let hdl = rng.gen_range(0.8..2.0f32);
        let triglycerides = rng.gen_range(0.8..3.5f32);
        let labs = [
            glucose / 20.0,
            hba1c / 15.0,
            creatinine / 500.0,
            egfr / 120.0,
            cholesterol / 10.0,
            ldl / 6.0,
            hdl / 3.0,
            triglycerides / 5.0,
            rng.gen_range(9.0..16.0f32) / 20.0,     // hemoglobin
            rng.gen_range(3.2..5.4f32) / 6.0,       // potassium
            rng.gen_range(132.0..146.0f32) / 150.0, // sodium
            rng.gen_range(3.0..12.0f32) / 15.0,     // urea
            rng.gen_range(30.0..50.0f32) / 60.0,    // albumin
            rng.gen_range(0.2..0.6f32),             // uric acid (already ~normalised)
        ];
        for (i, v) in labs.into_iter().enumerate() {
            features.set(p, 57 + i, v);
        }

        diseases.push(ds);
    }

    Ok(ChronicCohort {
        features,
        labels,
        diseases,
        feature_names: feature_names(),
    })
}

/// Convenience: shuffled patient indices for sampling case-study patients.
pub fn sample_patients(n_patients: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n_patients).collect();
    idx.shuffle(rng);
    idx.truncate(count);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddi::{generate_ddi_graph, DdiConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cohort(n: usize, seed: u64) -> (DrugRegistry, SignedGraph, ChronicCohort) {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients: n,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        (registry, ddi, cohort)
    }

    #[test]
    fn shapes_match_paper_dimensions() {
        let (_, _, cohort) = small_cohort(200, 0);
        assert_eq!(cohort.features().shape(), (200, 71));
        assert_eq!(cohort.labels().shape(), (200, 86));
        assert_eq!(cohort.feature_names().len(), 71);
        assert_eq!(cohort.diseases().len(), 200);
    }

    #[test]
    fn every_patient_takes_at_least_one_drug() {
        let (_, _, cohort) = small_cohort(300, 1);
        for p in 0..cohort.n_patients() {
            assert!(
                !cohort.drugs_of(p).is_empty(),
                "patient {p} has no medications"
            );
        }
        let mean = cohort.mean_drugs_per_patient();
        assert!(
            (1.0..=8.0).contains(&mean),
            "unrealistic mean drugs/patient {mean}"
        );
    }

    #[test]
    fn hypertension_is_the_most_prevalent_disease() {
        let (_, _, cohort) = small_cohort(800, 2);
        let prev = cohort.disease_prevalence();
        let hyp = prev
            .iter()
            .find(|(d, _)| *d == Disease::Hypertension)
            .unwrap()
            .1;
        assert!(
            hyp > 0.35 && hyp < 0.65,
            "hypertension prevalence {hyp} off target"
        );
        for (d, p) in prev {
            if d != Disease::Hypertension {
                assert!(
                    p <= hyp + 0.05,
                    "{} more prevalent than hypertension",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn features_are_finite_and_mostly_normalised() {
        let (_, _, cohort) = small_cohort(100, 3);
        assert!(cohort.features().all_finite());
        assert!(cohort.features().max() <= 2.0);
        assert!(cohort.features().min() >= -1.0);
    }

    #[test]
    fn prescriptions_follow_disease_indications() {
        let (registry, _, cohort) = small_cohort(300, 4);
        // Most prescribed drugs should treat one of the patient's diseases.
        let mut indicated = 0usize;
        let mut total = 0usize;
        for p in 0..cohort.n_patients() {
            let ds = &cohort.diseases()[p];
            for drug in cohort.drugs_of(p) {
                total += 1;
                if registry
                    .drug(drug)
                    .unwrap()
                    .treats
                    .iter()
                    .any(|t| ds.contains(t))
                {
                    indicated += 1;
                }
            }
        }
        let ratio = indicated as f64 / total.max(1) as f64;
        assert!(
            ratio > 0.8,
            "only {ratio:.2} of prescriptions are indicated"
        );
    }

    #[test]
    fn antagonistic_prescriptions_are_rare_but_present() {
        let (_, ddi, cohort) = small_cohort(600, 5);
        let with_conflicts = cohort.patients_with_antagonistic_prescriptions(&ddi);
        let rate = with_conflicts as f64 / cohort.n_patients() as f64;
        assert!(rate < 0.35, "too many antagonistic prescriptions: {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, _, a) = small_cohort(50, 9);
        let (_, _, b) = small_cohort(50, 9);
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels().data(), b.labels().data());
    }

    #[test]
    fn zero_patients_is_an_error() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(0);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let bad = ChronicConfig {
            n_patients: 0,
            ..Default::default()
        };
        assert!(generate_chronic_cohort(&registry, &ddi, &bad, &mut rng).is_err());
    }

    #[test]
    fn bipartite_graph_reindexes_subset() {
        let (_, _, cohort) = small_cohort(40, 6);
        let subset = vec![5, 17, 23];
        let g = cohort.bipartite_graph(&subset).unwrap();
        assert_eq!(g.left_count(), 3);
        assert_eq!(g.right_count(), 86);
        assert_eq!(g.drugs_of(0), cohort.drugs_of(5));
    }

    #[test]
    fn sample_patients_returns_unique_indices() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = sample_patients(100, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let set: std::collections::BTreeSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }
}
