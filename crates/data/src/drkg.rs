//! Synthetic Drug Repurposing Knowledge Graph (DRKG) and TransE embeddings.
//!
//! The paper initialises the MD module's drug features with 400-dimensional
//! TransE embeddings pre-trained on DRKG (Section II-B) and uses them as an
//! ablation baseline ("KG" row of Table II). DRKG is an external artifact,
//! so this module builds a small heterogeneous knowledge graph from the drug
//! registry (drug–treats–disease, drug–targets–gene, disease–associated–gene,
//! drug–same-class–drug triples) and trains TransE from scratch with margin
//! ranking loss and negative sampling to produce pre-trained drug embeddings
//! of configurable dimension.

use rand::Rng;

use dssddi_tensor::Matrix;

use crate::drugs::DrugRegistry;
use crate::DataError;

/// Relations of the synthetic knowledge graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Drug treats disease.
    Treats,
    /// Drug targets gene.
    Targets,
    /// Disease is associated with gene.
    AssociatedWith,
    /// Two drugs share a pharmacological class.
    SameClass,
}

impl Relation {
    /// Dense relation index.
    pub fn index(self) -> usize {
        match self {
            Relation::Treats => 0,
            Relation::Targets => 1,
            Relation::AssociatedWith => 2,
            Relation::SameClass => 3,
        }
    }

    /// Number of relation types.
    pub const COUNT: usize = 4;
}

/// A `(head, relation, tail)` triple over dense entity indices.
pub type Triple = (usize, Relation, usize);

/// Configuration of the synthetic knowledge graph and TransE training.
#[derive(Debug, Clone)]
pub struct DrkgConfig {
    /// Number of synthetic gene entities.
    pub n_genes: usize,
    /// Embedding dimension (the paper uses 400; 64 is the default here to
    /// keep experiments fast — the ablation only needs "externally
    /// pre-trained, relation-agnostic" embeddings).
    pub dim: usize,
    /// Training epochs over the triple set.
    pub epochs: usize,
    /// Learning rate of the TransE SGD updates.
    pub learning_rate: f32,
    /// Margin of the ranking loss.
    pub margin: f32,
}

impl Default for DrkgConfig {
    fn default() -> Self {
        Self {
            n_genes: 60,
            dim: 64,
            epochs: 50,
            learning_rate: 0.05,
            margin: 1.0,
        }
    }
}

/// The synthetic knowledge graph: entity layout and triples.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    /// Number of drug entities (occupying indices `0..n_drugs`).
    pub n_drugs: usize,
    /// Number of disease entities (following the drugs).
    pub n_diseases: usize,
    /// Number of gene entities (following the diseases).
    pub n_genes: usize,
    /// All triples.
    pub triples: Vec<Triple>,
}

impl KnowledgeGraph {
    /// Total number of entities.
    pub fn n_entities(&self) -> usize {
        self.n_drugs + self.n_diseases + self.n_genes
    }

    /// Entity index of a disease (by its position in [`Disease::ALL`]).
    pub fn disease_entity(&self, disease_index: usize) -> usize {
        self.n_drugs + disease_index
    }

    /// Entity index of a gene.
    pub fn gene_entity(&self, gene: usize) -> usize {
        self.n_drugs + self.n_diseases + gene
    }
}

/// Builds the synthetic knowledge graph from the drug registry.
pub fn build_knowledge_graph(
    registry: &DrugRegistry,
    config: &DrkgConfig,
    rng: &mut impl Rng,
) -> KnowledgeGraph {
    let n_drugs = registry.len();
    let n_diseases = crate::drugs::Disease::ALL.len();
    let n_genes = config.n_genes;
    let mut triples = Vec::new();

    // Drug-treats-disease triples straight from the registry.
    for drug in registry.iter() {
        for &disease in &drug.treats {
            triples.push((drug.id, Relation::Treats, n_drugs + disease.index()));
        }
    }
    // Same-class triples connect drugs within a pharmacological class.
    for a in registry.iter() {
        for b in registry.iter() {
            if a.id < b.id && a.class == b.class {
                triples.push((a.id, Relation::SameClass, b.id));
            }
        }
    }
    // Drug-targets-gene: each class targets a coherent block of genes,
    // with a little noise, so the gene layer adds class-level signal.
    for drug in registry.iter() {
        let class_seed = drug.class as usize;
        for k in 0..3 {
            let gene = (class_seed * 3 + k) % n_genes.max(1);
            triples.push((drug.id, Relation::Targets, n_drugs + n_diseases + gene));
        }
        if rng.gen_bool(0.5) {
            let gene = rng.gen_range(0..n_genes.max(1));
            triples.push((drug.id, Relation::Targets, n_drugs + n_diseases + gene));
        }
    }
    // Disease-associated-gene triples.
    for d in 0..n_diseases {
        for _ in 0..4 {
            let gene = rng.gen_range(0..n_genes.max(1));
            triples.push((
                n_drugs + d,
                Relation::AssociatedWith,
                n_drugs + n_diseases + gene,
            ));
        }
    }
    KnowledgeGraph {
        n_drugs,
        n_diseases,
        n_genes,
        triples,
    }
}

/// TransE embeddings for every entity and relation of a knowledge graph.
#[derive(Debug, Clone)]
pub struct TransEModel {
    entity: Matrix,
    relation: Matrix,
}

impl TransEModel {
    /// Embedding of an entity.
    pub fn entity_embedding(&self, e: usize) -> &[f32] {
        self.entity.row(e)
    }

    /// Embedding matrix of all entities.
    pub fn entities(&self) -> &Matrix {
        &self.entity
    }

    /// Embedding matrix of all relations.
    pub fn relations(&self) -> &Matrix {
        &self.relation
    }

    /// TransE plausibility score of a triple (negative L2 distance; larger
    /// means more plausible).
    pub fn score(&self, (h, r, t): Triple) -> f32 {
        let mut dist = 0.0f32;
        for d in 0..self.entity.cols() {
            let diff =
                self.entity.get(h, d) + self.relation.get(r.index(), d) - self.entity.get(t, d);
            dist += diff * diff;
        }
        -dist.sqrt()
    }
}

/// Trains TransE with margin ranking loss and uniform negative sampling.
pub fn train_transe(
    kg: &KnowledgeGraph,
    config: &DrkgConfig,
    rng: &mut impl Rng,
) -> Result<TransEModel, DataError> {
    if kg.triples.is_empty() {
        return Err(DataError::InvalidConfig {
            what: "knowledge graph has no triples",
        });
    }
    if config.dim == 0 {
        return Err(DataError::InvalidConfig {
            what: "embedding dimension must be positive",
        });
    }
    let n_e = kg.n_entities();
    let dim = config.dim;
    let bound = 6.0 / (dim as f32).sqrt();
    let mut entity = Matrix::rand_uniform(n_e, dim, -bound, bound, rng);
    let mut relation = Matrix::rand_uniform(Relation::COUNT, dim, -bound, bound, rng);
    normalize_rows(&mut relation);

    for _ in 0..config.epochs {
        normalize_rows(&mut entity);
        for &(h, r, t) in &kg.triples {
            // Corrupt head or tail uniformly.
            let corrupt_head = rng.gen_bool(0.5);
            let corrupted = rng.gen_range(0..n_e);
            let (nh, nt) = if corrupt_head {
                (corrupted, t)
            } else {
                (h, corrupted)
            };

            let pos = l2_parts(&entity, &relation, h, r.index(), t);
            let neg = l2_parts(&entity, &relation, nh, r.index(), nt);
            let loss = config.margin + pos.0 - neg.0;
            if loss <= 0.0 {
                continue;
            }
            // Gradient of ||h + r - t||_2 w.r.t. h is (h + r - t)/dist.
            let lr = config.learning_rate;
            for d in 0..dim {
                let gp = pos.1[d] / pos.0.max(1e-6);
                let gn = neg.1[d] / neg.0.max(1e-6);
                // Positive triple: decrease distance.
                entity.add_at(h, d, -lr * gp);
                entity.add_at(t, d, lr * gp);
                relation.add_at(r.index(), d, -lr * gp);
                // Negative triple: increase distance.
                entity.add_at(nh, d, lr * gn);
                entity.add_at(nt, d, -lr * gn);
                relation.add_at(r.index(), d, lr * gn);
            }
        }
    }
    normalize_rows(&mut entity);
    Ok(TransEModel { entity, relation })
}

/// Convenience wrapper: builds the knowledge graph, trains TransE and
/// returns the pre-trained embeddings of the drugs only (the "KG" features
/// of Table II).
pub fn pretrained_drug_embeddings(
    registry: &DrugRegistry,
    config: &DrkgConfig,
    rng: &mut impl Rng,
) -> Result<Matrix, DataError> {
    let kg = build_knowledge_graph(registry, config, rng);
    let model = train_transe(&kg, config, rng)?;
    let mut out = Matrix::zeros(registry.len(), config.dim);
    for drug in 0..registry.len() {
        out.row_mut(drug)
            .copy_from_slice(model.entity_embedding(drug));
    }
    Ok(out)
}

fn normalize_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let norm = m.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-9 {
            for v in m.row_mut(r) {
                *v /= norm;
            }
        }
    }
}

/// Returns `(||h + r - t||, h + r - t)` for gradient computation.
fn l2_parts(entity: &Matrix, relation: &Matrix, h: usize, r: usize, t: usize) -> (f32, Vec<f32>) {
    let dim = entity.cols();
    let mut diff = vec![0.0f32; dim];
    let mut sq = 0.0f32;
    for d in 0..dim {
        let v = entity.get(h, d) + relation.get(r, d) - entity.get(t, d);
        diff[d] = v;
        sq += v * v;
    }
    (sq.sqrt(), diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drugs::Disease;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> DrkgConfig {
        DrkgConfig {
            dim: 16,
            epochs: 15,
            ..Default::default()
        }
    }

    #[test]
    fn knowledge_graph_covers_all_drugs_and_diseases() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(0);
        let kg = build_knowledge_graph(&registry, &quick_config(), &mut rng);
        assert_eq!(kg.n_drugs, 86);
        assert_eq!(kg.n_diseases, Disease::ALL.len());
        assert!(kg.triples.len() > 300);
        assert!(kg.n_entities() > 86 + 16);
        // Every drug appears as the head of at least one Treats triple.
        for drug in 0..kg.n_drugs {
            assert!(kg
                .triples
                .iter()
                .any(|&(h, r, _)| h == drug && r == Relation::Treats));
        }
    }

    #[test]
    fn transe_training_separates_true_from_corrupted_triples() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(1);
        let kg = build_knowledge_graph(&registry, &quick_config(), &mut rng);
        let model = train_transe(&kg, &quick_config(), &mut rng).unwrap();
        // On average, true triples must score higher than random corruptions.
        let mut better = 0usize;
        let mut total = 0usize;
        for &(h, r, t) in kg.triples.iter().take(200) {
            let fake_t = (t + 7) % kg.n_entities();
            if fake_t == t {
                continue;
            }
            total += 1;
            if model.score((h, r, t)) > model.score((h, r, fake_t)) {
                better += 1;
            }
        }
        let rate = better as f64 / total as f64;
        assert!(
            rate > 0.7,
            "TransE separates only {rate:.2} of corrupted triples"
        );
    }

    #[test]
    fn drug_embeddings_have_requested_shape_and_are_normalised() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(2);
        let emb = pretrained_drug_embeddings(&registry, &quick_config(), &mut rng).unwrap();
        assert_eq!(emb.shape(), (86, 16));
        assert!(emb.all_finite());
        for r in 0..emb.rows() {
            let norm: f32 = emb.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "row {r} norm {norm}");
        }
    }

    #[test]
    fn same_class_drugs_embed_closer_than_random_pairs() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DrkgConfig {
            dim: 24,
            epochs: 40,
            ..Default::default()
        };
        let emb = pretrained_drug_embeddings(&registry, &cfg, &mut rng).unwrap();
        // Statins (46, 47, 49, 50, 51) vs a cross-class pair.
        let statin_sim = emb.row_cosine(46, &emb, 47);
        let cross_sim = emb.row_cosine(46, &emb, 61); // statin vs gabapentin
        assert!(
            statin_sim > cross_sim,
            "statin pair similarity {statin_sim} not above cross-class {cross_sim}"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(4);
        let kg = build_knowledge_graph(&registry, &quick_config(), &mut rng);
        let zero_dim = DrkgConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(train_transe(&kg, &zero_dim, &mut rng).is_err());
        let empty = KnowledgeGraph {
            n_drugs: 0,
            n_diseases: 0,
            n_genes: 0,
            triples: vec![],
        };
        assert!(train_transe(&empty, &quick_config(), &mut rng).is_err());
    }
}
