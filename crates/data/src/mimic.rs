//! Synthetic MIMIC-III-like electronic health records.
//!
//! Section V-E of the paper validates DSSDDI on MIMIC-III: 6350 patients
//! with at least two ICU stays, where the diagnosis and procedure codes of
//! the earlier visits serve as patient features and the medications of the
//! last visit are the prediction labels. MIMIC-III is a restricted-access
//! database, so this module generates an EHR with the same structure:
//! multi-visit patients, ICD-like diagnosis codes, procedure codes, a
//! last-visit medication list with the paper's label cardinality (8–15
//! drugs), and an *antagonism-only* DDI graph over anonymised drugs — which
//! is why the paper can only run the GIN backbone on this data set.

use rand::seq::SliceRandom;
use rand::Rng;

use dssddi_graph::{Interaction, SignedGraph};
use dssddi_tensor::Matrix;

use crate::drugs::DrugRegistry;
use crate::DataError;

/// Configuration of the synthetic MIMIC-like generator.
#[derive(Debug, Clone)]
pub struct MimicConfig {
    /// Number of patients (6350 in the paper).
    pub n_patients: usize,
    /// Number of distinct diagnosis codes.
    pub n_diagnosis_codes: usize,
    /// Number of distinct procedure codes.
    pub n_procedure_codes: usize,
    /// Number of anonymised drugs in the label space.
    pub n_drugs: usize,
    /// Number of latent conditions that tie codes to medications.
    pub n_conditions: usize,
    /// Number of antagonistic drug pairs to sample for the DDI graph.
    pub n_antagonistic_pairs: usize,
}

impl Default for MimicConfig {
    fn default() -> Self {
        Self {
            n_patients: 6350,
            n_diagnosis_codes: 120,
            n_procedure_codes: 40,
            n_drugs: 90,
            n_conditions: 20,
            n_antagonistic_pairs: 200,
        }
    }
}

/// A generated multi-visit EHR data set.
#[derive(Debug, Clone)]
pub struct MimicDataset {
    features: Matrix,
    labels: Matrix,
    visits: Vec<usize>,
    ddi: SignedGraph,
    registry: DrugRegistry,
    n_diagnosis_codes: usize,
    n_procedure_codes: usize,
}

impl MimicDataset {
    /// Patient features: multi-hot diagnosis + procedure codes from the
    /// visits preceding the last one.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Last-visit medication labels (one row per patient, {0,1} entries).
    pub fn labels(&self) -> &Matrix {
        &self.labels
    }

    /// Number of visits per patient (each at least 2).
    pub fn visits(&self) -> &[usize] {
        &self.visits
    }

    /// The antagonism-only DDI graph over the anonymised drugs.
    pub fn ddi(&self) -> &SignedGraph {
        &self.ddi
    }

    /// The anonymised drug registry over the label space (`MIMIC drug 000`,
    /// `MIMIC drug 001`, …): one entry per DDI node, so the typed
    /// `DecisionService` API — and therefore the serving gateway — can
    /// cover the MIMIC workload instead of falling back to the engine-level
    /// one. The names carry no class or indication metadata, mirroring the
    /// anonymised public MIMIC drug identifiers.
    pub fn registry(&self) -> &DrugRegistry {
        &self.registry
    }

    /// Number of patients.
    pub fn n_patients(&self) -> usize {
        self.features.rows()
    }

    /// Number of feature columns (diagnosis + procedure codes).
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of drugs in the label space.
    pub fn n_drugs(&self) -> usize {
        self.labels.cols()
    }

    /// Number of diagnosis code columns (prefix of the feature space).
    pub fn n_diagnosis_codes(&self) -> usize {
        self.n_diagnosis_codes
    }

    /// Number of procedure code columns (suffix of the feature space).
    pub fn n_procedure_codes(&self) -> usize {
        self.n_procedure_codes
    }

    /// Drugs prescribed to a patient on the last visit.
    pub fn drugs_of(&self, patient: usize) -> Vec<usize> {
        (0..self.labels.cols())
            .filter(|&d| self.labels.get(patient, d) > 0.5)
            .collect()
    }

    /// Mean number of drugs in the last-visit prescriptions.
    pub fn mean_drugs_per_patient(&self) -> f64 {
        let total: f32 = self.labels.data().iter().sum();
        total as f64 / self.n_patients().max(1) as f64
    }
}

/// Latent condition: the codes it produces and the drugs it is treated with.
struct Condition {
    diagnosis: Vec<usize>,
    procedures: Vec<usize>,
    drugs: Vec<usize>,
}

/// Generates a synthetic MIMIC-III-like data set.
pub fn generate_mimic_dataset(
    config: &MimicConfig,
    rng: &mut impl Rng,
) -> Result<MimicDataset, DataError> {
    if config.n_patients == 0 || config.n_conditions == 0 || config.n_drugs == 0 {
        return Err(DataError::InvalidConfig {
            what: "n_patients, n_conditions and n_drugs must be positive",
        });
    }
    if config.n_diagnosis_codes < config.n_conditions {
        return Err(DataError::InvalidConfig {
            what: "need at least one diagnosis code per latent condition",
        });
    }

    // Build latent conditions. Each owns a handful of diagnosis codes,
    // procedure codes and medications; overlaps are allowed and create the
    // co-prescription structure the recommenders exploit.
    let conditions: Vec<Condition> = (0..config.n_conditions)
        .map(|_| {
            let n_dx = rng.gen_range(3..=8usize);
            let n_proc = rng.gen_range(1..=4usize);
            let n_drugs = rng.gen_range(4..=8usize);
            let mut dx: Vec<usize> = (0..config.n_diagnosis_codes).collect();
            dx.shuffle(rng);
            dx.truncate(n_dx);
            let mut proc: Vec<usize> = (0..config.n_procedure_codes).collect();
            proc.shuffle(rng);
            proc.truncate(n_proc);
            let mut drugs: Vec<usize> = (0..config.n_drugs).collect();
            drugs.shuffle(rng);
            drugs.truncate(n_drugs);
            Condition {
                diagnosis: dx,
                procedures: proc,
                drugs,
            }
        })
        .collect();

    let n_features = config.n_diagnosis_codes + config.n_procedure_codes;
    let mut features = Matrix::zeros(config.n_patients, n_features);
    let mut labels = Matrix::zeros(config.n_patients, config.n_drugs);
    let mut visits = Vec::with_capacity(config.n_patients);

    for p in 0..config.n_patients {
        let n_visits = rng.gen_range(2..=5usize);
        visits.push(n_visits);
        let n_conditions = rng.gen_range(1..=3usize);
        let mut my_conditions: Vec<usize> = (0..config.n_conditions).collect();
        my_conditions.shuffle(rng);
        my_conditions.truncate(n_conditions);

        // Earlier visits populate the feature codes (with per-visit noise).
        for _visit in 0..n_visits - 1 {
            for &c in &my_conditions {
                for &dx in &conditions[c].diagnosis {
                    if rng.gen_bool(0.7) {
                        features.set(p, dx, 1.0);
                    }
                }
                for &proc in &conditions[c].procedures {
                    if rng.gen_bool(0.5) {
                        features.set(p, config.n_diagnosis_codes + proc, 1.0);
                    }
                }
            }
            // Sporadic unrelated codes.
            if rng.gen_bool(0.4) {
                let dx = rng.gen_range(0..config.n_diagnosis_codes);
                features.set(p, dx, 1.0);
            }
        }

        // Last visit: medications for the patient's conditions plus a few
        // ICU-stay staples, giving the 8-15 drug label cardinality of MIMIC.
        for &c in &my_conditions {
            for &drug in &conditions[c].drugs {
                if rng.gen_bool(0.85) {
                    labels.set(p, drug, 1.0);
                }
            }
        }
        let staples = rng.gen_range(2..=4usize);
        for _ in 0..staples {
            let drug = rng.gen_range(0..config.n_drugs.min(10));
            labels.set(p, drug, 1.0);
        }
        if labels.row(p).iter().sum::<f32>() == 0.0 {
            labels.set(p, rng.gen_range(0..config.n_drugs), 1.0);
        }
    }

    // Antagonism-only DDI graph over anonymised drugs (the public download
    // the paper uses contains only antagonistic interactions).
    let mut ddi = SignedGraph::new(config.n_drugs);
    let mut all_pairs: Vec<(usize, usize)> = Vec::new();
    for u in 0..config.n_drugs {
        for v in (u + 1)..config.n_drugs {
            all_pairs.push((u, v));
        }
    }
    all_pairs.shuffle(rng);
    for &(u, v) in all_pairs
        .iter()
        .take(config.n_antagonistic_pairs.min(all_pairs.len()))
    {
        ddi.add_interaction(u, v, Interaction::Antagonistic)
            .map_err(DataError::Graph)?;
    }

    // Anonymised registry over the label space: the public MIMIC download
    // identifies drugs only by index, so the names are synthetic but stable,
    // giving the typed service API (and the serving gateway) a formulary to
    // resolve against.
    let registry =
        DrugRegistry::from_names((0..config.n_drugs).map(|d| format!("MIMIC drug {d:03}")))?;

    Ok(MimicDataset {
        features,
        labels,
        visits,
        ddi,
        registry,
        n_diagnosis_codes: config.n_diagnosis_codes,
        n_procedure_codes: config.n_procedure_codes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small(n: usize, seed: u64) -> MimicDataset {
        let cfg = MimicConfig {
            n_patients: n,
            ..Default::default()
        };
        generate_mimic_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn shapes_and_visit_counts() {
        let d = small(150, 0);
        assert_eq!(d.n_patients(), 150);
        assert_eq!(d.n_features(), 160);
        assert_eq!(d.n_drugs(), 90);
        assert_eq!(d.visits().len(), 150);
        assert!(d.visits().iter().all(|&v| (2..=5).contains(&v)));
    }

    #[test]
    fn label_cardinality_matches_mimic_scale() {
        let d = small(400, 1);
        let mean = d.mean_drugs_per_patient();
        assert!(
            (5.0..=20.0).contains(&mean),
            "mean drugs/patient {mean} out of range"
        );
        for p in 0..d.n_patients() {
            assert!(!d.drugs_of(p).is_empty());
        }
    }

    #[test]
    fn ddi_graph_is_antagonism_only() {
        let d = small(50, 2);
        assert_eq!(d.ddi().synergistic_count(), 0);
        assert_eq!(d.ddi().antagonistic_count(), 200);
    }

    #[test]
    fn registry_covers_the_label_space() {
        let d = small(40, 6);
        assert_eq!(d.registry().len(), d.n_drugs());
        assert_eq!(d.registry().len(), d.ddi().node_count());
        assert_eq!(d.registry().resolve("MIMIC drug 007"), Some(7));
        assert_eq!(d.registry().name_of(0), Some("MIMIC drug 000"));
        // Deterministic identity: the same config yields the same digest.
        assert_eq!(d.registry().digest(), small(10, 9).registry().digest());
    }

    #[test]
    fn features_are_binary_multi_hot() {
        let d = small(80, 3);
        for &x in d.features().data() {
            assert!(x == 0.0 || x == 1.0);
        }
        // At least some features must be set (patients have history).
        assert!(d.features().sum() > 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(60, 4);
        let b = small(60, 4);
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels().data(), b.labels().data());
    }

    #[test]
    fn invalid_configs_error() {
        let mut rng = StdRng::seed_from_u64(0);
        let zero = MimicConfig {
            n_patients: 0,
            ..Default::default()
        };
        assert!(generate_mimic_dataset(&zero, &mut rng).is_err());
        let few_codes = MimicConfig {
            n_diagnosis_codes: 2,
            n_conditions: 10,
            ..Default::default()
        };
        assert!(generate_mimic_dataset(&few_codes, &mut rng).is_err());
    }

    #[test]
    fn features_correlate_with_labels() {
        // Patients sharing a latent condition share drugs; verify by checking
        // that patients with overlapping features share more labels than
        // disjoint ones on average.
        let d = small(200, 5);
        let mut sim_shared = 0.0f64;
        let mut sim_count = 0usize;
        let mut dis_shared = 0.0f64;
        let mut dis_count = 0usize;
        for a in 0..50 {
            for b in (a + 1)..50 {
                let fa = d.features().row(a);
                let fb = d.features().row(b);
                let overlap: f32 = fa.iter().zip(fb).map(|(x, y)| x * y).sum();
                let la = d.drugs_of(a);
                let lb = d.drugs_of(b);
                let shared = la.iter().filter(|x| lb.contains(x)).count() as f64;
                if overlap >= 3.0 {
                    sim_shared += shared;
                    sim_count += 1;
                } else {
                    dis_shared += shared;
                    dis_count += 1;
                }
            }
        }
        if sim_count > 0 && dis_count > 0 {
            assert!(
                sim_shared / sim_count as f64 >= dis_shared / dis_count as f64,
                "feature overlap does not predict label overlap"
            );
        }
    }
}
