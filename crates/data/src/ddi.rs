//! Synthetic DrugCombDB-like drug-drug interactions.
//!
//! Section II-C of the paper extracts, for the 86 formulary drugs, 97 drug
//! pairs with synergistic effects and 243 pairs with antagonistic effects
//! from DrugCombDB. DrugCombDB itself is an external curated database, so
//! this module generates a pharmacology-informed substitute: the interaction
//! pairs the paper names explicitly (used in its case studies) are inserted
//! verbatim, and the remaining pairs are sampled from class-level
//! interaction rules until the published counts are reached.

use rand::seq::SliceRandom;
use rand::Rng;

use dssddi_graph::{Interaction, SignedGraph};

use crate::drugs::{DrugClass, DrugRegistry};
use crate::DataError;

/// Configuration of the synthetic DDI generator.
#[derive(Debug, Clone)]
pub struct DdiConfig {
    /// Number of synergistic pairs to generate (97 in the paper).
    pub synergistic_pairs: usize,
    /// Number of antagonistic pairs to generate (243 in the paper).
    pub antagonistic_pairs: usize,
}

impl Default for DdiConfig {
    fn default() -> Self {
        Self {
            synergistic_pairs: 97,
            antagonistic_pairs: 243,
        }
    }
}

/// Interactions the paper names explicitly in its case studies (Fig. 8 and
/// Fig. 9); these must always be present so the case studies reproduce.
pub fn paper_interactions() -> Vec<(usize, usize, Interaction)> {
    use Interaction::*;
    vec![
        // Fig. 8: Simvastatin (46) and Atorvastatin (47) act synergistically.
        (46, 47, Synergistic),
        // Fig. 9 case 1: Indapamide (10) + Perindopril (5) synergy.
        (5, 10, Synergistic),
        // Fig. 8: Gabapentin (61) antagonises Isosorbide Mononitrate (59).
        (59, 61, Antagonistic),
        // Fig. 8 (ECC case): Gabapentin (61) antagonises Doxazosin (1).
        (1, 61, Antagonistic),
        // Fig. 9 case 2: Theophylline (83) antagonises Enalapril (3).
        (3, 83, Antagonistic),
        // Fig. 9 case 4: Isosorbide Dinitrate (58) antagonises Metformin (48).
        (48, 58, Antagonistic),
        // Fig. 9 case 3: Amlodipine (8) and Felodipine (32) are each
        // antagonistic to Phenytoin (60), Doxazosin (1), Terazosin (0) and
        // Prazosin (9).
        (8, 60, Antagonistic),
        (1, 8, Antagonistic),
        (0, 8, Antagonistic),
        (8, 9, Antagonistic),
        (32, 60, Antagonistic),
        (1, 32, Antagonistic),
        (0, 32, Antagonistic),
        (9, 32, Antagonistic),
    ]
}

/// Class pairs that tend to produce synergistic combinations in chronic
/// disease management.
fn synergistic_class_rules() -> Vec<(DrugClass, DrugClass)> {
    use DrugClass::*;
    vec![
        (AceInhibitor, Diuretic),
        (AceInhibitor, CalciumChannelBlocker),
        (BetaBlocker, Diuretic),
        (Statin, Statin),
        (Statin, Antithrombotic),
        (AlphaBlocker, Urological),
        (Gastrointestinal, AntiInflammatory),
        (Nitrate, BetaBlocker),
        (Respiratory, Respiratory),
        (Antidiabetic, Antidiabetic),
        (Arb, Diuretic),
    ]
}

/// Class pairs that tend to produce antagonistic or adverse combinations.
fn antagonistic_class_rules() -> Vec<(DrugClass, DrugClass)> {
    use DrugClass::*;
    vec![
        (AntiInflammatory, AceInhibitor),
        (AntiInflammatory, Diuretic),
        (AntiInflammatory, Antithrombotic),
        (AntiInflammatory, Arb),
        (Anticonvulsant, CalciumChannelBlocker),
        (Anticonvulsant, AlphaBlocker),
        (Anticonvulsant, Nitrate),
        (Anticonvulsant, Statin),
        (Anticonvulsant, Psychotropic),
        (Respiratory, BetaBlocker),
        (Psychotropic, Antithrombotic),
        (Nitrate, Antidiabetic),
        (BetaBlocker, Antidiabetic),
        (OtherCardiac, Diuretic),
        (Gastrointestinal, Antithrombotic),
        (CalciumChannelBlocker, Statin),
        (OtherCardiac, CalciumChannelBlocker),
        (Psychotropic, OtherCardiac),
    ]
}

/// Enumerates every drug pair matched by a set of class rules, excluding
/// pairs already present in the graph.
fn candidate_pairs(
    registry: &DrugRegistry,
    graph: &SignedGraph,
    rules: &[(DrugClass, DrugClass)],
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for &(ca, cb) in rules {
        let left = registry.drugs_of_class(ca);
        let right = registry.drugs_of_class(cb);
        for &u in &left {
            for &v in &right {
                if u < v && graph.interaction(u, v).is_none() && !pairs.contains(&(u, v)) {
                    pairs.push((u, v));
                } else if v < u && graph.interaction(v, u).is_none() && !pairs.contains(&(v, u)) {
                    pairs.push((v, u));
                }
            }
        }
    }
    pairs
}

/// Generates the signed drug-drug interaction graph over the formulary.
///
/// Returns an error if the requested number of pairs cannot be reached from
/// the class rules (which would make the generated graph structurally
/// different from the one the paper uses).
pub fn generate_ddi_graph(
    registry: &DrugRegistry,
    config: &DdiConfig,
    rng: &mut impl Rng,
) -> Result<SignedGraph, DataError> {
    let mut graph = SignedGraph::new(registry.len());
    for (u, v, interaction) in paper_interactions() {
        graph
            .add_interaction(u, v, interaction)
            .map_err(DataError::Graph)?;
    }

    // Fill antagonistic pairs first (they are the larger and more
    // safety-critical class), then synergistic pairs.
    for (kind, target, rules) in [
        (
            Interaction::Antagonistic,
            config.antagonistic_pairs,
            antagonistic_class_rules(),
        ),
        (
            Interaction::Synergistic,
            config.synergistic_pairs,
            synergistic_class_rules(),
        ),
    ] {
        let current = match kind {
            Interaction::Antagonistic => graph.antagonistic_count(),
            _ => graph.synergistic_count(),
        };
        if target < current {
            return Err(DataError::InvalidConfig {
                what: "requested fewer DDI pairs than the paper-mandated seed interactions",
            });
        }
        let needed = target - current;
        let mut pool = candidate_pairs(registry, &graph, &rules);
        if pool.len() < needed {
            return Err(DataError::InvalidConfig {
                what: "class interaction rules cannot produce the requested number of DDI pairs",
            });
        }
        pool.shuffle(rng);
        for &(u, v) in pool.iter().take(needed) {
            graph
                .add_interaction(u, v, kind)
                .map_err(DataError::Graph)?;
        }
    }
    Ok(graph)
}

/// Generates the DDI graph and additionally samples explicit
/// "no interaction" edges (Section IV-A1), one per real interaction by
/// default, for DDIGCN training.
pub fn generate_ddi_graph_with_negatives(
    registry: &DrugRegistry,
    config: &DdiConfig,
    negative_edges: usize,
    rng: &mut impl Rng,
) -> Result<SignedGraph, DataError> {
    let mut graph = generate_ddi_graph(registry, config, rng)?;
    graph.sample_no_interaction_edges(negative_edges, rng);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn registry() -> DrugRegistry {
        DrugRegistry::standard()
    }

    #[test]
    fn generated_graph_matches_paper_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate_ddi_graph(&registry(), &DdiConfig::default(), &mut rng).unwrap();
        assert_eq!(g.synergistic_count(), 97);
        assert_eq!(g.antagonistic_count(), 243);
        assert_eq!(g.node_count(), 86);
    }

    #[test]
    fn paper_case_study_edges_are_present() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate_ddi_graph(&registry(), &DdiConfig::default(), &mut rng).unwrap();
        assert_eq!(g.interaction(46, 47), Some(Interaction::Synergistic));
        assert_eq!(g.interaction(5, 10), Some(Interaction::Synergistic));
        assert_eq!(g.interaction(59, 61), Some(Interaction::Antagonistic));
        assert_eq!(g.interaction(3, 83), Some(Interaction::Antagonistic));
        assert_eq!(g.interaction(48, 58), Some(Interaction::Antagonistic));
        assert_eq!(g.interaction(8, 60), Some(Interaction::Antagonistic));
        assert_eq!(g.interaction(32, 9), Some(Interaction::Antagonistic));
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let reg = registry();
        let a =
            generate_ddi_graph(&reg, &DdiConfig::default(), &mut StdRng::seed_from_u64(3)).unwrap();
        let b =
            generate_ddi_graph(&reg, &DdiConfig::default(), &mut StdRng::seed_from_u64(3)).unwrap();
        let ea: Vec<_> = a.interactions().collect();
        let eb: Vec<_> = b.interactions().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn negative_edges_are_added_on_request() {
        let mut rng = StdRng::seed_from_u64(5);
        let g =
            generate_ddi_graph_with_negatives(&registry(), &DdiConfig::default(), 340, &mut rng)
                .unwrap();
        assert_eq!(g.edge_count(), 97 + 243 + 340);
        // Structural graph ignores the sampled no-interaction edges.
        assert_eq!(g.structural_graph().edge_count(), 97 + 243);
    }

    #[test]
    fn impossible_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let too_few = DdiConfig {
            synergistic_pairs: 1,
            antagonistic_pairs: 243,
        };
        assert!(generate_ddi_graph(&registry(), &too_few, &mut rng).is_err());
        let too_many = DdiConfig {
            synergistic_pairs: 5000,
            antagonistic_pairs: 243,
        };
        assert!(generate_ddi_graph(&registry(), &too_many, &mut rng).is_err());
    }

    #[test]
    fn smaller_custom_counts_are_supported() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DdiConfig {
            synergistic_pairs: 20,
            antagonistic_pairs: 40,
        };
        let g = generate_ddi_graph(&registry(), &cfg, &mut rng).unwrap();
        assert_eq!(g.synergistic_count(), 20);
        assert_eq!(g.antagonistic_count(), 40);
    }
}
