//! # dssddi-data
//!
//! Data substrates for the DSSDDI reproduction. The paper evaluates on two
//! private/restricted data sets (the Hong Kong Chronic Disease Study cohort
//! and MIMIC-III) plus two external knowledge resources (DrugCombDB drug
//! interactions and DRKG pre-trained embeddings). None of those artifacts
//! can be redistributed, so this crate generates statistically faithful
//! synthetic substitutes — see `DESIGN.md` for the substitution rationale:
//!
//! * [`drugs`] — the fixed 86-drug formulary with the paper's drug IDs,
//! * [`ddi`] — a DrugCombDB-like signed interaction graph (97 synergistic +
//!   243 antagonistic pairs, including every pair named in the case studies),
//! * [`chronic`] — the chronic-disease cohort generator (4157 records,
//!   71 features, Fig. 2/Fig. 3-calibrated),
//! * [`mimic`] — a MIMIC-III-like multi-visit EHR generator,
//! * [`drkg`] — a synthetic knowledge graph plus a from-scratch TransE
//!   trainer for pre-trained drug embeddings,
//! * [`split`] — the 5:3:2 patient split.

#![warn(missing_docs)]

pub mod chronic;
pub mod ddi;
pub mod drkg;
pub mod drugs;
pub mod mimic;
pub mod split;

pub use chronic::{generate_chronic_cohort, ChronicCohort, ChronicConfig, NUM_FEATURES};
pub use ddi::{
    generate_ddi_graph, generate_ddi_graph_with_negatives, paper_interactions, DdiConfig,
};
pub use drkg::{build_knowledge_graph, pretrained_drug_embeddings, train_transe, DrkgConfig};
pub use drugs::{Disease, Drug, DrugClass, DrugRegistry, NUM_DRUGS};
pub use mimic::{generate_mimic_dataset, MimicConfig, MimicDataset};
pub use split::{split_patients, Split};

use dssddi_graph::GraphError;

/// Errors produced while generating or loading data sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A generator configuration is inconsistent or unsatisfiable.
    InvalidConfig {
        /// Human-readable description of the problem.
        what: &'static str,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::InvalidConfig { what } => write!(f, "invalid data configuration: {what}"),
            DataError::Graph(e) => write!(f, "graph error while building data set: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Graph(e) => Some(e),
            DataError::InvalidConfig { .. } => None,
        }
    }
}

impl From<GraphError> for DataError {
    fn from(e: GraphError) -> Self {
        DataError::Graph(e)
    }
}
